//! Two-table relational schemas: one entity (individual) table plus one fact
//! (event) table with a foreign key and a bounded fan-out.
//!
//! The privacy unit is the **individual**: neighboring relational databases
//! differ in one entity row *and all facts owned by it*. The fan-out cap `m`
//! bounds how many fact rows one individual can influence, which is exactly
//! the quantity the paper's concluding remarks identify as driving the noise
//! scale in multi-table settings.

use privbayes_data::{Attribute, Schema};

use crate::error::RelationalError;

/// Name of the derived per-individual attribute counting owned facts.
pub const EVENT_COUNT_ATTR: &str = "event_count";

/// A two-table schema with a declared fan-out cap.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationalSchema {
    entity: Schema,
    fact: Schema,
    max_fanout: usize,
    flattened: Schema,
    fact_view: Schema,
}

impl RelationalSchema {
    /// Builds a relational schema.
    ///
    /// Both derived views are constructed eagerly so that invalid
    /// combinations fail here rather than mid-synthesis:
    ///
    /// * the **flattened view**: entity attributes plus an
    ///   [`EVENT_COUNT_ATTR`] categorical attribute over `{0, …, m}`;
    /// * the **fact view**: entity attributes followed by fact attributes
    ///   (one row per fact, owner attributes repeated).
    ///
    /// # Errors
    /// Returns [`RelationalError::InvalidConfig`] if either schema is empty,
    /// `max_fanout == 0`, attribute names collide across the two tables, or
    /// an entity attribute is named [`EVENT_COUNT_ATTR`].
    pub fn new(entity: Schema, fact: Schema, max_fanout: usize) -> Result<Self, RelationalError> {
        if entity.is_empty() {
            return Err(RelationalError::InvalidConfig("entity schema is empty".into()));
        }
        if fact.is_empty() {
            return Err(RelationalError::InvalidConfig("fact schema is empty".into()));
        }
        if max_fanout == 0 {
            return Err(RelationalError::InvalidConfig(
                "max_fanout must be at least 1 (0 would make the fact table unreachable)".into(),
            ));
        }
        if entity.index_of(EVENT_COUNT_ATTR).is_some() {
            return Err(RelationalError::InvalidConfig(format!(
                "`{EVENT_COUNT_ATTR}` is reserved for the flattened view"
            )));
        }

        let mut flattened_attrs: Vec<Attribute> = entity.attributes().to_vec();
        flattened_attrs.push(
            Attribute::categorical(EVENT_COUNT_ATTR, max_fanout + 1)
                .map_err(RelationalError::Data)?,
        );
        let flattened = Schema::new(flattened_attrs)
            .map_err(|e| RelationalError::InvalidConfig(format!("flattened view: {e}")))?;

        let mut view_attrs: Vec<Attribute> = entity.attributes().to_vec();
        view_attrs.extend(fact.attributes().iter().cloned());
        let fact_view = Schema::new(view_attrs).map_err(|e| {
            RelationalError::InvalidConfig(format!(
                "fact view: {e} (entity and fact attribute names must be disjoint)"
            ))
        })?;

        Ok(Self { entity, fact, max_fanout, flattened, fact_view })
    }

    /// The entity (per-individual) schema.
    #[must_use]
    pub fn entity(&self) -> &Schema {
        &self.entity
    }

    /// The fact (per-event) schema.
    #[must_use]
    pub fn fact(&self) -> &Schema {
        &self.fact
    }

    /// The declared fan-out cap `m`.
    #[must_use]
    pub fn max_fanout(&self) -> usize {
        self.max_fanout
    }

    /// The flattened per-individual view: entity attributes plus
    /// [`EVENT_COUNT_ATTR`].
    #[must_use]
    pub fn flattened(&self) -> &Schema {
        &self.flattened
    }

    /// The per-fact view: entity attributes followed by fact attributes.
    #[must_use]
    pub fn fact_view(&self) -> &Schema {
        &self.fact_view
    }

    /// Number of entity attributes (they occupy the first positions of the
    /// fact view).
    #[must_use]
    pub fn entity_arity(&self) -> usize {
        self.entity.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity_schema() -> Schema {
        Schema::new(vec![Attribute::binary("smoker"), Attribute::categorical("region", 4).unwrap()])
            .unwrap()
    }

    fn fact_schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("diagnosis", 5).unwrap(),
            Attribute::binary("inpatient"),
        ])
        .unwrap()
    }

    #[test]
    fn derived_views_have_expected_shape() {
        let s = RelationalSchema::new(entity_schema(), fact_schema(), 3).unwrap();
        assert_eq!(s.entity_arity(), 2);
        assert_eq!(s.flattened().len(), 3);
        assert_eq!(s.flattened().attribute(2).name(), EVENT_COUNT_ATTR);
        assert_eq!(s.flattened().attribute(2).domain_size(), 4, "counts 0..=3");
        assert_eq!(s.fact_view().len(), 4);
        assert_eq!(s.fact_view().attribute(0).name(), "smoker");
        assert_eq!(s.fact_view().attribute(2).name(), "diagnosis");
    }

    #[test]
    fn rejects_zero_fanout_and_empty_schemas() {
        assert!(RelationalSchema::new(entity_schema(), fact_schema(), 0).is_err());
    }

    #[test]
    fn rejects_name_collisions() {
        let fact = Schema::new(vec![Attribute::binary("smoker")]).unwrap();
        let e = RelationalSchema::new(entity_schema(), fact, 2).unwrap_err();
        assert!(e.to_string().contains("disjoint"), "{e}");
    }

    #[test]
    fn rejects_reserved_count_name() {
        let entity = Schema::new(vec![Attribute::binary(EVENT_COUNT_ATTR)]).unwrap();
        assert!(RelationalSchema::new(entity, fact_schema(), 2).is_err());
    }
}
