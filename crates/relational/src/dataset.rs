//! Relational datasets: an entity table plus a fact table with foreign keys.

use privbayes_data::Dataset;

use crate::error::RelationalError;
use crate::schema::RelationalSchema;

/// A two-table instance: entities, facts, and the fact→entity foreign key.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationalDataset {
    schema: RelationalSchema,
    entities: Dataset,
    facts: Dataset,
    /// `fact_owner[f]` = entity row owning fact row `f`.
    fact_owner: Vec<usize>,
}

impl RelationalDataset {
    /// Assembles and validates a relational dataset.
    ///
    /// # Errors
    /// * [`RelationalError::InvalidConfig`] if the tables' schemas do not
    ///   match `schema` or the owner vector's length differs from the fact
    ///   table;
    /// * [`RelationalError::DanglingForeignKey`] for an owner out of range;
    /// * [`RelationalError::FanoutExceeded`] if an individual owns more facts
    ///   than the declared cap.
    pub fn new(
        schema: RelationalSchema,
        entities: Dataset,
        facts: Dataset,
        fact_owner: Vec<usize>,
    ) -> Result<Self, RelationalError> {
        if entities.schema() != schema.entity() {
            return Err(RelationalError::InvalidConfig(
                "entity table schema does not match the relational schema".into(),
            ));
        }
        if facts.schema() != schema.fact() {
            return Err(RelationalError::InvalidConfig(
                "fact table schema does not match the relational schema".into(),
            ));
        }
        if fact_owner.len() != facts.n() {
            return Err(RelationalError::InvalidConfig(format!(
                "{} owners for {} fact rows",
                fact_owner.len(),
                facts.n()
            )));
        }
        let mut owned = vec![0usize; entities.n()];
        for (fact_row, &owner) in fact_owner.iter().enumerate() {
            if owner >= entities.n() {
                return Err(RelationalError::DanglingForeignKey {
                    fact_row,
                    owner,
                    entities: entities.n(),
                });
            }
            owned[owner] += 1;
        }
        if let Some((entity, &count)) =
            owned.iter().enumerate().find(|(_, &c)| c > schema.max_fanout())
        {
            return Err(RelationalError::FanoutExceeded {
                entity,
                owned: count,
                cap: schema.max_fanout(),
            });
        }
        Ok(Self { schema, entities, facts, fact_owner })
    }

    /// The relational schema.
    #[must_use]
    pub fn schema(&self) -> &RelationalSchema {
        &self.schema
    }

    /// The entity table.
    #[must_use]
    pub fn entities(&self) -> &Dataset {
        &self.entities
    }

    /// The fact table.
    #[must_use]
    pub fn facts(&self) -> &Dataset {
        &self.facts
    }

    /// The foreign-key column: `fact_owner()[f]` owns fact row `f`.
    #[must_use]
    pub fn fact_owner(&self) -> &[usize] {
        &self.fact_owner
    }

    /// Number of individuals.
    #[must_use]
    pub fn n_entities(&self) -> usize {
        self.entities.n()
    }

    /// Number of facts.
    #[must_use]
    pub fn n_facts(&self) -> usize {
        self.facts.n()
    }

    /// Facts owned per individual.
    #[must_use]
    pub fn fanouts(&self) -> Vec<usize> {
        let mut owned = vec![0usize; self.entities.n()];
        for &owner in &self.fact_owner {
            owned[owner] += 1;
        }
        owned
    }

    /// The flattened per-individual view: entity attributes plus the owned
    /// fact count as a categorical attribute (`0..=m`). One row per
    /// individual — so a change of one individual changes exactly one row,
    /// restoring the paper's single-table sensitivity analysis.
    #[must_use]
    pub fn flatten_counts(&self) -> Dataset {
        let fanouts = self.fanouts();
        let rows: Vec<Vec<u32>> = (0..self.entities.n())
            .map(|e| {
                let mut row = self.entities.row(e);
                row.push(fanouts[e] as u32);
                row
            })
            .collect();
        Dataset::from_rows(self.schema.flattened().clone(), &rows)
            .expect("flattened rows are in-domain by construction")
    }

    /// The per-fact view: each fact row prefixed with its owner's entity
    /// attributes. One individual influences up to `m` rows here — the view
    /// PrivBayes must treat with group privacy.
    #[must_use]
    pub fn fact_view(&self) -> Dataset {
        let rows: Vec<Vec<u32>> = self
            .fact_owner
            .iter()
            .enumerate()
            .map(|(f, &owner)| {
                let mut row = self.entities.row(owner);
                row.extend(self.facts.row(f));
                row
            })
            .collect();
        Dataset::from_rows(self.schema.fact_view().clone(), &rows)
            .expect("fact-view rows are in-domain by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::EVENT_COUNT_ATTR;
    use privbayes_data::{Attribute, Schema};

    fn small() -> RelationalDataset {
        let entity = Schema::new(vec![Attribute::binary("smoker")]).unwrap();
        let fact = Schema::new(vec![Attribute::categorical("dx", 3).unwrap()]).unwrap();
        let schema = RelationalSchema::new(entity.clone(), fact.clone(), 2).unwrap();
        let entities = Dataset::from_rows(entity, &[vec![0], vec![1], vec![1]]).unwrap();
        let facts = Dataset::from_rows(fact, &[vec![0], vec![2], vec![1]]).unwrap();
        RelationalDataset::new(schema, entities, facts, vec![0, 1, 1]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let data = small();
        assert_eq!(data.n_entities(), 3);
        assert_eq!(data.n_facts(), 3);
        assert_eq!(data.fanouts(), vec![1, 2, 0]);
    }

    #[test]
    fn flatten_counts_appends_fanout() {
        let data = small();
        let flat = data.flatten_counts();
        assert_eq!(flat.n(), 3);
        let count_col = flat.schema().index_of(EVENT_COUNT_ATTR).unwrap();
        assert_eq!(flat.column(count_col), &[1, 2, 0]);
        assert_eq!(flat.column(0), data.entities().column(0));
    }

    #[test]
    fn fact_view_prefixes_owner_attributes() {
        let data = small();
        let view = data.fact_view();
        assert_eq!(view.n(), 3);
        // Fact 0 owned by entity 0 (smoker=0); facts 1,2 by entity 1 (smoker=1).
        assert_eq!(view.column(0), &[0, 1, 1]);
        assert_eq!(view.column(1), &[0, 2, 1]);
    }

    #[test]
    fn rejects_dangling_foreign_keys() {
        let entity = Schema::new(vec![Attribute::binary("smoker")]).unwrap();
        let fact = Schema::new(vec![Attribute::binary("flag")]).unwrap();
        let schema = RelationalSchema::new(entity.clone(), fact.clone(), 2).unwrap();
        let entities = Dataset::from_rows(entity, &[vec![0]]).unwrap();
        let facts = Dataset::from_rows(fact, &[vec![1]]).unwrap();
        let e = RelationalDataset::new(schema, entities, facts, vec![5]).unwrap_err();
        assert!(matches!(e, RelationalError::DanglingForeignKey { owner: 5, .. }));
    }

    #[test]
    fn rejects_fanout_violation() {
        let entity = Schema::new(vec![Attribute::binary("smoker")]).unwrap();
        let fact = Schema::new(vec![Attribute::binary("flag")]).unwrap();
        let schema = RelationalSchema::new(entity.clone(), fact.clone(), 1).unwrap();
        let entities = Dataset::from_rows(entity, &[vec![0]]).unwrap();
        let facts = Dataset::from_rows(fact, &[vec![0], vec![1]]).unwrap();
        let e = RelationalDataset::new(schema, entities, facts, vec![0, 0]).unwrap_err();
        assert!(matches!(e, RelationalError::FanoutExceeded { owned: 2, cap: 1, .. }));
    }

    #[test]
    fn rejects_owner_arity_mismatch() {
        let entity = Schema::new(vec![Attribute::binary("smoker")]).unwrap();
        let fact = Schema::new(vec![Attribute::binary("flag")]).unwrap();
        let schema = RelationalSchema::new(entity.clone(), fact.clone(), 1).unwrap();
        let entities = Dataset::from_rows(entity, &[vec![0]]).unwrap();
        let facts = Dataset::from_rows(fact, &[vec![0]]).unwrap();
        assert!(RelationalDataset::new(schema, entities, facts, vec![]).is_err());
    }

    #[test]
    fn rejects_schema_mismatch() {
        let entity = Schema::new(vec![Attribute::binary("smoker")]).unwrap();
        let fact = Schema::new(vec![Attribute::binary("flag")]).unwrap();
        let schema = RelationalSchema::new(entity.clone(), fact.clone(), 1).unwrap();
        let wrong = Schema::new(vec![Attribute::binary("other")]).unwrap();
        let entities = Dataset::from_rows(wrong, &[vec![0]]).unwrap();
        let facts = Dataset::from_rows(fact, &[vec![0]]).unwrap();
        assert!(RelationalDataset::new(schema, entities, facts, vec![0]).is_err());
    }
}
