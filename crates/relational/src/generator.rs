//! Synthetic relational ground truth for tests and experiments.
//!
//! The paper's datasets are single-table; no public multi-table benchmark
//! with per-individual privacy semantics exists in this offline environment,
//! so experiments use a generated clinic-style database whose ground-truth
//! correlations are known by construction (see DESIGN.md's substitution
//! notes): smoking status drives both how *often* an individual generates
//! visit facts and *what* those facts contain, giving the synthesiser a real
//! cross-table signal to preserve.

use privbayes_data::{Attribute, Dataset, Schema};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::dataset::RelationalDataset;
use crate::schema::RelationalSchema;

/// Generates a clinic-style two-table database.
///
/// * **Entities** (`n_entities` rows): `smoker` (30% yes), `region`
///   (4 values, skewed).
/// * **Facts** (visits): each individual draws `Binomial(max_fanout, p)`
///   visits with `p = 0.7` for smokers and `0.3` otherwise; each visit has
///   `diagnosis` (5 values, smokers skew to codes 3–4) and `inpatient`
///   (likelier for high diagnosis codes).
///
/// # Panics
/// Panics if `n_entities == 0` or `max_fanout == 0`.
#[must_use]
pub fn clinic_benchmark(n_entities: usize, max_fanout: usize, seed: u64) -> RelationalDataset {
    assert!(n_entities > 0, "need at least one individual");
    assert!(max_fanout > 0, "fan-out cap must be positive");
    let entity_schema = Schema::new(vec![
        Attribute::binary("smoker"),
        Attribute::categorical_labelled("region", ["north", "south", "east", "west"]).unwrap(),
    ])
    .expect("static schema is valid");
    let fact_schema = Schema::new(vec![
        Attribute::categorical("diagnosis", 5).unwrap(),
        Attribute::binary("inpatient"),
    ])
    .expect("static schema is valid");
    let schema = RelationalSchema::new(entity_schema.clone(), fact_schema.clone(), max_fanout)
        .expect("static relational schema is valid");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut entity_rows = Vec::with_capacity(n_entities);
    let mut fact_rows = Vec::new();
    let mut owners = Vec::new();
    for e in 0..n_entities {
        let smoker = u32::from(rng.random::<f64>() < 0.3);
        let region = skewed_region(&mut rng);
        entity_rows.push(vec![smoker, region]);

        let visit_p = if smoker == 1 { 0.7 } else { 0.3 };
        let visits = (0..max_fanout).filter(|_| rng.random::<f64>() < visit_p).count();
        for _ in 0..visits {
            let diagnosis = sample_diagnosis(smoker, &mut rng);
            let inpatient_p = 0.1 + 0.2 * diagnosis as f64 / 4.0;
            let inpatient = u32::from(rng.random::<f64>() < inpatient_p);
            fact_rows.push(vec![diagnosis, inpatient]);
            owners.push(e);
        }
    }
    let entities =
        Dataset::from_rows(entity_schema, &entity_rows).expect("generated rows are in-domain");
    let facts = Dataset::from_rows(fact_schema, &fact_rows).expect("generated rows are in-domain");
    RelationalDataset::new(schema, entities, facts, owners)
        .expect("generator respects its own fan-out cap")
}

fn skewed_region<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    let u: f64 = rng.random();
    match u {
        u if u < 0.4 => 0,
        u if u < 0.7 => 1,
        u if u < 0.9 => 2,
        _ => 3,
    }
}

fn sample_diagnosis<R: Rng + ?Sized>(smoker: u32, rng: &mut R) -> u32 {
    let u: f64 = rng.random();
    if smoker == 1 {
        // Skew towards codes 3-4.
        match u {
            u if u < 0.1 => 0,
            u if u < 0.2 => 1,
            u if u < 0.35 => 2,
            u if u < 0.65 => 3,
            _ => 4,
        }
    } else {
        match u {
            u if u < 0.35 => 0,
            u if u < 0.65 => 1,
            u if u < 0.85 => 2,
            u if u < 0.95 => 3,
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_respects_shape() {
        let data = clinic_benchmark(500, 3, 1);
        assert_eq!(data.n_entities(), 500);
        assert!(data.fanouts().iter().all(|&f| f <= 3));
        assert!(data.n_facts() > 0);
    }

    #[test]
    fn smokers_generate_more_visits() {
        let data = clinic_benchmark(4000, 5, 2);
        let fanouts = data.fanouts();
        let mut smoker_visits = 0.0;
        let mut smoker_count = 0.0;
        let mut other_visits = 0.0;
        let mut other_count = 0.0;
        for (e, &fanout) in fanouts.iter().enumerate() {
            if data.entities().value(e, 0) == 1 {
                smoker_visits += fanout as f64;
                smoker_count += 1.0;
            } else {
                other_visits += fanout as f64;
                other_count += 1.0;
            }
        }
        let smoker_rate = smoker_visits / smoker_count;
        let other_rate = other_visits / other_count;
        assert!(
            smoker_rate > other_rate * 1.5,
            "smokers must visit more: {smoker_rate:.2} vs {other_rate:.2}"
        );
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a = clinic_benchmark(200, 3, 7);
        let b = clinic_benchmark(200, 3, 7);
        assert_eq!(a, b);
        let c = clinic_benchmark(200, 3, 8);
        assert_ne!(a, c);
    }
}
