//! End-to-end relational synthesis.
//!
//! Two models are fit under a split budget, then composed:
//!
//! 1. **Entity model** (`ε_e = entity_share · ε`): standard PrivBayes over
//!    the flattened per-individual view (entity attributes + owned-fact
//!    count). One individual = one row, so the paper's single-table analysis
//!    applies unchanged.
//! 2. **Fact model** (`ε_f = (1 − entity_share) · ε`): the conditional model
//!    of [`crate::model`] over the per-fact view, with all noise scaled by
//!    the fan-out cap `m` (group privacy).
//!
//! Synthesis samples individuals (attributes + a fact count `k ≤ m`) from
//! the entity model, then draws `k` facts per individual from the fact model
//! conditioned on the individual's attributes. Both phases access the
//! sensitive data through differentially private mechanisms only, so by
//! sequential composition the whole release is `(ε_e + ε_f)`-DP **at the
//! individual level** — the guarantee the paper's concluding remarks call
//! for in multi-table settings.

use privbayes::pipeline::{PrivBayes, PrivBayesOptions, SynthesisResult};
use privbayes_data::Dataset;
use rand::Rng;

use crate::dataset::RelationalDataset;
use crate::error::RelationalError;
use crate::model::{fit_fact_model, ConditionalFactModel, FactModelOptions};

/// Configuration of one relational synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationalOptions {
    /// Total individual-level privacy budget ε.
    pub epsilon: f64,
    /// Fraction of ε spent on the entity model (the rest funds the fact
    /// model). Default 0.5.
    pub entity_share: f64,
    /// β split inside each phase.
    pub beta: f64,
    /// θ-usefulness threshold inside each phase.
    pub theta: f64,
    /// Parent-set cardinality cap for both models.
    pub max_parents: usize,
}

impl RelationalOptions {
    /// Paper-style defaults at total budget `epsilon`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        Self { epsilon, entity_share: 0.5, beta: 0.3, theta: 4.0, max_parents: 3 }
    }

    /// Sets the entity/fact budget split.
    #[must_use]
    pub fn with_entity_share(mut self, share: f64) -> Self {
        self.entity_share = share;
        self
    }

    fn validate(&self) -> Result<(), RelationalError> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(RelationalError::InvalidConfig(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        if !(self.entity_share > 0.0 && self.entity_share < 1.0) {
            return Err(RelationalError::InvalidConfig(format!(
                "entity_share must lie in (0,1), got {}",
                self.entity_share
            )));
        }
        Ok(())
    }
}

/// The output of a relational synthesis run.
#[derive(Debug, Clone)]
pub struct RelationalSynthesis {
    /// The synthetic two-table database.
    pub synthetic: RelationalDataset,
    /// The entity-phase PrivBayes result (over the flattened view).
    pub entity_result: SynthesisResult,
    /// The fitted conditional fact model.
    pub fact_model: ConditionalFactModel,
    /// Budget spent on the entity phase.
    pub epsilon_entity: f64,
    /// Budget spent on the fact phase (group level).
    pub epsilon_fact: f64,
}

/// The relational synthesiser.
#[derive(Debug, Clone)]
pub struct RelationalPrivBayes {
    options: RelationalOptions,
}

impl RelationalPrivBayes {
    /// Creates a synthesiser with the given options.
    #[must_use]
    pub fn new(options: RelationalOptions) -> Self {
        Self { options }
    }

    /// Runs the two-phase pipeline on a relational dataset.
    ///
    /// # Errors
    /// Returns [`RelationalError::InvalidConfig`] on bad options and
    /// propagates phase failures.
    pub fn synthesize<R: Rng + ?Sized>(
        &self,
        data: &RelationalDataset,
        rng: &mut R,
    ) -> Result<RelationalSynthesis, RelationalError> {
        self.options.validate()?;
        let schema = data.schema().clone();
        let m = schema.max_fanout();
        let eps_entity = self.options.epsilon * self.options.entity_share;
        let eps_fact = self.options.epsilon - eps_entity;

        // Phase 1: individuals (entity attributes + fact count).
        let flat = data.flatten_counts();
        let entity_options = PrivBayesOptions {
            beta: self.options.beta,
            theta: self.options.theta,
            max_degree: self.options.max_parents,
            ..PrivBayesOptions::new(eps_entity)
        };
        let entity_result = PrivBayes::new(entity_options).synthesize(&flat, rng)?;

        // Phase 2: facts conditioned on their owner.
        let view = data.fact_view();
        let fact_options = FactModelOptions {
            epsilon: Some(eps_fact),
            beta: self.options.beta,
            theta: self.options.theta,
            max_parents: self.options.max_parents,
        };
        let fact_model = fit_fact_model(&view, schema.entity_arity(), m, &fact_options, rng)?;

        // Phase 3: compose (pure post-processing).
        let flat_synth = &entity_result.synthetic;
        let e_arity = schema.entity_arity();
        let count_col = e_arity; // EVENT_COUNT_ATTR sits after the entity attrs
        let mut entity_rows: Vec<Vec<u32>> = Vec::with_capacity(flat_synth.n());
        let mut fact_rows: Vec<Vec<u32>> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        for r in 0..flat_synth.n() {
            let row = flat_synth.row(r);
            let entity_values = &row[..e_arity];
            let count = row[count_col] as usize;
            for _ in 0..count.min(m) {
                fact_rows.push(fact_model.sample_fact(entity_values, rng));
                owners.push(r);
            }
            entity_rows.push(entity_values.to_vec());
        }
        let entities = Dataset::from_rows(schema.entity().clone(), &entity_rows)?;
        let facts = Dataset::from_rows(schema.fact().clone(), &fact_rows)?;
        let synthetic = RelationalDataset::new(schema, entities, facts, owners)?;

        Ok(RelationalSynthesis {
            synthetic,
            entity_result,
            fact_model,
            epsilon_entity: eps_entity,
            epsilon_fact: eps_fact,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::clinic_benchmark;
    use privbayes_marginals::{total_variation, Axis, ContingencyTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_produces_valid_relational_data() {
        let data = clinic_benchmark(1500, 4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let result = RelationalPrivBayes::new(RelationalOptions::new(2.0))
            .synthesize(&data, &mut rng)
            .unwrap();
        let synth = &result.synthetic;
        assert_eq!(synth.n_entities(), data.n_entities());
        assert!(synth.fanouts().iter().all(|&f| f <= 4), "fan-out cap respected");
        assert!((result.epsilon_entity + result.epsilon_fact - 2.0).abs() < 1e-12);
    }

    #[test]
    fn high_budget_preserves_entity_fact_correlation() {
        let data = clinic_benchmark(4000, 3, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let result = RelationalPrivBayes::new(RelationalOptions::new(50.0))
            .synthesize(&data, &mut rng)
            .unwrap();
        // Compare the (smoker × diagnosis) joint in the real vs synthetic
        // fact views — the cross-table correlation synthesis must preserve.
        let truth =
            ContingencyTable::from_dataset(&data.fact_view(), &[Axis::raw(0), Axis::raw(2)]);
        let synth = ContingencyTable::from_dataset(
            &result.synthetic.fact_view(),
            &[Axis::raw(0), Axis::raw(2)],
        );
        let tvd = total_variation(truth.values(), synth.values());
        assert!(tvd < 0.1, "cross-table joint must survive at high ε, tvd = {tvd}");
    }

    #[test]
    fn fanout_distribution_is_approximately_preserved() {
        let data = clinic_benchmark(3000, 4, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let result = RelationalPrivBayes::new(RelationalOptions::new(20.0))
            .synthesize(&data, &mut rng)
            .unwrap();
        let hist = |d: &RelationalDataset| {
            let mut h = vec![0f64; 5];
            for f in d.fanouts() {
                h[f] += 1.0;
            }
            let n = d.n_entities() as f64;
            h.iter_mut().for_each(|x| *x /= n);
            h
        };
        let tvd = total_variation(&hist(&data), &hist(&result.synthetic));
        assert!(tvd < 0.1, "fan-out histogram tvd = {tvd}");
    }

    #[test]
    fn rejects_invalid_options() {
        let data = clinic_benchmark(50, 2, 7);
        let mut rng = StdRng::seed_from_u64(8);
        for opts in [
            RelationalOptions::new(0.0),
            RelationalOptions::new(-1.0),
            RelationalOptions::new(1.0).with_entity_share(0.0),
            RelationalOptions::new(1.0).with_entity_share(1.0),
        ] {
            assert!(RelationalPrivBayes::new(opts).synthesize(&data, &mut rng).is_err());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let data = clinic_benchmark(400, 3, 9);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            RelationalPrivBayes::new(RelationalOptions::new(1.0))
                .synthesize(&data, &mut rng)
                .unwrap()
                .synthetic
        };
        assert_eq!(run(42), run(42));
    }
}
