//! Server-side observability: the process-wide metric registry, request
//! contexts (ids + per-stage timing), and the JSON-lines access log.
//!
//! One [`ServerMetrics`] lives inside the server's shared state and is the
//! single source of truth for `GET /metrics`, `GET /healthz`, the live
//! [`ServerStats`] view, and the final stats returned by
//! [`ServerHandle::join`] — they all read the same atomics, so the numbers
//! can never drift apart. Hot-path cost is one relaxed atomic add per
//! event: handles for the label-free metrics are pre-registered `Arc`s, and
//! the per-chunk streaming path touches no locks at all (row/byte totals
//! are accumulated locally and added once per request).
//!
//! [`ServerStats`]: crate::server::ServerStats
//! [`ServerHandle::join`]: crate::server::ServerHandle::join

use std::cell::Cell;
use std::fs::File;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use privbayes_obs::{json_escape, Counter, EventLog, Gauge, Histogram, MetricKind, Registry};

use crate::ledger::TenantBudget;

/// The response header carrying the request id (echoed from the request
/// when the client sent a valid one, generated otherwise).
pub const REQUEST_ID_HEADER: &str = "X-PrivBayes-Request-Id";

/// Events kept in the in-memory access-log ring (the file, when configured,
/// keeps everything).
const EVENT_RING: usize = 1024;

/// All request stages recorded under `privbayes_stage_seconds`.
pub const STAGES: &[&str] = &["parse", "ledger", "lookup", "sample", "write"];

/// Pre-registered handles over one [`Registry`] — the process-wide metric
/// surface of a server instance.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Registry,
    /// Connections accepted but not yet claimed by a worker.
    pub(crate) queue_depth: Arc<Gauge>,
    /// Connections answered 503 by the acceptor because the queue was full.
    pub(crate) queue_rejected: Arc<Counter>,
    /// Handler panics caught and isolated.
    pub(crate) panics: Arc<Counter>,
    /// Chunked row streams currently in flight.
    pub(crate) active_streams: Arc<Gauge>,
    /// Synthetic rows streamed to clients.
    pub(crate) rows_streamed: Arc<Counter>,
    /// Response-body bytes of streamed rows.
    pub(crate) bytes_streamed: Arc<Counter>,
    /// Wall time of ledger persist attempts.
    pub(crate) ledger_persist_seconds: Arc<Histogram>,
    /// Wall time of whole fit requests (parse to registration).
    pub(crate) fit_seconds: Arc<Histogram>,
    /// Wall time spent compiling alias tables at model load/registration.
    pub(crate) alias_build_seconds: Arc<Histogram>,
    /// Requests served over an already-used (kept-alive) connection.
    pub(crate) connections_reused: Arc<Counter>,
    /// Row-block cache hits (chunks served as preformatted bytes).
    pub(crate) rowblock_cache_hits: Arc<Counter>,
    /// Row-block cache misses (chunks sampled and formatted on demand).
    pub(crate) rowblock_cache_misses: Arc<Counter>,
    /// Bytes evicted from the row-block cache to stay under its budget.
    pub(crate) rowblock_cache_evicted_bytes: Arc<Counter>,
    events: EventLog,
    access_log: Option<Mutex<File>>,
    id_base: u64,
    id_seq: AtomicU64,
}

impl ServerMetrics {
    /// A fresh registry with every metric family described up front, so a
    /// scrape before the first request already lists the full catalogue.
    /// `access_log` is an already-opened sink for JSON access lines (the
    /// in-memory ring is always kept regardless).
    #[must_use]
    pub fn new(access_log: Option<File>) -> Self {
        let registry = Registry::new();
        registry.describe(
            "privbayes_requests_total",
            MetricKind::Counter,
            "Requests answered, by endpoint and status (acceptor-level 503 \
             rejections appear under endpoint=\"acceptor\")",
        );
        registry.describe(
            "privbayes_request_seconds",
            MetricKind::Histogram,
            "End-to-end request wall time, by endpoint",
        );
        registry.describe(
            "privbayes_stage_seconds",
            MetricKind::Histogram,
            "Per-request stage wall time (parse, ledger, lookup, sample, write)",
        );
        registry.describe(
            "privbayes_ledger_persist_total",
            MetricKind::Counter,
            "Ledger persist attempts by outcome (ok, rolled_back, durable_failure)",
        );
        registry.describe(
            "privbayes_engine_cache_hits_total",
            MetricKind::Counter,
            "CountEngine requests answered from cache across all fits",
        );
        registry.describe(
            "privbayes_engine_projections_total",
            MetricKind::Counter,
            "CountEngine requests answered by projecting a cached superset",
        );
        registry.describe(
            "privbayes_engine_scans_total",
            MetricKind::Counter,
            "CountEngine requests that scanned the rows",
        );
        registry.describe(
            "privbayes_engine_bytes_materialized_total",
            MetricKind::Counter,
            "Bytes of count tables materialized by CountEngine scans",
        );
        registry.describe(
            "privbayes_ingest_rows_total",
            MetricKind::Counter,
            "Rows accepted by POST /v1/tenants/{t}/ingest, by tenant",
        );
        registry.describe(
            "privbayes_ingest_batch_rows",
            MetricKind::Histogram,
            "Rows per accepted ingest batch (power-of-two buckets; one \
             \"microsecond\" stands for one row)",
        );
        registry.describe(
            "privbayes_refits_total",
            MetricKind::Counter,
            "Background refits by outcome (ok, failed, exhausted, charge-failed)",
        );
        registry.describe(
            "privbayes_model_generation",
            MetricKind::Gauge,
            "Newest registry generation serving each model id",
        );
        let describe_gauge = |name: &str, help: &str| {
            registry.describe(name, MetricKind::Gauge, help);
            registry.gauge(name, &[])
        };
        let describe_counter = |name: &str, help: &str| {
            registry.describe(name, MetricKind::Counter, help);
            registry.counter(name, &[])
        };
        let describe_histogram = |name: &str, help: &str| {
            registry.describe(name, MetricKind::Histogram, help);
            registry.histogram(name, &[])
        };
        let queue_depth = describe_gauge(
            "privbayes_queue_depth",
            "Connections accepted but not yet claimed by a worker",
        );
        let queue_rejected = describe_counter(
            "privbayes_queue_rejected_total",
            "Connections answered 503 because the pending queue was full",
        );
        let panics =
            describe_counter("privbayes_worker_panics_total", "Handler panics caught and isolated");
        let active_streams =
            describe_gauge("privbayes_active_streams", "Chunked row streams currently in flight");
        let rows_streamed =
            describe_counter("privbayes_rows_streamed_total", "Synthetic rows streamed to clients");
        let bytes_streamed = describe_counter(
            "privbayes_bytes_streamed_total",
            "Response-body bytes of streamed rows (headers and fixed responses excluded)",
        );
        let ledger_persist_seconds = describe_histogram(
            "privbayes_ledger_persist_seconds",
            "Wall time of ledger persist attempts (write, fsync, rename, dir sync)",
        );
        let fit_seconds = describe_histogram("privbayes_fit_seconds", "Wall time of fit requests");
        let alias_build_seconds = describe_histogram(
            "privbayes_alias_build_seconds",
            "Wall time compiling alias tables at model load/registration",
        );
        let connections_reused = describe_counter(
            "privbayes_connections_reused_total",
            "Requests served over an already-used (kept-alive) connection",
        );
        let rowblock_cache_hits = describe_counter(
            "privbayes_rowblock_cache_hits_total",
            "Stream chunks served from the preformatted row-block cache",
        );
        let rowblock_cache_misses = describe_counter(
            "privbayes_rowblock_cache_misses_total",
            "Stream chunks sampled and formatted on demand (cache miss or bypass)",
        );
        let rowblock_cache_evicted_bytes = describe_counter(
            "privbayes_rowblock_cache_evicted_bytes_total",
            "Bytes evicted from the row-block cache to stay under its budget",
        );
        registry.describe(
            "privbayes_ledger_stripe_contention_total",
            MetricKind::Counter,
            "Ledger lock acquisitions that found their stripe already held, by stripe",
        );
        // A process-stable base for generated request ids: wall-clock nanos
        // folded with the pid, SplitMix64-mixed so ids from two servers
        // started in the same nanosecond still differ.
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
            ^ (u64::from(std::process::id()) << 32);
        Self {
            registry,
            queue_depth,
            queue_rejected,
            panics,
            active_streams,
            rows_streamed,
            bytes_streamed,
            ledger_persist_seconds,
            fit_seconds,
            alias_build_seconds,
            connections_reused,
            rowblock_cache_hits,
            rowblock_cache_misses,
            rowblock_cache_evicted_bytes,
            events: EventLog::new(EVENT_RING),
            access_log: access_log.map(Mutex::new),
            id_base: mix64(seed),
            id_seq: AtomicU64::new(0),
        }
    }

    /// The underlying registry (render it, look up families, share handles).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The in-memory ring of recent access-log lines, oldest first.
    #[must_use]
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The full `/metrics` exposition: every registered family plus the
    /// per-tenant ε gauges, which are rendered fresh from the ledger
    /// snapshot at scrape time — the ledger stays the source of truth for
    /// accounting; these gauges only mirror it.
    #[must_use]
    pub fn render(&self, tenants: &[TenantBudget]) -> String {
        let mut out = self.registry.render();
        out.push_str("# HELP privbayes_tenant_epsilon_spent Privacy budget spent, by tenant (mirrors the ledger)\n");
        out.push_str("# TYPE privbayes_tenant_epsilon_spent gauge\n");
        for row in tenants {
            out.push_str(&format!(
                "privbayes_tenant_epsilon_spent{{tenant=\"{}\"}} {:?}\n",
                escape_label(&row.tenant),
                row.spent
            ));
        }
        out.push_str("# HELP privbayes_tenant_epsilon_remaining Privacy budget remaining, by tenant (mirrors the ledger)\n");
        out.push_str("# TYPE privbayes_tenant_epsilon_remaining gauge\n");
        for row in tenants {
            out.push_str(&format!(
                "privbayes_tenant_epsilon_remaining{{tenant=\"{}\"}} {:?}\n",
                escape_label(&row.tenant),
                row.remaining()
            ));
        }
        out
    }

    /// The id for one request: the client's `X-PrivBayes-Request-Id` when
    /// it is well-formed (1..=64 chars of `[A-Za-z0-9._-]`), a generated
    /// `req-`-prefixed id otherwise — so every response carries exactly one
    /// id and a hostile header can never inject log or header content.
    #[must_use]
    pub fn request_id(&self, inbound: Option<&str>) -> String {
        if let Some(id) = inbound {
            let valid = !id.is_empty()
                && id.len() <= 64
                && id.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
            if valid {
                return id.to_string();
            }
        }
        let seq = self.id_seq.fetch_add(1, Ordering::Relaxed);
        format!("req-{:016x}-{seq:06x}", self.id_base)
    }

    /// Records one closed stage into `privbayes_stage_seconds{stage=…}`.
    pub fn observe_stage(&self, stage: &'static str, elapsed: Duration) {
        self.registry.histogram("privbayes_stage_seconds", &[("stage", stage)]).observe(elapsed);
    }

    /// Accumulates one fit's engine counters into the process totals.
    pub fn record_engine(&self, stats: &privbayes_synth::EngineStats) {
        self.registry.counter("privbayes_engine_cache_hits_total", &[]).add(stats.hits as u64);
        self.registry
            .counter("privbayes_engine_projections_total", &[])
            .add(stats.projections as u64);
        self.registry.counter("privbayes_engine_scans_total", &[]).add(stats.scans as u64);
        self.registry
            .counter("privbayes_engine_bytes_materialized_total", &[])
            .add(stats.bytes_materialized);
    }

    /// Records one accepted ingest batch: the per-tenant row counter and
    /// the batch-size histogram.
    pub fn record_ingest(&self, tenant: &str, rows: u64) {
        self.registry.counter("privbayes_ingest_rows_total", &[("tenant", tenant)]).add(rows);
        // The histogram buckets are powers of two over "microseconds"; by
        // feeding one row as one microsecond the family doubles as a
        // batch-size distribution without a second histogram type.
        self.registry
            .histogram("privbayes_ingest_batch_rows", &[])
            .observe_ns(rows.saturating_mul(1000));
    }

    /// Counts one finished background refit under its outcome label.
    pub fn record_refit(&self, status: &'static str) {
        self.registry.counter("privbayes_refits_total", &[("status", status)]).inc();
    }

    /// Mirrors the newest generation serving `model` after a (re)load.
    pub fn set_model_generation(&self, model: &str, generation: u64) {
        let clamped = i64::try_from(generation).unwrap_or(i64::MAX);
        self.registry.gauge("privbayes_model_generation", &[("model", model)]).set(clamped);
    }

    /// Finishes one request: the by-endpoint/status counter, the
    /// per-endpoint latency histogram, and a JSON access line into the ring
    /// (and the file sink when configured). `bytes` is what actually
    /// reached the wire, so torn responses are visible in the log.
    pub fn finish_request(&self, ctx: &RequestCtx<'_>, method: &str, path: &str, bytes: u64) {
        let endpoint = ctx.endpoint.get();
        let status = ctx.status.get();
        let elapsed = ctx.started.elapsed();
        self.registry
            .counter(
                "privbayes_requests_total",
                &[("endpoint", endpoint), ("status", &status.to_string())],
            )
            .inc();
        self.registry
            .histogram("privbayes_request_seconds", &[("endpoint", endpoint)])
            .observe(elapsed);
        let ts = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
        let line = format!(
            "{{\"ts\":{ts},\"id\":\"{}\",\"method\":\"{}\",\"path\":\"{}\",\
             \"endpoint\":\"{endpoint}\",\"status\":{status},\"bytes\":{bytes},\
             \"micros\":{}}}",
            json_escape(&ctx.id),
            json_escape(method),
            json_escape(path),
            elapsed.as_micros()
        );
        self.events.append(line.clone());
        if let Some(sink) = &self.access_log {
            let mut file = sink.lock().expect("access log lock poisoned");
            // Log-sink failures must never fail the request that triggered
            // them; the in-memory ring still has the line.
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
    }
}

/// Per-request bookkeeping threaded through the route handlers. `Cell`
/// fields let the `catch_unwind` closure borrow the context immutably while
/// the post-panic path still reads what the handler managed to record.
#[derive(Debug)]
pub struct RequestCtx<'m> {
    /// The metrics sink (also reachable by handlers for stage timing).
    pub metrics: &'m ServerMetrics,
    /// The id echoed on this request's response.
    pub id: String,
    /// The routed endpoint label (`"unknown"` until dispatch).
    pub endpoint: Cell<&'static str>,
    /// The status actually written (0 until a response line goes out).
    pub status: Cell<u16>,
    /// Whether the connection stays open after this response (decided by
    /// the serving loop before routing; response writers advertise it).
    pub keep_alive: Cell<bool>,
    started: Instant,
    last_mark: Cell<Instant>,
}

impl<'m> RequestCtx<'m> {
    /// A context started now.
    #[must_use]
    pub fn new(metrics: &'m ServerMetrics, id: String) -> Self {
        let now = Instant::now();
        Self {
            metrics,
            id,
            endpoint: Cell::new("unknown"),
            status: Cell::new(0),
            keep_alive: Cell::new(false),
            started: now,
            last_mark: Cell::new(now),
        }
    }

    /// Closes the stage that started at the previous mark (or at
    /// construction) under `stage`, recording it into the stage histogram.
    pub fn stage(&self, stage: &'static str) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last_mark.get());
        self.last_mark.set(now);
        self.metrics.observe_stage(stage, elapsed);
    }

    /// Records a stage measured by the caller (for interleaved work like
    /// the sample/write split of a chunked stream, where stages are not
    /// sequential). Also advances the mark so a following [`stage`] call
    /// does not double-count.
    ///
    /// [`stage`]: RequestCtx::stage
    pub fn observe_stage(&self, stage: &'static str, elapsed: Duration) {
        self.last_mark.set(Instant::now());
        self.metrics.observe_stage(stage, elapsed);
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// SplitMix64 finalizer — spreads the id seed over the whole word.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_obs::parse_text;

    #[test]
    fn catalogue_is_scrapeable_before_any_traffic() {
        let metrics = ServerMetrics::new(None);
        let text = metrics.render(&[]);
        let snapshot = parse_text(&text).expect("fresh exposition parses");
        for name in [
            "privbayes_queue_depth",
            "privbayes_queue_rejected_total",
            "privbayes_worker_panics_total",
            "privbayes_active_streams",
            "privbayes_rows_streamed_total",
            "privbayes_bytes_streamed_total",
            "privbayes_connections_reused_total",
            "privbayes_rowblock_cache_hits_total",
            "privbayes_rowblock_cache_misses_total",
            "privbayes_rowblock_cache_evicted_bytes_total",
        ] {
            assert!(snapshot.has(name), "missing {name} in:\n{text}");
        }
        for family in [
            "privbayes_requests_total",
            "privbayes_stage_seconds",
            "privbayes_ledger_stripe_contention_total",
            "privbayes_tenant_epsilon_spent",
            "privbayes_tenant_epsilon_remaining",
            "privbayes_ingest_rows_total",
            "privbayes_ingest_batch_rows",
            "privbayes_refits_total",
            "privbayes_model_generation",
        ] {
            assert!(snapshot.types.contains_key(family), "no TYPE line for {family}");
        }
    }

    #[test]
    fn ingest_and_refit_metrics_accumulate() {
        let metrics = ServerMetrics::new(None);
        metrics.record_ingest("acme", 128);
        metrics.record_ingest("acme", 64);
        metrics.record_ingest("globex", 1);
        metrics.record_refit("ok");
        metrics.record_refit("ok");
        metrics.record_refit("failed");
        metrics.set_model_generation("census", 3);
        metrics.set_model_generation("census", 7);
        let snapshot = parse_text(&metrics.render(&[])).unwrap();
        assert_eq!(
            snapshot.value("privbayes_ingest_rows_total", &[("tenant", "acme")]),
            Some(192.0)
        );
        assert_eq!(
            snapshot.value("privbayes_ingest_rows_total", &[("tenant", "globex")]),
            Some(1.0)
        );
        assert_eq!(snapshot.value("privbayes_ingest_batch_rows_count", &[]), Some(3.0));
        assert_eq!(snapshot.value("privbayes_refits_total", &[("status", "ok")]), Some(2.0));
        assert_eq!(snapshot.value("privbayes_refits_total", &[("status", "failed")]), Some(1.0));
        assert_eq!(snapshot.value("privbayes_model_generation", &[("model", "census")]), Some(7.0));
    }

    #[test]
    fn tenant_gauges_mirror_the_snapshot() {
        let metrics = ServerMetrics::new(None);
        let rows = vec![
            TenantBudget { tenant: "acme".into(), total: 2.0, spent: 0.5 },
            TenantBudget { tenant: "globex".into(), total: 1.0, spent: 1.0 },
        ];
        let snapshot = parse_text(&metrics.render(&rows)).unwrap();
        assert_eq!(
            snapshot.value("privbayes_tenant_epsilon_spent", &[("tenant", "acme")]),
            Some(0.5)
        );
        assert_eq!(
            snapshot.value("privbayes_tenant_epsilon_remaining", &[("tenant", "acme")]),
            Some(1.5)
        );
        assert_eq!(
            snapshot.value("privbayes_tenant_epsilon_remaining", &[("tenant", "globex")]),
            Some(0.0)
        );
    }

    #[test]
    fn request_ids_honor_valid_inbound_and_reject_hostile_ones() {
        let metrics = ServerMetrics::new(None);
        assert_eq!(metrics.request_id(Some("abc-123_x.y")), "abc-123_x.y");
        for hostile in ["", "has space", "a\r\nInjected: yes", &"x".repeat(65)] {
            let id = metrics.request_id(Some(hostile));
            assert!(id.starts_with("req-"), "hostile id `{hostile}` must be replaced, got {id}");
        }
        let a = metrics.request_id(None);
        let b = metrics.request_id(None);
        assert_ne!(a, b, "generated ids are unique per request");
    }

    #[test]
    fn finish_request_counts_and_logs() {
        let metrics = ServerMetrics::new(None);
        let ctx = RequestCtx::new(&metrics, "req-test".into());
        ctx.endpoint.set("healthz");
        ctx.status.set(200);
        ctx.stage("parse");
        metrics.finish_request(&ctx, "GET", "/healthz", 42);
        let snapshot = parse_text(&metrics.render(&[])).unwrap();
        assert_eq!(
            snapshot
                .value("privbayes_requests_total", &[("endpoint", "healthz"), ("status", "200")]),
            Some(1.0)
        );
        assert_eq!(
            snapshot.value("privbayes_request_seconds_count", &[("endpoint", "healthz")]),
            Some(1.0)
        );
        let events = metrics.events().snapshot();
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("\"id\":\"req-test\""), "{}", events[0]);
        assert!(events[0].contains("\"status\":200"), "{}", events[0]);
        assert!(events[0].contains("\"bytes\":42"), "{}", events[0]);
    }
}
