//! The per-tenant privacy-budget ledger.
//!
//! Every tenant owns one [`PrivacyBudget`]; endpoints that *fit* models
//! debit ε from it atomically (check + spend under one lock, so two racing
//! requests can never jointly overspend), while synthesis from an already
//! released model is post-processing and costs nothing. A rejected charge
//! leaves the ledger byte-for-byte unchanged — the structured
//! [`LedgerError::Exhausted`] carries the requested and remaining amounts so
//! the serving layer can surface them to the caller.
//!
//! With a persistence path configured, every mutation rewrites the ledger
//! file (`privbayes-ledger/1` JSON via `privbayes-model`'s budget IO), and
//! construction restores it, so accounting survives restarts exactly:
//! budgets round-trip bit-for-bit.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use privbayes_dp::{DpError, PrivacyBudget};
use privbayes_model::{budget_from_json, budget_to_json, Json};

use crate::error::ServerError;
use crate::registry::validate_id;

/// The ledger file format identifier.
pub const LEDGER_FORMAT: &str = "privbayes-ledger/1";

/// Structured failures from ledger operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The tenant has never been registered.
    UnknownTenant(String),
    /// The charge would exceed the tenant's remaining budget. State is
    /// unchanged.
    Exhausted {
        /// The tenant involved.
        tenant: String,
        /// ε requested by the rejected operation.
        requested: f64,
        /// ε still available to the tenant.
        remaining: f64,
    },
    /// The amount itself was invalid (non-positive or non-finite).
    InvalidAmount(String),
    /// The ledger file could not be written; the in-memory state was rolled
    /// back, so nothing was spent.
    Persistence(String),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::UnknownTenant(t) => write!(f, "unknown tenant `{t}`"),
            LedgerError::Exhausted { tenant, requested, remaining } => write!(
                f,
                "tenant `{tenant}` budget exhausted: requested {requested}, remaining {remaining}"
            ),
            LedgerError::InvalidAmount(msg) => write!(f, "invalid amount: {msg}"),
            LedgerError::Persistence(msg) => write!(f, "ledger persistence failed: {msg}"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// One row of a ledger snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantBudget {
    /// Tenant name.
    pub tenant: String,
    /// Total ε granted.
    pub total: f64,
    /// ε spent so far.
    pub spent: f64,
}

impl TenantBudget {
    /// ε still available.
    #[must_use]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }
}

/// A thread-safe map from tenant name to privacy budget, optionally backed
/// by a JSON file.
#[derive(Debug)]
pub struct BudgetLedger {
    tenants: Mutex<BTreeMap<String, PrivacyBudget>>,
    path: Option<PathBuf>,
}

impl BudgetLedger {
    /// An empty, purely in-memory ledger.
    #[must_use]
    pub fn in_memory() -> Self {
        Self { tenants: Mutex::new(BTreeMap::new()), path: None }
    }

    /// A ledger persisted at `path`. If the file exists it is restored;
    /// otherwise the ledger starts empty and the file is created on the
    /// first mutation.
    ///
    /// # Errors
    /// Returns [`ServerError::Ledger`] if an existing file cannot be read or
    /// parsed (a corrupt ledger must never be silently reset — that would
    /// forget spending).
    pub fn with_persistence(path: impl Into<PathBuf>) -> Result<Self, ServerError> {
        let path = path.into();
        let tenants = if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| ServerError::Ledger(format!("{}: {e}", path.display())))?;
            Self::parse(&text)
                .map_err(|e| ServerError::Ledger(format!("{}: {e}", path.display())))?
        } else {
            BTreeMap::new()
        };
        Ok(Self { tenants: Mutex::new(tenants), path: Some(path) })
    }

    fn parse(text: &str) -> Result<BTreeMap<String, PrivacyBudget>, ServerError> {
        let json = Json::parse(text).map_err(|e| ServerError::Ledger(e.to_string()))?;
        match json.get("format").and_then(Json::as_str) {
            Some(LEDGER_FORMAT) => {}
            other => {
                return Err(ServerError::Ledger(format!(
                    "unsupported ledger format {other:?}, expected `{LEDGER_FORMAT}`"
                )))
            }
        }
        let fields = json
            .get("tenants")
            .and_then(Json::as_object)
            .ok_or_else(|| ServerError::Ledger("missing `tenants` object".into()))?;
        let mut tenants = BTreeMap::new();
        for (name, value) in fields {
            let budget = budget_from_json(value)
                .map_err(|e| ServerError::Ledger(format!("tenant `{name}`: {e}")))?;
            tenants.insert(name.clone(), budget);
        }
        Ok(tenants)
    }

    fn render(tenants: &BTreeMap<String, PrivacyBudget>) -> String {
        let fields: Vec<(String, Json)> =
            tenants.iter().map(|(name, b)| (name.clone(), budget_to_json(b))).collect();
        Json::object(vec![
            ("format", Json::String(LEDGER_FORMAT.to_string())),
            ("tenants", Json::Object(fields)),
        ])
        .to_string_pretty()
        .expect("budgets are finite")
    }

    /// Persists under the lock so file contents always match a consistent
    /// in-memory state. Writes a sibling temp file and renames it over the
    /// target, so a crash mid-write leaves either the old complete ledger
    /// or the new one — never a truncated file that would brick the next
    /// startup.
    fn persist(
        &self,
        tenants: &BTreeMap<String, PrivacyBudget>,
        path: &Path,
    ) -> Result<(), ServerError> {
        let io_err = |e: std::io::Error| ServerError::Ledger(format!("{}: {e}", path.display()));
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, Self::render(tenants)).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Registers `tenant` with a total budget of `total` ε. Re-registering
    /// an existing tenant is rejected — it would reset spending.
    ///
    /// # Errors
    /// Returns [`ServerError::Protocol`] for an invalid name or amount,
    /// [`ServerError::Conflict`] if the tenant already exists, and
    /// [`ServerError::Ledger`] if persistence fails (the in-memory insert is
    /// rolled back, so memory and file stay in sync).
    pub fn register(&self, tenant: &str, total: f64) -> Result<(), ServerError> {
        validate_id(tenant)?;
        let budget = PrivacyBudget::new(total).map_err(|e| ServerError::Protocol(e.to_string()))?;
        let mut tenants = self.tenants.lock().expect("ledger lock poisoned");
        if tenants.contains_key(tenant) {
            return Err(ServerError::Conflict(format!("tenant `{tenant}` is already registered")));
        }
        tenants.insert(tenant.to_string(), budget);
        if let Some(path) = &self.path {
            if let Err(e) = self.persist(&tenants, path) {
                tenants.remove(tenant);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Non-consuming probe: would a charge of `epsilon` against `tenant`
    /// succeed right now?
    ///
    /// # Errors
    /// The same [`LedgerError`]s as [`BudgetLedger::charge`], without any
    /// state change either way.
    pub fn check(&self, tenant: &str, epsilon: f64) -> Result<(), LedgerError> {
        let tenants = self.tenants.lock().expect("ledger lock poisoned");
        let budget =
            tenants.get(tenant).ok_or_else(|| LedgerError::UnknownTenant(tenant.to_string()))?;
        map_dp_error(budget.check(epsilon), tenant, budget)
    }

    /// Atomically debits `epsilon` from `tenant`, returning the remaining
    /// budget. On any error the ledger (and its file) is unchanged: a
    /// persistence failure rolls the in-memory debit back and is reported as
    /// [`LedgerError::Persistence`], so memory and file never disagree and a
    /// charge is only considered spent once it is durably recorded.
    ///
    /// # Errors
    /// [`LedgerError::UnknownTenant`] for an unregistered tenant,
    /// [`LedgerError::Exhausted`] if the charge exceeds the remainder,
    /// [`LedgerError::InvalidAmount`] for non-positive ε, and
    /// [`LedgerError::Persistence`] if the ledger file cannot be written.
    pub fn charge(&self, tenant: &str, epsilon: f64) -> Result<f64, LedgerError> {
        let mut tenants = self.tenants.lock().expect("ledger lock poisoned");
        let budget = tenants
            .get_mut(tenant)
            .ok_or_else(|| LedgerError::UnknownTenant(tenant.to_string()))?;
        map_dp_error(budget.consume(epsilon), tenant, budget)?;
        let remaining = budget.remaining();
        if let Some(path) = &self.path {
            if let Err(e) = self.persist(&tenants, path) {
                // Never hand out budget that is not durably recorded.
                tenants.get_mut(tenant).expect("present above").refund(epsilon);
                return Err(LedgerError::Persistence(e.to_string()));
            }
        }
        Ok(remaining)
    }

    /// Returns `epsilon` to `tenant` — compensation when an operation was
    /// charged but failed before touching sensitive data. Unknown tenants
    /// are ignored, and a persistence failure undoes the in-memory refund
    /// (the tenant keeps the spend — the conservative direction for a
    /// privacy ledger): the refund path runs on error paths and must not
    /// introduce new failures, only stay consistent.
    pub fn refund(&self, tenant: &str, epsilon: f64) {
        let mut tenants = self.tenants.lock().expect("ledger lock poisoned");
        if let Some(budget) = tenants.get_mut(tenant) {
            budget.refund(epsilon);
            if let Some(path) = &self.path {
                if self.persist(&tenants, path).is_err() {
                    let _ = tenants.get_mut(tenant).expect("present above").consume(epsilon);
                }
            }
        }
    }

    /// The tenant's current budget, if registered.
    #[must_use]
    pub fn budget(&self, tenant: &str) -> Option<TenantBudget> {
        let tenants = self.tenants.lock().expect("ledger lock poisoned");
        tenants.get(tenant).map(|b| TenantBudget {
            tenant: tenant.to_string(),
            total: b.total(),
            spent: b.spent(),
        })
    }

    /// All tenants, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TenantBudget> {
        let tenants = self.tenants.lock().expect("ledger lock poisoned");
        tenants
            .iter()
            .map(|(name, b)| TenantBudget {
                tenant: name.clone(),
                total: b.total(),
                spent: b.spent(),
            })
            .collect()
    }
}

/// Translates a [`DpError`] into the tenant-scoped ledger error.
fn map_dp_error(
    result: Result<(), DpError>,
    tenant: &str,
    budget: &PrivacyBudget,
) -> Result<(), LedgerError> {
    result.map_err(|e| match e {
        DpError::BudgetExhausted { requested, .. } => LedgerError::Exhausted {
            tenant: tenant.to_string(),
            requested,
            remaining: budget.remaining(),
        },
        DpError::InvalidParameter(msg) => LedgerError::InvalidAmount(msg),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("privbayes-ledger-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn charge_and_check_share_the_boundary() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("acme", 1.0).unwrap();
        ledger.charge("acme", 0.4).unwrap();
        assert!(ledger.check("acme", 0.6).is_ok(), "exactly the remainder passes");
        assert!(matches!(ledger.check("acme", 0.7), Err(LedgerError::Exhausted { .. })));
        let before = ledger.budget("acme").unwrap();
        let err = ledger.charge("acme", 0.7).unwrap_err();
        assert!(matches!(err, LedgerError::Exhausted { ref tenant, .. } if tenant == "acme"));
        assert_eq!(ledger.budget("acme").unwrap(), before, "rejected charge must not mutate");
        // Spending exactly the remainder drains the budget.
        let remaining = ledger.charge("acme", 0.6).unwrap();
        assert!(remaining < 1e-9);
    }

    #[test]
    fn tenants_are_isolated() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("a", 1.0).unwrap();
        ledger.register("b", 2.0).unwrap();
        ledger.charge("a", 1.0).unwrap();
        assert!(matches!(ledger.charge("a", 0.1), Err(LedgerError::Exhausted { .. })));
        assert!(ledger.charge("b", 0.1).is_ok(), "tenant b is unaffected");
        assert!(matches!(ledger.charge("nobody", 0.1), Err(LedgerError::UnknownTenant(_))));
    }

    #[test]
    fn refund_compensates_failed_operations() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("t", 1.0).unwrap();
        ledger.charge("t", 0.8).unwrap();
        ledger.refund("t", 0.8);
        assert_eq!(ledger.budget("t").unwrap().spent, 0.0);
        ledger.refund("ghost", 1.0); // ignored, no panic
    }

    #[test]
    fn duplicate_registration_rejected() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("t", 1.0).unwrap();
        ledger.charge("t", 0.5).unwrap();
        assert!(ledger.register("t", 9.0).is_err(), "re-registering would reset spending");
        assert_eq!(ledger.budget("t").unwrap().total, 1.0);
        assert!(ledger.register("bad name", 1.0).is_err());
        assert!(ledger.register("x", 0.0).is_err());
    }

    #[test]
    fn persistence_round_trips_exactly() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = BudgetLedger::with_persistence(&path).unwrap();
            ledger.register("acme", 1.6).unwrap();
            ledger.register("globex", 0.5).unwrap();
            ledger.charge("acme", 0.48).unwrap();
        }
        let restored = BudgetLedger::with_persistence(&path).unwrap();
        let rows = restored.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tenant, "acme");
        assert_eq!(rows[0].total.to_bits(), 1.6f64.to_bits());
        assert_eq!(rows[0].spent.to_bits(), 0.48f64.to_bits());
        assert_eq!(rows[1].tenant, "globex");
        assert_eq!(rows[1].spent, 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_ledger_file_is_rejected() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{not json").unwrap();
        assert!(BudgetLedger::with_persistence(&path).is_err());
        std::fs::write(&path, r#"{"format": "other/9", "tenants": {}}"#).unwrap();
        assert!(BudgetLedger::with_persistence(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_reports_remaining() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("t", 2.0).unwrap();
        ledger.charge("t", 0.5).unwrap();
        let row = ledger.budget("t").unwrap();
        assert!((row.remaining() - 1.5).abs() < 1e-12);
    }
}
