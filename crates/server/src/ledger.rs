//! The per-tenant privacy-budget ledger.
//!
//! Every tenant owns one [`PrivacyBudget`]; endpoints that *fit* models
//! debit ε from it atomically (check + spend under one lock, so two racing
//! requests can never jointly overspend), while synthesis from an already
//! released model is post-processing and costs nothing. A rejected charge
//! leaves the ledger byte-for-byte unchanged — the structured
//! [`LedgerError::Exhausted`] carries the requested and remaining amounts so
//! the serving layer can surface them to the caller.
//!
//! With a persistence path configured, every mutation rewrites the ledger
//! file (CRC-tagged `privbayes-ledger/2` JSON via `privbayes-model`'s
//! budget IO; `privbayes-ledger/1` files are still read), and construction
//! restores it, so accounting survives restarts exactly: budgets round-trip
//! bit-for-bit.
//!
//! Persistence is crash-durable, not just atomic: the sibling temp file is
//! `fsync`ed before the rename, and the parent directory is `fsync`ed
//! after it, so a power loss at *any* instant leaves the file as either
//! the complete old state or the complete new one. A charge is only
//! reported as spent once the rename has landed — a ledger that forgets a
//! debit would let a tenant re-spend ε and silently void the DP
//! guarantee. The fault-injection tests kill the persist sequence at every
//! step and prove the reloaded ledger is always pre- or post-mutation.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, TryLockError};

use privbayes_dp::{DpError, PrivacyBudget};
use privbayes_model::{budget_from_json, budget_to_json, Json};
use privbayes_obs::{Counter, Histogram};

use crate::error::ServerError;
#[cfg(any(test, feature = "fault-injection"))]
use crate::fault::{Fault, FaultPlan, FaultSite, LedgerStep};
use crate::registry::validate_id;
use std::sync::Arc;

/// The original (v1) ledger file format identifier, still accepted on load.
pub const LEDGER_FORMAT: &str = "privbayes-ledger/1";

/// The current ledger file format: v1 plus a CRC32 over the canonical
/// compact rendering of the `tenants` object, so bit rot (or a torn write
/// that still parses as JSON) is detected at startup instead of silently
/// mis-accounting ε. All writes use v2.
pub const LEDGER_FORMAT_V2: &str = "privbayes-ledger/2";

/// Default number of lock stripes the tenant map is sharded into. Tenants
/// hash to stripes, so operations on distinct tenants contend only when
/// they collide — the check+spend hot path no longer serialises the whole
/// ledger behind one mutex.
pub const DEFAULT_LEDGER_STRIPES: usize = 8;

/// Structured failures from ledger operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The tenant has never been registered.
    UnknownTenant(String),
    /// The charge would exceed the tenant's remaining budget. State is
    /// unchanged.
    Exhausted {
        /// The tenant involved.
        tenant: String,
        /// ε requested by the rejected operation.
        requested: f64,
        /// ε still available to the tenant.
        remaining: f64,
    },
    /// The amount itself was invalid (non-positive or non-finite).
    InvalidAmount(String),
    /// The ledger file could not be written; the in-memory state was rolled
    /// back, so nothing was spent.
    Persistence(String),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::UnknownTenant(t) => write!(f, "unknown tenant `{t}`"),
            LedgerError::Exhausted { tenant, requested, remaining } => write!(
                f,
                "tenant `{tenant}` budget exhausted: requested {requested}, remaining {remaining}"
            ),
            LedgerError::InvalidAmount(msg) => write!(f, "invalid amount: {msg}"),
            LedgerError::Persistence(msg) => write!(f, "ledger persistence failed: {msg}"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// One row of a ledger snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantBudget {
    /// Tenant name.
    pub tenant: String,
    /// Total ε granted.
    pub total: f64,
    /// ε spent so far.
    pub spent: f64,
}

impl TenantBudget {
    /// ε still available.
    #[must_use]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }
}

/// Observability handles consulted on every persist attempt (see
/// [`BudgetLedger::set_observer`]). The handles are shared `Arc`s into a
/// metric registry, so recording is one relaxed atomic add each — nothing
/// here can fail or slow the durability path.
#[derive(Debug, Clone)]
pub struct LedgerObserver {
    /// Persist wall time (write temp, fsync, rename, directory sync).
    pub persist_seconds: Arc<Histogram>,
    /// Persists that completed cleanly.
    pub ok: Arc<Counter>,
    /// Persists that failed before the rename (mutation rolled back).
    pub rolled_back: Arc<Counter>,
    /// Persists where the rename landed but the directory sync failed
    /// (mutation kept — the file already holds the new state).
    pub durable_failure: Arc<Counter>,
    /// One counter per lock stripe, bumped when an acquisition found its
    /// stripe already held. Empty (or shorter than the stripe count) simply
    /// disables recording for the uncovered stripes.
    pub stripe_contention: Vec<Arc<Counter>>,
}

/// A thread-safe map from tenant name to privacy budget, optionally backed
/// by a JSON file.
///
/// The map is sharded into lock stripes keyed by tenant hash: check/charge
/// on distinct tenants run in parallel, while check+spend on one tenant
/// stays atomic inside its stripe. Persisted ledgers additionally serialise
/// *mutations* behind a single `persist_lock` (taken before any stripe
/// lock), so the file always renders from a consistent whole-ledger state —
/// read-only operations never touch it.
#[derive(Debug)]
pub struct BudgetLedger {
    stripes: Vec<Mutex<BTreeMap<String, PrivacyBudget>>>,
    /// Held (before any stripe lock) for the whole mutate+persist sequence
    /// of file-backed ledgers. Lock order `persist_lock → stripes` is
    /// global, and pure readers take a single stripe only, so no cycle
    /// exists.
    persist_lock: Mutex<()>,
    path: Option<PathBuf>,
    observer: Mutex<Option<LedgerObserver>>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Mutex<Option<Arc<FaultPlan>>>,
}

/// Why a persist attempt did not complete cleanly, and whether the data
/// nevertheless made it: once the rename has landed the new state *is* the
/// file (a later directory-sync failure only delays durability of the
/// directory entry), so callers keep the mutation. Before the rename,
/// nothing reached the target and callers must roll back.
struct PersistFailure {
    durable: bool,
    error: ServerError,
}

impl BudgetLedger {
    /// An empty, purely in-memory ledger with the default stripe count.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::in_memory_striped(DEFAULT_LEDGER_STRIPES)
    }

    /// An empty, purely in-memory ledger sharded into `stripes` locks.
    #[must_use]
    pub fn in_memory_striped(stripes: usize) -> Self {
        Self::build(BTreeMap::new(), None, stripes)
    }

    fn build(
        tenants: BTreeMap<String, PrivacyBudget>,
        path: Option<PathBuf>,
        stripes: usize,
    ) -> Self {
        let stripes = stripes.max(1);
        let ledger = Self {
            stripes: (0..stripes).map(|_| Mutex::new(BTreeMap::new())).collect(),
            persist_lock: Mutex::new(()),
            path,
            observer: Mutex::new(None),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: Mutex::new(None),
        };
        for (name, budget) in tenants {
            let index = ledger.stripe_of(&name);
            ledger.stripes[index].lock().expect("fresh stripe lock").insert(name, budget);
        }
        ledger
    }

    /// The number of lock stripes (fixed at construction).
    #[must_use]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe a tenant hashes to (FNV-1a over the name).
    fn stripe_of(&self, tenant: &str) -> usize {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in tenant.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (hash % self.stripes.len() as u64) as usize
    }

    /// Locks one stripe, recording contention when the lock was already
    /// held (the counter lookup runs only on the contended path, so the
    /// fast path stays one uncontended `try_lock`).
    fn lock_stripe(&self, index: usize) -> MutexGuard<'_, BTreeMap<String, PrivacyBudget>> {
        match self.stripes[index].try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                if let Some(obs) = self.observer.lock().expect("observer lock poisoned").as_ref() {
                    if let Some(counter) = obs.stripe_contention.get(index) {
                        counter.inc();
                    }
                }
                self.stripes[index].lock().expect("ledger stripe lock poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("ledger stripe lock poisoned"),
        }
    }

    /// The persist guard for mutators: file-backed ledgers serialise all
    /// mutations so the rendered file is always a consistent merge;
    /// in-memory ledgers skip it and mutate fully striped.
    fn mutation_guard(&self) -> Option<MutexGuard<'_, ()>> {
        self.path.as_ref().map(|_| self.persist_lock.lock().expect("persist lock poisoned"))
    }

    /// A consistent clone of the whole ledger, with `held` standing in for
    /// stripe `held_index` (already locked by the caller). Only called with
    /// the persist lock held, so no other mutation can interleave between
    /// the per-stripe reads.
    fn merged_with(
        &self,
        held_index: usize,
        held: &BTreeMap<String, PrivacyBudget>,
    ) -> BTreeMap<String, PrivacyBudget> {
        let mut all = BTreeMap::new();
        for (j, stripe) in self.stripes.iter().enumerate() {
            if j == held_index {
                all.extend(held.iter().map(|(k, v)| (k.clone(), v.clone())));
            } else {
                let guard = stripe.lock().expect("ledger stripe lock poisoned");
                all.extend(guard.iter().map(|(k, v)| (k.clone(), v.clone())));
            }
        }
        all
    }

    /// Installs (or clears) the persist-observability handles. The server
    /// wires these to its metric registry at bind time; a ledger used
    /// standalone records nothing.
    pub fn set_observer(&self, observer: Option<LedgerObserver>) {
        *self.observer.lock().expect("observer lock poisoned") = observer;
    }

    /// Installs (or clears) a fault plan consulted on every persist
    /// attempt. Test-only: absent from release builds.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault.lock().expect("fault lock poisoned") = plan;
    }

    /// A ledger persisted at `path`. If the file exists it is restored;
    /// otherwise the ledger starts empty and the file is created on the
    /// first mutation.
    ///
    /// # Errors
    /// Returns [`ServerError::Ledger`] if an existing file cannot be read or
    /// parsed (a corrupt ledger must never be silently reset — that would
    /// forget spending).
    pub fn with_persistence(path: impl Into<PathBuf>) -> Result<Self, ServerError> {
        Self::with_persistence_striped(path, DEFAULT_LEDGER_STRIPES)
    }

    /// Like [`BudgetLedger::with_persistence`], with an explicit stripe
    /// count.
    ///
    /// # Errors
    /// As [`BudgetLedger::with_persistence`].
    pub fn with_persistence_striped(
        path: impl Into<PathBuf>,
        stripes: usize,
    ) -> Result<Self, ServerError> {
        let path = path.into();
        let tenants = if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| ServerError::Ledger(format!("{}: {e}", path.display())))?;
            Self::parse(&text)
                .map_err(|e| ServerError::Ledger(format!("{}: {e}", path.display())))?
        } else {
            BTreeMap::new()
        };
        Ok(Self::build(tenants, Some(path), stripes))
    }

    fn parse(text: &str) -> Result<BTreeMap<String, PrivacyBudget>, ServerError> {
        let json = Json::parse(text).map_err(|e| ServerError::Ledger(e.to_string()))?;
        let format = json.get("format").and_then(Json::as_str);
        let is_v2 = match format {
            Some(LEDGER_FORMAT) => false,
            Some(LEDGER_FORMAT_V2) => true,
            other => {
                return Err(ServerError::Ledger(format!(
                    "unsupported ledger format {other:?}, expected `{LEDGER_FORMAT_V2}`"
                )))
            }
        };
        let fields = json
            .get("tenants")
            .and_then(Json::as_object)
            .ok_or_else(|| ServerError::Ledger("missing `tenants` object".into()))?;
        let mut tenants = BTreeMap::new();
        for (name, value) in fields {
            let budget = budget_from_json(value)
                .map_err(|e| ServerError::Ledger(format!("tenant `{name}`: {e}")))?;
            tenants.insert(name.clone(), budget);
        }
        if is_v2 {
            // The checksum is over the *canonical* compact rendering, which
            // re-rendering the parsed budgets reproduces exactly (f64s print
            // their shortest round-trip form), so whitespace in the file is
            // irrelevant but any value corruption is caught.
            let stored = json
                .get("crc")
                .and_then(Json::as_str)
                .ok_or_else(|| ServerError::Ledger("v2 ledger is missing `crc`".into()))?;
            let expected = format!("{:08x}", crc32(Self::tenants_canonical(&tenants).as_bytes()));
            if stored != expected {
                return Err(ServerError::Ledger(format!(
                    "crc mismatch: file says {stored}, tenants hash to {expected} \
                     (corrupt ledger; refusing to guess at spent budgets)"
                )));
            }
        }
        Ok(tenants)
    }

    fn tenants_json(tenants: &BTreeMap<String, PrivacyBudget>) -> Json {
        let fields: Vec<(String, Json)> =
            tenants.iter().map(|(name, b)| (name.clone(), budget_to_json(b))).collect();
        Json::Object(fields)
    }

    /// The canonical byte string the v2 CRC is computed over.
    fn tenants_canonical(tenants: &BTreeMap<String, PrivacyBudget>) -> String {
        Self::tenants_json(tenants).to_string_compact().expect("budgets are finite")
    }

    fn render(tenants: &BTreeMap<String, PrivacyBudget>) -> String {
        let crc = crc32(Self::tenants_canonical(tenants).as_bytes());
        Json::object(vec![
            ("format", Json::String(LEDGER_FORMAT_V2.to_string())),
            ("crc", Json::String(format!("{crc:08x}"))),
            ("tenants", Self::tenants_json(tenants)),
        ])
        .to_string_pretty()
        .expect("budgets are finite")
    }

    /// Persists under the lock so file contents always match a consistent
    /// in-memory state. The sequence — write sibling temp file, `fsync` it,
    /// rename over the target, `fsync` the parent directory — guarantees a
    /// crash at any instant leaves either the old complete ledger or the
    /// new one, *durably*: without the temp-file sync the rename can land
    /// before the data blocks do, and without the directory sync the rename
    /// itself can evaporate on power loss.
    ///
    /// Under fault injection, one [`FaultSite::LedgerPersist`] step is
    /// consumed per call; a `CrashAt(step)` fault aborts immediately before
    /// the named step, exactly as `kill -9` at that instant would.
    fn persist(
        &self,
        tenants: &BTreeMap<String, PrivacyBudget>,
        path: &Path,
    ) -> Result<(), PersistFailure> {
        let started = std::time::Instant::now();
        let result = self.persist_inner(tenants, path);
        if let Some(obs) = self.observer.lock().expect("observer lock poisoned").as_ref() {
            obs.persist_seconds.observe(started.elapsed());
            match &result {
                Ok(()) => obs.ok.inc(),
                Err(f) if f.durable => obs.durable_failure.inc(),
                Err(_) => obs.rolled_back.inc(),
            }
        }
        result
    }

    fn persist_inner(
        &self,
        tenants: &BTreeMap<String, PrivacyBudget>,
        path: &Path,
    ) -> Result<(), PersistFailure> {
        let io_err = |e: std::io::Error| ServerError::Ledger(format!("{}: {e}", path.display()));
        let fail = |durable: bool, error: ServerError| -> PersistFailure {
            PersistFailure { durable, error }
        };
        let body = Self::render(tenants);
        let tmp = path.with_extension("tmp");

        #[cfg(any(test, feature = "fault-injection"))]
        let injected: Option<Fault> = self
            .fault
            .lock()
            .expect("fault lock poisoned")
            .as_ref()
            .map(Arc::clone)
            .and_then(|p| p.take(FaultSite::LedgerPersist));
        #[cfg(any(test, feature = "fault-injection"))]
        let crashed = |step: LedgerStep| -> Option<PersistFailure> {
            match injected {
                Some(Fault::CrashAt(s)) if s == step => Some(PersistFailure {
                    durable: step == LedgerStep::SyncDir,
                    error: ServerError::Ledger(format!("injected crash before {step:?}")),
                }),
                _ => None,
            }
        };

        #[cfg(any(test, feature = "fault-injection"))]
        {
            if let Some(f) = crashed(LedgerStep::WriteTmp) {
                return Err(f);
            }
            match injected {
                Some(Fault::Fail) => {
                    return Err(fail(
                        false,
                        ServerError::Ledger("injected persist failure".to_string()),
                    ))
                }
                Some(Fault::ShortWrite) => {
                    // Die halfway through writing the temp file: the target
                    // is untouched, the temp file is torn garbage.
                    let _ = std::fs::write(&tmp, &body.as_bytes()[..body.len() / 2]);
                    return Err(fail(
                        false,
                        ServerError::Ledger("injected crash mid temp-file write".to_string()),
                    ));
                }
                _ => {}
            }
        }

        let mut file = File::create(&tmp).map_err(|e| fail(false, io_err(e)))?;
        file.write_all(body.as_bytes()).map_err(|e| fail(false, io_err(e)))?;

        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(f) = crashed(LedgerStep::SyncTmp) {
            return Err(f);
        }

        file.sync_all().map_err(|e| fail(false, io_err(e)))?;
        drop(file);

        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(f) = crashed(LedgerStep::Rename) {
            return Err(f);
        }

        std::fs::rename(&tmp, path).map_err(|e| fail(false, io_err(e)))?;

        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(f) = crashed(LedgerStep::SyncDir) {
            return Err(f);
        }

        // Make the rename itself durable. A failure here is reported but
        // flagged durable: the file already holds the new state, so callers
        // must keep the mutation (dropping it would un-spend recorded ε).
        #[cfg(unix)]
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = File::open(parent).and_then(|dir| dir.sync_all()) {
                return Err(fail(true, io_err(e)));
            }
        }
        Ok(())
    }

    /// Registers `tenant` with a total budget of `total` ε. Re-registering
    /// an existing tenant is rejected — it would reset spending.
    ///
    /// # Errors
    /// Returns [`ServerError::Protocol`] for an invalid name or amount,
    /// [`ServerError::Conflict`] if the tenant already exists, and
    /// [`ServerError::Ledger`] if persistence fails (the in-memory insert is
    /// rolled back, so memory and file stay in sync).
    pub fn register(&self, tenant: &str, total: f64) -> Result<(), ServerError> {
        validate_id(tenant)?;
        let budget = PrivacyBudget::new(total).map_err(|e| ServerError::Protocol(e.to_string()))?;
        let _mutation = self.mutation_guard();
        let index = self.stripe_of(tenant);
        let mut stripe = self.lock_stripe(index);
        if stripe.contains_key(tenant) {
            return Err(ServerError::Conflict(format!("tenant `{tenant}` is already registered")));
        }
        stripe.insert(tenant.to_string(), budget);
        if let Some(path) = &self.path {
            let merged = self.merged_with(index, &stripe);
            if let Err(f) = self.persist(&merged, path) {
                if !f.durable {
                    stripe.remove(tenant);
                    return Err(f.error);
                }
            }
        }
        Ok(())
    }

    /// Non-consuming probe: would a charge of `epsilon` against `tenant`
    /// succeed right now?
    ///
    /// # Errors
    /// The same [`LedgerError`]s as [`BudgetLedger::charge`], without any
    /// state change either way.
    pub fn check(&self, tenant: &str, epsilon: f64) -> Result<(), LedgerError> {
        let stripe = self.lock_stripe(self.stripe_of(tenant));
        let budget =
            stripe.get(tenant).ok_or_else(|| LedgerError::UnknownTenant(tenant.to_string()))?;
        map_dp_error(budget.check(epsilon), tenant, budget)
    }

    /// Atomically debits `epsilon` from `tenant`, returning the remaining
    /// budget. On any error the ledger (and its file) is unchanged: a
    /// persistence failure rolls the in-memory debit back and is reported as
    /// [`LedgerError::Persistence`], so memory and file never disagree and a
    /// charge is only considered spent once it is durably recorded.
    ///
    /// # Errors
    /// [`LedgerError::UnknownTenant`] for an unregistered tenant,
    /// [`LedgerError::Exhausted`] if the charge exceeds the remainder,
    /// [`LedgerError::InvalidAmount`] for non-positive ε, and
    /// [`LedgerError::Persistence`] if the ledger file cannot be written.
    pub fn charge(&self, tenant: &str, epsilon: f64) -> Result<f64, LedgerError> {
        let _mutation = self.mutation_guard();
        let index = self.stripe_of(tenant);
        let mut stripe = self.lock_stripe(index);
        let budget =
            stripe.get_mut(tenant).ok_or_else(|| LedgerError::UnknownTenant(tenant.to_string()))?;
        map_dp_error(budget.consume(epsilon), tenant, budget)?;
        let remaining = budget.remaining();
        if let Some(path) = &self.path {
            let merged = self.merged_with(index, &stripe);
            if let Err(f) = self.persist(&merged, path) {
                if !f.durable {
                    // Never hand out budget that is not durably recorded.
                    stripe.get_mut(tenant).expect("present above").refund(epsilon);
                    return Err(LedgerError::Persistence(f.error.to_string()));
                }
                // Rename landed: the debit is on disk, keep it.
            }
        }
        Ok(remaining)
    }

    /// Returns `epsilon` to `tenant` — compensation when an operation was
    /// charged but failed before touching sensitive data. Unknown tenants
    /// are ignored, and a persistence failure undoes the in-memory refund
    /// (the tenant keeps the spend — the conservative direction for a
    /// privacy ledger): the refund path runs on error paths and must not
    /// introduce new failures, only stay consistent.
    pub fn refund(&self, tenant: &str, epsilon: f64) {
        let _mutation = self.mutation_guard();
        let index = self.stripe_of(tenant);
        let mut stripe = self.lock_stripe(index);
        if let Some(budget) = stripe.get_mut(tenant) {
            budget.refund(epsilon);
            if let Some(path) = &self.path {
                let merged = self.merged_with(index, &stripe);
                if let Err(f) = self.persist(&merged, path) {
                    if !f.durable {
                        let _ = stripe.get_mut(tenant).expect("present above").consume(epsilon);
                    }
                }
            }
        }
    }

    /// The tenant's current budget, if registered.
    #[must_use]
    pub fn budget(&self, tenant: &str) -> Option<TenantBudget> {
        let stripe = self.lock_stripe(self.stripe_of(tenant));
        stripe.get(tenant).map(|b| TenantBudget {
            tenant: tenant.to_string(),
            total: b.total(),
            spent: b.spent(),
        })
    }

    /// All tenants, sorted by name. Stripes are visited one at a time, so
    /// a snapshot racing a mutation sees that tenant either before or
    /// after — per-tenant rows are always internally consistent.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TenantBudget> {
        let mut rows: Vec<TenantBudget> = Vec::new();
        for stripe in &self.stripes {
            let guard = stripe.lock().expect("ledger stripe lock poisoned");
            rows.extend(guard.iter().map(|(name, b)| TenantBudget {
                tenant: name.clone(),
                total: b.total(),
                spent: b.spent(),
            }));
        }
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), bitwise — the ledger is tiny
/// and rewritten rarely, so a lookup table would be wasted space.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Translates a [`DpError`] into the tenant-scoped ledger error.
fn map_dp_error(
    result: Result<(), DpError>,
    tenant: &str,
    budget: &PrivacyBudget,
) -> Result<(), LedgerError> {
    result.map_err(|e| match e {
        DpError::BudgetExhausted { requested, .. } => LedgerError::Exhausted {
            tenant: tenant.to_string(),
            requested,
            remaining: budget.remaining(),
        },
        DpError::InvalidParameter(msg) => LedgerError::InvalidAmount(msg),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("privbayes-ledger-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn charge_and_check_share_the_boundary() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("acme", 1.0).unwrap();
        ledger.charge("acme", 0.4).unwrap();
        assert!(ledger.check("acme", 0.6).is_ok(), "exactly the remainder passes");
        assert!(matches!(ledger.check("acme", 0.7), Err(LedgerError::Exhausted { .. })));
        let before = ledger.budget("acme").unwrap();
        let err = ledger.charge("acme", 0.7).unwrap_err();
        assert!(matches!(err, LedgerError::Exhausted { ref tenant, .. } if tenant == "acme"));
        assert_eq!(ledger.budget("acme").unwrap(), before, "rejected charge must not mutate");
        // Spending exactly the remainder drains the budget.
        let remaining = ledger.charge("acme", 0.6).unwrap();
        assert!(remaining < 1e-9);
    }

    #[test]
    fn tenants_are_isolated() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("a", 1.0).unwrap();
        ledger.register("b", 2.0).unwrap();
        ledger.charge("a", 1.0).unwrap();
        assert!(matches!(ledger.charge("a", 0.1), Err(LedgerError::Exhausted { .. })));
        assert!(ledger.charge("b", 0.1).is_ok(), "tenant b is unaffected");
        assert!(matches!(ledger.charge("nobody", 0.1), Err(LedgerError::UnknownTenant(_))));
    }

    #[test]
    fn refund_compensates_failed_operations() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("t", 1.0).unwrap();
        ledger.charge("t", 0.8).unwrap();
        ledger.refund("t", 0.8);
        assert_eq!(ledger.budget("t").unwrap().spent, 0.0);
        ledger.refund("ghost", 1.0); // ignored, no panic
    }

    #[test]
    fn duplicate_registration_rejected() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("t", 1.0).unwrap();
        ledger.charge("t", 0.5).unwrap();
        assert!(ledger.register("t", 9.0).is_err(), "re-registering would reset spending");
        assert_eq!(ledger.budget("t").unwrap().total, 1.0);
        assert!(ledger.register("bad name", 1.0).is_err());
        assert!(ledger.register("x", 0.0).is_err());
    }

    #[test]
    fn persistence_round_trips_exactly() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = BudgetLedger::with_persistence(&path).unwrap();
            ledger.register("acme", 1.6).unwrap();
            ledger.register("globex", 0.5).unwrap();
            ledger.charge("acme", 0.48).unwrap();
        }
        let restored = BudgetLedger::with_persistence(&path).unwrap();
        let rows = restored.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tenant, "acme");
        assert_eq!(rows[0].total.to_bits(), 1.6f64.to_bits());
        assert_eq!(rows[0].spent.to_bits(), 0.48f64.to_bits());
        assert_eq!(rows[1].tenant, "globex");
        assert_eq!(rows[1].spent, 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_ledger_file_is_rejected() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{not json").unwrap();
        assert!(BudgetLedger::with_persistence(&path).is_err());
        std::fs::write(&path, r#"{"format": "other/9", "tenants": {}}"#).unwrap();
        assert!(BudgetLedger::with_persistence(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writes_are_v2_with_crc() {
        let path = temp_path("v2");
        let _ = std::fs::remove_file(&path);
        let ledger = BudgetLedger::with_persistence(&path).unwrap();
        ledger.register("acme", 1.0).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(LEDGER_FORMAT_V2), "writes use the v2 format");
        assert!(text.contains("\"crc\""), "v2 records carry a checksum");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_files_still_load_and_upgrade_on_mutation() {
        let path = temp_path("v1-compat");
        // Hand-build a v1 file exactly as the previous release wrote them.
        let mut budget = PrivacyBudget::new(1.6).unwrap();
        budget.consume(0.48).unwrap();
        let v1 = Json::object(vec![
            ("format", Json::String(LEDGER_FORMAT.to_string())),
            ("tenants", Json::Object(vec![("acme".to_string(), budget_to_json(&budget))])),
        ])
        .to_string_pretty()
        .unwrap();
        std::fs::write(&path, v1).unwrap();

        let ledger = BudgetLedger::with_persistence(&path).unwrap();
        let row = ledger.budget("acme").unwrap();
        assert_eq!(row.total.to_bits(), 1.6f64.to_bits());
        assert_eq!(row.spent.to_bits(), 0.48f64.to_bits());

        // The first mutation rewrites the file in v2.
        ledger.charge("acme", 0.1).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(LEDGER_FORMAT_V2));
        assert!(BudgetLedger::with_persistence(&path).is_ok(), "upgraded file round-trips");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc_mismatch_is_rejected() {
        let path = temp_path("crc-tamper");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = BudgetLedger::with_persistence(&path).unwrap();
            ledger.register("acme", 2.0).unwrap();
            ledger.charge("acme", 0.5).unwrap();
        }
        // Flip the spent amount without updating the checksum — the kind of
        // corruption plain JSON parsing would happily accept.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("0.5", "0.25");
        assert_ne!(text, tampered, "tamper target must exist");
        std::fs::write(&path, tampered).unwrap();
        let err = BudgetLedger::with_persistence(&path).unwrap_err();
        assert!(err.to_string().contains("crc mismatch"), "got: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_at_every_persist_step_recovers_pre_or_post_state() {
        use crate::fault::{Fault, FaultPlan, FaultSite, LedgerStep};

        // (fault, does the mutation survive the crash?)
        let cases: &[(Fault, bool)] = &[
            (Fault::CrashAt(LedgerStep::WriteTmp), false),
            (Fault::ShortWrite, false),
            (Fault::CrashAt(LedgerStep::SyncTmp), false),
            (Fault::CrashAt(LedgerStep::Rename), false),
            (Fault::CrashAt(LedgerStep::SyncDir), true),
            (Fault::Fail, false),
        ];
        for (i, &(fault, survives)) in cases.iter().enumerate() {
            let path = temp_path(&format!("kill-{i}"));
            let _ = std::fs::remove_file(&path);
            let tmp = path.with_extension("tmp");
            let _ = std::fs::remove_file(&tmp);

            // Pre-state on disk: acme has spent 0.25 of 2.0.
            let ledger = BudgetLedger::with_persistence(&path).unwrap();
            ledger.register("acme", 2.0).unwrap();
            ledger.charge("acme", 0.25).unwrap();

            // The process "dies" at the injected step of the next persist.
            let plan = Arc::new(FaultPlan::new().inject(FaultSite::LedgerPersist, 0, fault));
            ledger.set_fault_plan(Some(plan));
            let charge = ledger.charge("acme", 0.25);
            drop(ledger);

            // Restart: the reloaded ledger must parse cleanly (never torn)
            // and hold exactly the pre- or post-mutation balance.
            let restored = BudgetLedger::with_persistence(&path)
                .unwrap_or_else(|e| panic!("case {i} ({fault:?}): torn ledger: {e}"));
            let spent = restored.budget("acme").unwrap().spent;
            let expected: f64 = if survives { 0.5 } else { 0.25 };
            assert_eq!(
                spent.to_bits(),
                expected.to_bits(),
                "case {i} ({fault:?}): expected spent {expected}, found {spent}"
            );
            // The in-memory result must agree with the disk outcome: a debit
            // is reported spent iff it is durably recorded.
            assert_eq!(
                charge.is_ok(),
                survives,
                "case {i} ({fault:?}): charge result disagrees with disk"
            );
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&tmp);
        }
    }

    #[test]
    fn torn_tmp_file_never_bricks_startup() {
        use crate::fault::{Fault, FaultPlan, FaultSite};

        let path = temp_path("torn-tmp");
        let _ = std::fs::remove_file(&path);
        let ledger = BudgetLedger::with_persistence(&path).unwrap();
        ledger.register("acme", 1.0).unwrap();
        ledger.set_fault_plan(Some(Arc::new(FaultPlan::new().inject(
            FaultSite::LedgerPersist,
            0,
            Fault::ShortWrite,
        ))));
        assert!(matches!(ledger.charge("acme", 0.5), Err(LedgerError::Persistence(_))));
        drop(ledger);

        let tmp = path.with_extension("tmp");
        assert!(tmp.exists(), "the torn temp file is left behind, as after a real crash");
        // Restart ignores the garbage temp file and the next mutation
        // overwrites it.
        let restored = BudgetLedger::with_persistence(&path).unwrap();
        assert_eq!(restored.budget("acme").unwrap().spent, 0.0);
        restored.charge("acme", 0.5).unwrap();
        assert!(BudgetLedger::with_persistence(&path).is_ok());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&tmp);
    }

    #[test]
    fn striped_concurrent_charges_account_exactly() {
        // Hammer every stripe count from degenerate to oversized: N threads
        // × K charges per tenant must land on exactly K·ε spent each —
        // striping must never lose or double-apply a debit.
        for stripes in [1usize, 2, 8, 64] {
            let ledger = Arc::new(BudgetLedger::in_memory_striped(stripes));
            let tenants: Vec<String> = (0..6).map(|i| format!("tenant-{i}")).collect();
            for t in &tenants {
                ledger.register(t, 10.0).unwrap();
            }
            std::thread::scope(|scope| {
                for t in &tenants {
                    let ledger = Arc::clone(&ledger);
                    scope.spawn(move || {
                        for _ in 0..50 {
                            ledger.charge(t, 0.125).unwrap();
                        }
                    });
                }
            });
            for t in &tenants {
                let spent = ledger.budget(t).unwrap().spent;
                assert_eq!(
                    spent.to_bits(),
                    6.25f64.to_bits(),
                    "stripes={stripes} tenant={t}: expected 6.25 spent, got {spent}"
                );
            }
            assert_eq!(ledger.snapshot().len(), tenants.len());
        }
    }

    #[test]
    fn striped_persistence_round_trips_every_tenant() {
        // Tenants scattered over stripes must all land in one consistent
        // file, and reload back into the right stripes.
        let path = temp_path("striped");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = BudgetLedger::with_persistence_striped(&path, 4).unwrap();
            for i in 0..10 {
                ledger.register(&format!("t{i}"), 1.0 + f64::from(i)).unwrap();
            }
            ledger.charge("t3", 0.5).unwrap();
            ledger.charge("t7", 0.25).unwrap();
        }
        // Reload under a *different* stripe count: the file format is
        // stripe-agnostic.
        let restored = BudgetLedger::with_persistence_striped(&path, 16).unwrap();
        assert_eq!(restored.snapshot().len(), 10);
        assert_eq!(restored.budget("t3").unwrap().spent.to_bits(), 0.5f64.to_bits());
        assert_eq!(restored.budget("t7").unwrap().spent.to_bits(), 0.25f64.to_bits());
        assert_eq!(restored.budget("t0").unwrap().spent, 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_reports_remaining() {
        let ledger = BudgetLedger::in_memory();
        ledger.register("t", 2.0).unwrap();
        ledger.charge("t", 0.5).unwrap();
        let row = ledger.budget("t").unwrap();
        assert!((row.remaining() - 1.5).abs() < 1e-12);
    }
}
