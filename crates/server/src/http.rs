//! The HTTP/1.1 subset shared by the server and the bundled client.
//!
//! The build environment is offline and std-only, so this is a hand-rolled
//! implementation covering exactly what the service needs: request lines
//! with query strings, `Content-Length` bodies, fixed responses, and
//! `Transfer-Encoding: chunked` responses for row streaming. Connections
//! are persistent by default (HTTP/1.1 keep-alive): every response is
//! explicitly framed (`Content-Length` or chunked) and carries an explicit
//! `Connection:` header, so the peer always knows whether another request
//! may follow on the same socket.

use std::io::{BufRead, Read, Write};

use crate::error::ServerError;

/// Maximum accepted size of a request/response head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Maximum accepted request body (fit payloads: schema + CSV text).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed request: method, decoded path, query pairs, headers, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// The percent-decoded path, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// `true` for `HTTP/1.1` requests (persistent by default), `false` for
    /// `HTTP/1.0` (close by default).
    pub http11: bool,
}

impl Request {
    /// Reads one request from `reader`.
    ///
    /// # Errors
    /// Returns [`ServerError::Protocol`] on malformed or oversized input and
    /// [`ServerError::Io`] on socket failure.
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Self, ServerError> {
        let line = read_crlf_line(reader)?;
        let mut parts = line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| ServerError::Protocol("empty request line".into()))?
            .to_string();
        let target = parts
            .next()
            .ok_or_else(|| ServerError::Protocol("request line lacks a target".into()))?;
        let http11 = match parts.next() {
            Some("HTTP/1.1") => true,
            Some("HTTP/1.0") => false,
            _ => return Err(ServerError::Protocol("unsupported HTTP version".into())),
        };
        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (target, None),
        };
        let path = percent_decode(raw_path)?;
        let query = match raw_query {
            Some(q) => parse_query(q)?,
            None => Vec::new(),
        };
        let headers = read_headers(reader)?;
        let body = match header_value(&headers, "content-length") {
            Some(raw) => {
                let len: usize = raw
                    .trim()
                    .parse()
                    .map_err(|_| ServerError::Protocol(format!("bad Content-Length `{raw}`")))?;
                if len > MAX_BODY_BYTES {
                    return Err(ServerError::Protocol(format!(
                        "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                    )));
                }
                let mut body = Vec::new();
                read_exact_into(reader, &mut body, len)?;
                body
            }
            None => Vec::new(),
        };
        Ok(Self { method, path, query, headers, body, http11 })
    }

    /// Whether the peer wants the connection kept open after this request:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with an explicit
    /// `Connection: keep-alive`.
    #[must_use]
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// The first query value for `key`, if present.
    #[must_use]
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The first header value for lower-case `name`, if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        header_value(&self.headers, name)
    }

    /// The path split on `/`, without empty leading/trailing segments.
    #[must_use]
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// A parsed response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// The HTTP status code.
    pub code: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The reassembled body (chunked transfers are already decoded).
    pub body: Vec<u8>,
}

impl Response {
    /// Reads one response from `reader`, decoding chunked transfer encoding
    /// and `Content-Length` bodies (anything else reads to end-of-stream,
    /// valid here because the server always closes the connection).
    ///
    /// # Errors
    /// Returns [`ServerError::Protocol`] on malformed framing and
    /// [`ServerError::Io`] on socket failure.
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Self, ServerError> {
        let (resp, truncated) = Self::read_partial(reader)?;
        match truncated {
            None => Ok(resp),
            Some(e) => Err(e),
        }
    }

    /// Like [`Response::read_from`], but a body truncated mid-transfer (the
    /// connection died, a chunk was cut short) is *not* a hard failure: the
    /// head must parse, and the return value is the response with every
    /// body byte that did arrive, plus the error that ended the transfer if
    /// there was one. This is what lets the retrying client keep the prefix
    /// of an interrupted row stream and resume from the cursor instead of
    /// re-downloading from row zero.
    ///
    /// # Errors
    /// Returns [`ServerError::Protocol`]/[`ServerError::Io`] only when the
    /// status line or headers are unreadable — before any body exists.
    pub fn read_partial<R: BufRead>(
        reader: &mut R,
    ) -> Result<(Self, Option<ServerError>), ServerError> {
        let line = read_crlf_line(reader)?;
        let mut parts = line.split(' ');
        match parts.next() {
            Some("HTTP/1.1" | "HTTP/1.0") => {}
            _ => return Err(ServerError::Protocol("bad status line".into())),
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| ServerError::Protocol("bad status code".into()))?;
        let headers = read_headers(reader)?;
        let mut body = Vec::new();
        let outcome = if header_value(&headers, "transfer-encoding")
            .is_some_and(|v| v.trim().eq_ignore_ascii_case("chunked"))
        {
            read_chunked_into(reader, &mut body)
        } else if let Some(raw) = header_value(&headers, "content-length") {
            match raw.trim().parse::<usize>() {
                Ok(len) if len <= MAX_BODY_BYTES => read_exact_into(reader, &mut body, len),
                Ok(len) => Err(ServerError::Protocol(format!("body of {len} bytes is oversized"))),
                Err(_) => Err(ServerError::Protocol(format!("bad Content-Length `{raw}`"))),
            }
        } else {
            reader.read_to_end(&mut body).map(|_| ()).map_err(ServerError::from)
        };
        Ok((Self { code, headers, body }, outcome.err()))
    }

    /// The first header value for lower-case `name`, if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        header_value(&self.headers, name)
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// The canonical reason phrase for the status codes the service emits.
#[must_use]
pub fn reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        402 => "Payment Required",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete fixed-length response. `extra_headers` are emitted
/// after the standard ones (the server passes its `X-PrivBayes-Api` version
/// marker through here so **every** response — success or error — carries
/// it). `keep_alive` selects the `Connection:` disposition the head
/// advertises; it must match what the serving loop actually does next.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_response<W: Write>(
    out: &mut W,
    code: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(code),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(out, "{name}: {value}\r\n")?;
    }
    write_connection_header(out, keep_alive)?;
    out.write_all(body)?;
    out.flush()
}

fn write_connection_header<W: Write>(out: &mut W, keep_alive: bool) -> std::io::Result<()> {
    if keep_alive {
        out.write_all(b"Connection: keep-alive\r\n\r\n")
    } else {
        out.write_all(b"Connection: close\r\n\r\n")
    }
}

/// An in-progress `Transfer-Encoding: chunked` response. Each [`write`]
/// becomes one HTTP chunk on the wire, so the receiver can consume rows as
/// they are produced; [`finish`] emits the terminating zero-length chunk.
///
/// [`write`]: ChunkedResponse::write
/// [`finish`]: ChunkedResponse::finish
#[derive(Debug)]
pub struct ChunkedResponse<W: Write> {
    out: W,
}

impl<W: Write> ChunkedResponse<W> {
    /// Writes the response head and returns the chunk writer.
    /// `extra_headers` are emitted after the standard ones, so chunked
    /// streams carry the same `Content-Type`/`X-PrivBayes-Api` discipline
    /// as fixed responses.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn begin(
        mut out: W,
        code: u16,
        content_type: &str,
        extra_headers: &[(&str, &str)],
        keep_alive: bool,
    ) -> std::io::Result<Self> {
        write!(
            out,
            "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n",
            reason(code)
        )?;
        for (name, value) in extra_headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        write_connection_header(&mut out, keep_alive)?;
        Ok(Self { out })
    }

    /// Emits `data` as one chunk (empty input is skipped — a zero-length
    /// chunk would terminate the stream).
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.out, "{:X}\r\n", data.len())?;
        self.out.write_all(data)?;
        self.out.write_all(b"\r\n")
    }

    /// Terminates the stream and flushes.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.out.write_all(b"0\r\n\r\n")?;
        self.out.flush()
    }
}

/// Reads one CRLF-terminated line (the trailing `\r\n` is stripped; a bare
/// `\n` is tolerated), bounded by [`MAX_HEAD_BYTES`]. The cap is enforced
/// *while* reading (via [`Read::take`]), so a peer sending an endless
/// newline-free stream is cut off at the limit instead of buffered into
/// memory.
fn read_crlf_line<R: BufRead>(reader: &mut R) -> Result<String, ServerError> {
    let mut line = String::new();
    let mut limited = reader.by_ref().take(MAX_HEAD_BYTES as u64 + 1);
    let n = limited.read_line(&mut line)?;
    if n == 0 {
        // EOF where a line was expected: the peer vanished. Classified as
        // an I/O failure (not a protocol violation) so retrying clients
        // treat a connection torn mid-head like any other dead socket.
        return Err(ServerError::Io("unexpected end of stream".into()));
    }
    if line.len() > MAX_HEAD_BYTES {
        return Err(ServerError::Protocol("header line exceeds the size limit".into()));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Reads headers until the blank line, lower-casing names.
fn read_headers<R: BufRead>(reader: &mut R) -> Result<Vec<(String, String)>, ServerError> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_crlf_line(reader)?;
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEAD_BYTES {
            return Err(ServerError::Protocol("headers exceed the size limit".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServerError::Protocol(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

/// Reads exactly `len` bytes, appending incrementally so that on a
/// truncated transfer every byte that did arrive is already in `body`
/// (unlike `read_exact`, which leaves its buffer unspecified on failure).
fn read_exact_into<R: Read>(
    reader: &mut R,
    body: &mut Vec<u8>,
    len: usize,
) -> Result<(), ServerError> {
    let mut remaining = len;
    let mut buf = [0u8; 8192];
    while remaining > 0 {
        let want = remaining.min(buf.len());
        let n = reader.read(&mut buf[..want])?;
        if n == 0 {
            return Err(ServerError::Protocol(format!(
                "body truncated with {remaining} of {len} bytes outstanding"
            )));
        }
        body.extend_from_slice(&buf[..n]);
        remaining -= n;
    }
    Ok(())
}

/// Decodes a chunked body — `SIZE-in-hex CRLF data CRLF`, terminated by a
/// zero-size chunk — appending into `body` as data arrives, so a
/// mid-stream failure leaves the decoded prefix intact.
fn read_chunked_into<R: BufRead>(reader: &mut R, body: &mut Vec<u8>) -> Result<(), ServerError> {
    loop {
        let line = read_crlf_line(reader)?;
        // Chunk extensions (after `;`) are allowed by the RFC; ignore them.
        let size_text = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| ServerError::Protocol(format!("bad chunk size `{line}`")))?;
        if body.len().saturating_add(size) > MAX_BODY_BYTES {
            return Err(ServerError::Protocol("chunked body is oversized".into()));
        }
        if size == 0 {
            // Trailer section: read lines until the final blank one.
            loop {
                if read_crlf_line(reader)?.is_empty() {
                    return Ok(());
                }
            }
        }
        read_exact_into(reader, body, size)?;
        let sep = read_crlf_line(reader)?;
        if !sep.is_empty() {
            return Err(ServerError::Protocol("chunk data not followed by CRLF".into()));
        }
    }
}

/// Parses `a=1&b=two` into decoded pairs.
fn parse_query(raw: &str) -> Result<Vec<(String, String)>, ServerError> {
    let mut pairs = Vec::new();
    for piece in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        pairs.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(pairs)
}

/// Decodes `%XX` escapes and `+` (as space); rejects invalid escapes and
/// non-UTF-8 results.
fn percent_decode(raw: &str) -> Result<String, ServerError> {
    if !raw.contains('%') && !raw.contains('+') {
        return Ok(raw.to_string());
    }
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| {
                        ServerError::Protocol(format!("invalid percent escape in `{raw}`"))
                    })?;
                out.push(hex);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| ServerError::Protocol(format!("query is not UTF-8: `{raw}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_query_and_body() {
        let raw = b"POST /models/adult/synth?rows=10&seed=7&format=csv HTTP/1.1\r\n\
                    Host: localhost\r\nContent-Length: 5\r\n\r\nhello";
        let mut reader = &raw[..];
        let req = Request::read_from(&mut reader).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.segments(), vec!["models", "adult", "synth"]);
        assert_eq!(req.query("rows"), Some("10"));
        assert_eq!(req.query("seed"), Some("7"));
        assert_eq!(req.query("missing"), None);
        assert_eq!(req.body, b"hello");
        assert!(req.http11);
        assert!(req.wants_keep_alive(), "HTTP/1.1 is persistent by default");
    }

    #[test]
    fn connection_disposition_follows_version_and_header() {
        let parse = |raw: &[u8]| Request::read_from(&mut &raw[..]).unwrap();
        assert!(parse(b"GET / HTTP/1.1\r\n\r\n").wants_keep_alive());
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").wants_keep_alive());
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n").wants_keep_alive());
        assert!(!parse(b"GET / HTTP/1.0\r\n\r\n").wants_keep_alive());
        assert!(parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").wants_keep_alive());
    }

    #[test]
    fn percent_decoding_applies_to_path_and_query() {
        let raw = b"GET /models/a%2Db?comment=hi+there%21 HTTP/1.1\r\n\r\n";
        let req = Request::read_from(&mut &raw[..]).unwrap();
        assert_eq!(req.path, "/models/a-b");
        assert_eq!(req.query("comment"), Some("hi there!"));
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            &b"\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET / HTTP/3.0\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"GET /%zz HTTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            assert!(Request::read_from(&mut &raw[..]).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn newline_free_flood_is_cut_off_at_the_head_limit() {
        // An endless stream with no `\n` must be rejected after at most
        // MAX_HEAD_BYTES + 1 bytes, not buffered until memory runs out.
        struct Flood(usize);
        impl std::io::Read for Flood {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.0 += buf.len();
                buf.fill(b'A');
                Ok(buf.len())
            }
        }
        let mut reader = std::io::BufReader::new(Flood(0));
        let err = Request::read_from(&mut reader).unwrap_err();
        assert!(err.to_string().contains("size limit"), "{err}");
        assert!(
            reader.get_ref().0 <= 2 * MAX_HEAD_BYTES,
            "read {} bytes before giving up",
            reader.get_ref().0
        );
    }

    #[test]
    fn fixed_response_round_trips() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            404,
            "application/json",
            &[("X-PrivBayes-Api", "v1")],
            false,
            b"{\"error\":\"not-found\"}",
        )
        .unwrap();
        let resp = Response::read_from(&mut &wire[..]).unwrap();
        assert_eq!(resp.code, 404);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.header("x-privbayes-api"), Some("v1"));
        assert_eq!(resp.header("connection"), Some("close"));
        assert_eq!(resp.text(), "{\"error\":\"not-found\"}");

        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/json", &[], true, b"{}").unwrap();
        let resp = Response::read_from(&mut &wire[..]).unwrap();
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }

    #[test]
    fn chunked_response_round_trips() {
        let mut wire = Vec::new();
        let mut chunked =
            ChunkedResponse::begin(&mut wire, 200, "text/csv", &[("X-PrivBayes-Api", "v1")], true)
                .unwrap();
        chunked.write(b"a,b\n").unwrap();
        chunked.write(b"").unwrap(); // skipped, must not terminate the stream
        chunked.write(b"0,1\n1,0\n").unwrap();
        chunked.finish().unwrap();
        let resp = Response::read_from(&mut &wire[..]).unwrap();
        assert_eq!(resp.code, 200);
        assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
        assert_eq!(resp.header("x-privbayes-api"), Some("v1"));
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        assert_eq!(resp.text(), "a,b\n0,1\n1,0\n");
    }

    #[test]
    fn content_length_response_reads_exact() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbodyEXTRA";
        let resp = Response::read_from(&mut &wire[..]).unwrap();
        assert_eq!(resp.body, b"body");
    }

    #[test]
    fn eof_terminated_response_reads_to_end() {
        let wire = b"HTTP/1.1 200 OK\r\n\r\neverything until close";
        let resp = Response::read_from(&mut &wire[..]).unwrap();
        assert_eq!(resp.text(), "everything until close");
    }

    #[test]
    fn rejects_bad_chunk_framing() {
        let wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nZZ\r\n";
        assert!(Response::read_from(&mut &wire[..]).is_err());
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200, 201, 400, 402, 404, 405, 408, 409, 413, 500, 503] {
            assert!(!reason(code).is_empty());
        }
        assert_eq!(reason(408), "Request Timeout");
        assert_eq!(reason(503), "Service Unavailable");
    }

    #[test]
    fn read_partial_keeps_the_prefix_of_a_truncated_chunked_stream() {
        // A stream cut mid-chunk: head + one full chunk + half of another.
        let wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                     4\r\na,b\n\r\n8\r\n0,1\n";
        let (resp, err) = Response::read_partial(&mut &wire[..]).unwrap();
        assert_eq!(resp.code, 200);
        assert_eq!(resp.text(), "a,b\n0,1\n", "all delivered bytes survive");
        assert!(err.is_some(), "the truncation is reported alongside the prefix");

        // The strict reader rejects the same wire bytes outright.
        assert!(Response::read_from(&mut &wire[..]).is_err());
    }

    #[test]
    fn read_partial_keeps_the_prefix_of_a_short_content_length_body() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc";
        let (resp, err) = Response::read_partial(&mut &wire[..]).unwrap();
        assert_eq!(resp.body, b"abc");
        assert!(err.is_some());
    }

    #[test]
    fn read_partial_of_a_complete_response_reports_no_error() {
        let mut wire = Vec::new();
        let mut chunked = ChunkedResponse::begin(&mut wire, 200, "text/csv", &[], false).unwrap();
        chunked.write(b"a,b\nrow\n").unwrap();
        chunked.finish().unwrap();
        let (resp, err) = Response::read_partial(&mut &wire[..]).unwrap();
        assert!(err.is_none());
        assert_eq!(resp.text(), "a,b\nrow\n");
    }
}
