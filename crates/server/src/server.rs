//! The HTTP service: accept loop, worker pool, and route handlers.
//!
//! # Endpoints
//!
//! | method & path | effect |
//! |---|---|
//! | `GET /healthz` | liveness + registry/ledger counts (live, from the metric registry) |
//! | `GET /metrics` | Prometheus text exposition (v0.0.4) of every server metric |
//! | `GET /models` | list loaded models |
//! | `PUT /models/{id}` | load a release artifact (body: `privbayes-model/1` JSON) |
//! | `GET /models/{id}` | one model's metadata |
//! | `DELETE /models/{id}` | evict from the registry |
//! | `POST /v1/models/{id}/synth` | stream rows per a [`SynthSpec`] JSON body (evidence, projection, cursor resume) |
//! | `POST /v1/models/{id}/query` | answer a [`MarginalQuery`] exactly from the released θ |
//! | `GET /models/{id}/synth?rows=N&seed=S&format=csv\|jsonl` | legacy alias: desugars to a default spec |
//! | `POST /fit` | fit + register a model, debiting the tenant's ε |
//! | `GET /tenants` | ledger snapshot |
//! | `PUT /tenants/{id}?budget=E` | register a tenant |
//! | `GET /tenants/{id}` | one tenant's budget |
//! | `POST /shutdown` | drain in-flight requests and stop |
//!
//! Every response — fixed, chunked, success, or error — carries a
//! `Content-Type`, an `X-PrivBayes-Api: v1` header, and an
//! `X-PrivBayes-Request-Id` (echoing the client's, when it sent a valid
//! one). Spec-validation failures (unknown attribute, out-of-domain
//! evidence value, bad cursor, …) are answered `400` with the structured
//! body `{"error": "invalid-spec", "message": …}`.
//!
//! # Observability
//!
//! One [`ServerMetrics`] registry backs `GET /metrics`, `GET /healthz`,
//! the live [`ServerHandle::stats`] view, and the final counters from
//! [`ServerHandle::join`] — a single source of truth, so the surfaces can
//! never drift. Requests are counted by endpoint and status (including
//! acceptor-level 503 rejections, under `endpoint="acceptor"`), stage wall
//! time is recorded per request (`parse → ledger → lookup → sample →
//! write`), and every finished request appends one JSON line to the
//! access-log ring (and file sink, when configured). The cost discipline
//! is one relaxed atomic add per event, with no locks on the per-chunk
//! streaming path.
//!
//! # Concurrency and determinism
//!
//! One acceptor thread round-robins accepted sockets (with `TCP_NODELAY`
//! set) across per-worker bounded queues — workers never contend on a
//! shared receiver lock. Connections are **persistent**: each worker runs a
//! keep-alive loop per connection, serving requests until the client asks
//! `Connection: close`, the per-connection request cap
//! ([`ServerConfig::max_conn_requests`]) is reached, the idle deadline
//! expires, or the response failed mid-write (a truncated chunked stream
//! must be followed by a close, so the client sees the interruption). An
//! idle kept-alive connection is *parked*, not pinned: the worker polls
//! parked connections between new ones, so a quiet client never starves
//! the queue.
//!
//! A synthesis response is computed entirely from `(model, seed, spec)` —
//! the per-request RNG is seeded from the request, rows are generated in
//! the sampler's fixed 1024-row chunk scheme, and each chunk is written as
//! one HTTP chunk — so a fixed request is **byte-identical** no matter how
//! many other streams are in flight, which worker serves it, whether the
//! connection is fresh or reused, or how often the model was evicted and
//! reloaded in between. Unconditioned, unprojected streams are additionally
//! served through the [`RowBlockCache`]: formatted chunks are keyed by
//! `(model generation, seed, format, chunk index, rows)` and replayed as a
//! memcpy on repeat — the bytes are identical by construction, and the
//! generation key means a reloaded model can never replay its predecessor's
//! blocks. The legacy `GET` route desugars to a `SynthSpec` with no
//! evidence, no projection, and no cursor, whose bytes are the pre-v1 bytes
//! exactly; a cursor-resumed stream yields exactly the suffix of its
//! uninterrupted counterpart. Shutdown closes the accept loop first, then
//! lets every queued and in-flight request complete (idle parked
//! connections are simply closed).
//!
//! [`SynthSpec`]: privbayes_synth::SynthSpec
//! [`MarginalQuery`]: privbayes_synth::MarginalQuery

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use privbayes::inference::{theta_projection, DEFAULT_CELL_CAP};
use privbayes::CHUNK_ROWS;
use privbayes_data::csv::read_csv;
use privbayes_model::{schema_from_json, Json, ReleasedModel};
use privbayes_synth::{
    fit_method, fit_method_with_engine, Cursor, EngineStats, FitSettings, MarginalQuery, Method,
    ResolvedSynth, SpecError, SynthSpec,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::cache::{BlockKey, CacheMetrics, RowBlockCache};
use crate::error::ServerError;
#[cfg(any(test, feature = "fault-injection"))]
use crate::fault::{Fault, FaultPlan, FaultSite, FaultStream};
use crate::http::{write_response, ChunkedResponse, Request};
use crate::ingest::{parse_batch, BatchFormat, DatasetStore, RefitJob, RefitPolicy, RefitSpec};
use crate::ledger::{BudgetLedger, LedgerError, LedgerObserver, TenantBudget};
use crate::metrics::{RequestCtx, ServerMetrics, REQUEST_ID_HEADER};
use crate::registry::{GenerationLookup, ModelEntry, ModelRegistry};
use crate::stream::RowFormat;
#[cfg(any(test, feature = "fault-injection"))]
use std::sync::RwLock;

/// The API version marker attached to every response.
const API_HEADER: (&str, &str) = ("X-PrivBayes-Api", "v1");

/// The shared fault-plan slot handed to tests (absent from release builds).
#[cfg(any(test, feature = "fault-injection"))]
pub type FaultSlot = Arc<RwLock<Option<Arc<FaultPlan>>>>;

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request-handler threads (the accept loop runs on the caller's
    /// thread). Minimum 1.
    pub workers: usize,
    /// Worker threads used *inside* a fit request (candidate scoring and
    /// synthesis); `None` uses [`std::thread::available_parallelism`].
    pub fit_threads: Option<usize>,
    /// Upper bound on `rows` per synthesis request; larger requests get a
    /// structured 400. Bounds how long one request can pin a worker.
    pub max_rows: usize,
    /// How long a worker waits for request bytes before answering 408 — a
    /// slow-loris peer is reaped instead of pinning the worker.
    pub read_deadline: Duration,
    /// Socket write timeout: a peer that stops draining its response frees
    /// the worker after this long.
    pub write_deadline: Duration,
    /// Budget for handler work after the request is read. Checked between
    /// stream chunks (an overrunning stream is truncated) and before
    /// starting a fit.
    pub handler_deadline: Duration,
    /// Bound on connections accepted but not yet claimed by a worker
    /// (split evenly across the per-worker queues). Overflow is answered
    /// immediately with 503 + `Retry-After` — graceful degradation instead
    /// of unbounded queueing. Minimum 1.
    pub queue_depth: usize,
    /// Requests served per kept-alive connection before the server closes
    /// it (`Connection: close` on the final response). Bounds how long one
    /// client can monopolise connection state. Minimum 1 (every response
    /// closes).
    pub max_conn_requests: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it. Idle connections are parked, not
    /// pinned — this bounds parked-state lifetime, not worker time.
    pub idle_deadline: Duration,
    /// Byte budget for the preformatted row-block cache ([`RowBlockCache`]).
    /// `0` disables caching; every stream then samples and formats from
    /// scratch.
    pub cache_bytes: usize,
    /// Whether `GET /metrics` is served (the registry itself always runs —
    /// `/healthz` and [`ServerHandle::stats`] read it regardless).
    pub metrics_enabled: bool,
    /// File appended with one JSON line per finished request. `None`
    /// disables the file sink; the in-memory ring is always kept.
    pub access_log: Option<PathBuf>,
    /// Directory for the per-tenant dataset journals behind
    /// `POST /v1/tenants/{t}/ingest`. `None` keeps ingested data in memory
    /// only (appends do not survive a restart).
    pub data_dir: Option<PathBuf>,
    /// When accumulated appends trigger a ledger-accounted background
    /// refit. The default never triggers; ingested rows then sit pending
    /// until the policy is enabled.
    pub refit: RefitPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            fit_threads: None,
            max_rows: 10_000_000,
            read_deadline: Duration::from_secs(30),
            write_deadline: Duration::from_secs(30),
            handler_deadline: Duration::from_secs(120),
            queue_depth: 64,
            max_conn_requests: 1000,
            idle_deadline: Duration::from_secs(5),
            cache_bytes: 64 << 20,
            metrics_enabled: true,
            access_log: None,
            data_dir: None,
            refit: RefitPolicy::disabled(),
        }
    }
}

/// Counters reported by [`Server::run`] after a clean shutdown — a
/// snapshot of the live metric registry, so [`ServerHandle::stats`],
/// `GET /healthz`, `GET /metrics`, and the value returned by
/// [`ServerHandle::join`] all read the same source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered (including the shutdown request itself and
    /// acceptor-level 503 rejections, which are also in `queue_rejected`).
    pub requests: u64,
    /// Handler panics caught and isolated (each also answered 500 when the
    /// response had not started). Zero in a healthy server.
    pub panics: u64,
    /// Connections rejected with 503 because the pending queue was full.
    pub queue_rejected: u64,
}

impl ServerStats {
    /// The current counters, read live from the metric registry.
    fn snapshot(metrics: &ServerMetrics) -> Self {
        Self {
            requests: metrics.registry().counter_total("privbayes_requests_total"),
            panics: metrics.panics.get(),
            queue_rejected: metrics.queue_rejected.get(),
        }
    }
}

/// Shared state visible to every worker.
struct Shared {
    registry: Arc<ModelRegistry>,
    ledger: Arc<BudgetLedger>,
    store: Arc<DatasetStore>,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    metrics: Arc<ServerMetrics>,
    cache: RowBlockCache,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: FaultSlot,
}

/// A bound-but-not-yet-running synthesis service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over the
    /// given registry and ledger. Callers keep their `Arc`s to pre-load
    /// models or inspect the ledger while the server runs.
    ///
    /// # Errors
    /// Returns [`ServerError::Io`] if the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        registry: Arc<ModelRegistry>,
        ledger: Arc<BudgetLedger>,
    ) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let access_log =
            match &config.access_log {
                Some(path) => {
                    Some(std::fs::OpenOptions::new().create(true).append(true).open(path).map_err(
                        |e| ServerError::Io(format!("access log {}: {e}", path.display())),
                    )?)
                }
                None => None,
            };
        let metrics = Arc::new(ServerMetrics::new(access_log));
        // The ledger records persist latency and outcomes into the same
        // registry; the per-tenant ε gauges stay scrape-time mirrors of
        // the ledger snapshot (the ledger remains the accounting truth).
        ledger.set_observer(Some(LedgerObserver {
            persist_seconds: Arc::clone(&metrics.ledger_persist_seconds),
            ok: metrics.registry().counter("privbayes_ledger_persist_total", &[("outcome", "ok")]),
            rolled_back: metrics
                .registry()
                .counter("privbayes_ledger_persist_total", &[("outcome", "rolled_back")]),
            durable_failure: metrics
                .registry()
                .counter("privbayes_ledger_persist_total", &[("outcome", "durable_failure")]),
            stripe_contention: (0..ledger.stripe_count())
                .map(|i| {
                    metrics.registry().counter(
                        "privbayes_ledger_stripe_contention_total",
                        &[("stripe", &i.to_string())],
                    )
                })
                .collect(),
        }));
        let cache = RowBlockCache::new(
            config.cache_bytes,
            CacheMetrics {
                hits: Arc::clone(&metrics.rowblock_cache_hits),
                misses: Arc::clone(&metrics.rowblock_cache_misses),
                evicted_bytes: Arc::clone(&metrics.rowblock_cache_evicted_bytes),
            },
        );
        // The dataset store recovers every journaled tenant before the
        // first request is accepted, so a post-restart append lands on the
        // full recovered history.
        let store = Arc::new(match &config.data_dir {
            Some(dir) => DatasetStore::open(dir)?,
            None => DatasetStore::in_memory(),
        });
        let shared = Arc::new(Shared {
            registry,
            ledger,
            store,
            config,
            addr,
            shutdown: AtomicBool::new(false),
            metrics,
            cache,
            #[cfg(any(test, feature = "fault-injection"))]
            fault: Arc::new(RwLock::new(None)),
        });
        Ok(Self { listener, shared })
    }

    /// The live metric registry surface (shared with `GET /metrics`).
    #[must_use]
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The per-tenant dataset store behind the ingest endpoint (shared
    /// with the running server; callers keep it across [`Server::spawn`]
    /// to inspect ingestion state or install fault plans in tests).
    #[must_use]
    pub fn store(&self) -> Arc<DatasetStore> {
        Arc::clone(&self.shared.store)
    }

    /// The actual bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The slot tests use to install, swap, or clear a [`FaultPlan`] while
    /// the server runs. The plan is consulted per connection (IO faults)
    /// and per request (handler faults). Test-only: absent from release
    /// builds.
    #[cfg(any(test, feature = "fault-injection"))]
    #[must_use]
    pub fn fault_slot(&self) -> FaultSlot {
        Arc::clone(&self.shared.fault)
    }

    /// Serves until a `POST /shutdown` request arrives, then drains every
    /// queued and in-flight request and returns. Blocks the calling thread;
    /// use [`Server::spawn`] to run in the background.
    ///
    /// # Errors
    /// Returns [`ServerError::Io`] if the accept loop fails fatally.
    pub fn run(self) -> Result<ServerStats, ServerError> {
        let shared = self.shared;
        let workers = shared.config.workers.max(1);
        let queue_depth = shared.config.queue_depth.max(1);
        // Bounded *per-worker* queues are the admission-control valve: the
        // total capacity stays `queue_depth`, but each worker drains its
        // own channel, so claiming a connection never contends on a shared
        // receiver lock. When every queue is full the acceptor answers 503
        // instead of queueing without limit.
        let per_worker = queue_depth.div_ceil(workers).max(1);
        let handles = Arc::new(Mutex::new(Vec::new()));
        let mut senders = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::sync_channel::<TcpStream>(per_worker);
            senders.push(tx);
            spawn_worker(&shared, &Arc::new(Mutex::new(rx)), &handles);
        }
        // The refit janitor: polls the dataset store for tenants the policy
        // says are due and runs each refit with the same ledger discipline
        // as `POST /fit` (charge first, refund on failure). It runs beside
        // the workers so a long fit never blocks request serving; the store
        // single-flights per tenant, so at most one refit per tenant is in
        // flight regardless of poll cadence.
        let janitor = shared.config.refit.is_enabled().then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while !shared.shutdown.load(Ordering::SeqCst) {
                    for job in shared.store.due_refits(&shared.config.refit) {
                        run_refit(&shared, &job);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            })
        });
        let mut next_worker = 0usize;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
                Err(_) => {
                    // Transient accept failure (e.g. fd exhaustion):
                    // back off briefly instead of hot-looping; the
                    // condition clears as in-flight connections close.
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection from the shutdown handler (or a
                // straggler racing it): stop accepting. Dropping the
                // stream closes it; queued requests still complete.
                break;
            }
            // Small responses must not sit in the kernel waiting for an ACK
            // under Nagle — a keep-alive ping-pong would otherwise pay up
            // to one RTT-with-delay per request.
            let _ = stream.set_nodelay(true);
            // Round-robin across worker queues, skipping full ones; a full
            // scan with no slot means the whole tier is saturated.
            let mut pending = Some(stream);
            let mut any_alive = false;
            for offset in 0..workers {
                let w = (next_worker + offset) % workers;
                match senders[w].try_send(pending.take().expect("stream present")) {
                    Ok(()) => {
                        shared.metrics.queue_depth.add(1);
                        next_worker = (w + 1) % workers;
                        break;
                    }
                    Err(mpsc::TrySendError::Full(s)) => {
                        any_alive = true;
                        pending = Some(s);
                    }
                    // Unreachable while respawn holds the pool at `workers`
                    // threads; skip rather than spin if it somehow isn't.
                    Err(mpsc::TrySendError::Disconnected(s)) => pending = Some(s),
                }
            }
            match pending {
                None => {}
                Some(stream) if any_alive => reject_overloaded(&shared, stream),
                Some(_) => break, // every worker queue is gone: bail
            }
        }
        drop(senders);
        if let Some(handle) = janitor {
            let _ = handle.join();
        }
        // Join every worker, including any respawned after a panic (the
        // vector grows while we drain it, hence the loop-and-pop).
        loop {
            let handle = handles.lock().expect("worker handles lock poisoned").pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        Ok(ServerStats::snapshot(&shared.metrics))
    }

    /// Runs the server on a background thread, returning a handle with the
    /// bound address and the eventual stats.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let metrics = Arc::clone(&self.shared.metrics);
        let join = std::thread::spawn(move || self.run());
        ServerHandle { addr, metrics, join }
    }
}

/// A running background server (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    join: std::thread::JoinHandle<Result<ServerStats, ServerError>>,
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current counters, read live while the server runs — the same
    /// registry `GET /metrics` and `GET /healthz` serve, so this view and
    /// the final [`ServerHandle::join`] value can never disagree.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats::snapshot(&self.metrics)
    }

    /// The live metric registry surface (shared with the running server).
    #[must_use]
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Waits for the server to shut down (something must send
    /// `POST /shutdown`, e.g. [`crate::client::Client::shutdown`]).
    ///
    /// # Errors
    /// Propagates the server's exit error; panics if the server thread
    /// panicked.
    pub fn join(self) -> Result<ServerStats, ServerError> {
        self.join.join().expect("server thread panicked")
    }
}

/// Starts one pool worker over its own connection queue; its handle is
/// recorded in `handles` so shutdown can join the *current* pool even
/// after respawns.
fn spawn_worker(
    shared: &Arc<Shared>,
    rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    handles: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let shared = Arc::clone(shared);
    let rx = Arc::clone(rx);
    let handles_slot = Arc::clone(handles);
    let handle = std::thread::spawn(move || {
        let guard = RespawnGuard {
            shared: Arc::clone(&shared),
            rx: Arc::clone(&rx),
            handles: Arc::clone(&handles_slot),
        };
        worker_loop(&shared, &rx);
        // Clean exit: disarm the guard so no replacement is spawned.
        std::mem::forget(guard);
    });
    handles.lock().expect("worker handles lock poisoned").push(handle);
}

/// How long a worker waits on one socket probe while it has parked
/// connections to rotate through. Small enough that a request landing on
/// any parked connection (or the worker's queue) is picked up promptly;
/// large enough not to spin.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// One worker: drains its queue, serving each connection's requests until
/// the connection goes idle — idle connections are *parked* and polled
/// between new ones, so a quiet keep-alive client never pins the worker.
fn worker_loop(shared: &Shared, rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    let mut parked: VecDeque<Conn> = VecDeque::new();
    loop {
        // New connections take priority; block on the queue only when no
        // parked connection could become ready behind our back.
        let incoming = if parked.is_empty() {
            match rx.lock().expect("worker queue lock poisoned").recv() {
                Ok(stream) => Some(stream),
                Err(_) => return, // acceptor closed the channel: drain done
            }
        } else {
            match rx.lock().expect("worker queue lock poisoned").try_recv() {
                Ok(stream) => Some(stream),
                Err(mpsc::TryRecvError::Empty) => None,
                // Shutdown: parked connections are idle by definition —
                // dropping them closes them with no request in flight.
                Err(mpsc::TryRecvError::Disconnected) => return,
            }
        };
        if let Some(stream) = incoming {
            // The connection has left the pending queue and owns this
            // worker now.
            shared.metrics.queue_depth.sub(1);
            if let Some(conn) = Conn::new(shared, stream) {
                drive(shared, conn, &mut parked);
            }
            continue;
        }
        // Nothing new: give the longest-parked connection a poll window.
        let mut conn = parked.pop_front().expect("checked non-empty above");
        match conn.poll(IDLE_POLL) {
            Poll::Ready => drive(shared, conn, &mut parked),
            Poll::Idle if conn.parked_at.elapsed() >= shared.config.idle_deadline => {
                // Idle past the deadline: close silently (there is no
                // request to answer).
            }
            Poll::Idle => parked.push_back(conn),
            Poll::Closed => {} // peer hung up between requests
        }
    }
}

/// Serves requests on `conn` for as long as they keep coming, then parks
/// it (keep-alive, no data ready) or drops it (close).
fn drive(shared: &Shared, mut conn: Conn, parked: &mut VecDeque<Conn>) {
    loop {
        if !serve_request(shared, &mut conn) {
            return; // dropping the connection closes it
        }
        // Linger briefly: a pipelining or ping-pong client's next request
        // lands within the window and is served with zero handoff.
        match conn.poll(IDLE_POLL) {
            Poll::Ready => continue,
            Poll::Closed => return,
            Poll::Idle => {
                conn.parked_at = Instant::now();
                parked.push_back(conn);
                return;
            }
        }
    }
}

/// The connection's IO type: faultable in test builds, bare TCP otherwise.
#[cfg(any(test, feature = "fault-injection"))]
type ConnIo = FaultStream<TcpStream>;
#[cfg(not(any(test, feature = "fault-injection")))]
type ConnIo = TcpStream;

/// Outcome of probing a connection for buffered request bytes.
enum Poll {
    /// Request bytes are buffered: serve now.
    Ready,
    /// No data within the window; the socket is still open.
    Idle,
    /// EOF or a socket error between requests: nothing left to serve.
    Closed,
}

/// One accepted connection with its buffered halves and keep-alive state.
struct Conn {
    /// A plain handle on the socket, kept for timeout control (the file
    /// description — and thus `SO_RCVTIMEO` — is shared with both halves).
    socket: TcpStream,
    reader: BufReader<ConnIo>,
    writer: TrackedWriter<BufWriter<ConnIo>>,
    /// Requests already answered on this connection.
    served: u64,
    /// When the connection was last parked (for the idle deadline).
    parked_at: Instant,
}

impl Conn {
    /// Wraps an accepted socket. Under fault injection both halves go
    /// through the currently installed plan (captured once per connection).
    fn new(shared: &Shared, stream: TcpStream) -> Option<Self> {
        let _ = stream.set_read_timeout(Some(shared.config.read_deadline));
        let _ = stream.set_write_timeout(Some(shared.config.write_deadline));
        let read_half = stream.try_clone().ok()?;
        let socket = stream.try_clone().ok()?;
        #[cfg(any(test, feature = "fault-injection"))]
        let (reader, writer) = {
            let plan = shared.fault.read().expect("fault plan lock poisoned").clone();
            (
                BufReader::new(FaultStream::new(read_half, plan.clone())),
                TrackedWriter::new(BufWriter::new(FaultStream::new(stream, plan))),
            )
        };
        #[cfg(not(any(test, feature = "fault-injection")))]
        let (reader, writer) =
            (BufReader::new(read_half), TrackedWriter::new(BufWriter::new(stream)));
        Some(Self { socket, reader, writer, served: 0, parked_at: Instant::now() })
    }

    /// Probes for buffered request bytes, waiting at most `window`.
    fn poll(&mut self, window: Duration) -> Poll {
        let _ = self.socket.set_read_timeout(Some(window));
        match self.reader.fill_buf() {
            Ok([]) => Poll::Closed,
            Ok(_) => Poll::Ready,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Poll::Idle
            }
            Err(_) => Poll::Closed,
        }
    }
}

/// The per-request core: read, dispatch inside `catch_unwind`, answer,
/// count. Returns whether the connection survives for another request.
///
/// A handler panic is isolated to this request — counted, answered with a
/// structured 500 when the response has not started (after that the torn
/// connection itself is the correct failure signal) — and always closes
/// the connection. A read deadline expiring mid-request is answered 408. A
/// peer that closes (or resets) a kept-alive connection *between* requests
/// is not an error and not a request: the connection is dropped silently,
/// so idle churn never skews the request counters.
fn serve_request(shared: &Shared, conn: &mut Conn) -> bool {
    let metrics = &shared.metrics;
    // `poll` may have shrunk the socket timeout; requests get the full
    // read deadline (the head may still be in flight behind the probe).
    let _ = conn.socket.set_read_timeout(Some(shared.config.read_deadline));
    conn.writer.begin_request();
    let parsed = Request::read_from(&mut conn.reader);
    let reused = conn.served > 0;
    if reused && matches!(parsed, Err(ServerError::Io(_))) {
        // EOF or reset between requests on a kept-alive connection.
        return false;
    }
    let inbound_id = parsed.as_ref().ok().and_then(|r| r.header("x-privbayes-request-id"));
    let ctx = RequestCtx::new(metrics, metrics.request_id(inbound_id));
    ctx.stage("parse");
    let (method, path) = match &parsed {
        Ok(request) => (request.method.clone(), request.path.clone()),
        Err(_) => ("-".to_string(), "-".to_string()),
    };
    let mut keep = false;
    match parsed {
        Ok(request) => {
            if reused {
                metrics.connections_reused.inc();
            }
            conn.served += 1;
            ctx.keep_alive.set(
                request.wants_keep_alive()
                    && conn.served < shared.config.max_conn_requests.max(1) as u64
                    && !shared.shutdown.load(Ordering::SeqCst),
            );
            let deadline = Instant::now() + shared.config.handler_deadline;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(shared, &request, &mut conn.writer, deadline, &ctx)
            }));
            match outcome {
                // The handler may flip `keep_alive` off (shutdown does).
                Ok(Ok(())) => keep = ctx.keep_alive.get(),
                // Socket-level failure mid-response: for a streaming
                // response this is the deliberate truncation path — the
                // close is what lets the client detect the torn transfer.
                Ok(Err(_)) => {}
                Err(_) => {
                    metrics.panics.inc();
                    if !conn.writer.started() {
                        ctx.keep_alive.set(false);
                        let _ = respond_error(
                            &mut conn.writer,
                            &ctx,
                            500,
                            "internal",
                            "request handler panicked",
                        );
                    }
                }
            }
        }
        Err(ServerError::Timeout(msg)) => {
            ctx.endpoint.set("read");
            let _ = respond_error(&mut conn.writer, &ctx, 408, "request-timeout", &msg);
        }
        Err(e) => {
            ctx.endpoint.set("read");
            let _ = respond_error(&mut conn.writer, &ctx, 400, "bad-request", &e.to_string());
        }
    }
    metrics.finish_request(&ctx, &method, &path, conn.writer.request_bytes());
    keep
}

/// Insurance against pool decay: per-request `catch_unwind` already stops
/// panics from unwinding the worker loop, but if one ever escapes anyway
/// (e.g. a panic inside the response-error path itself), this guard spawns
/// a replacement worker as the dying thread unwinds, so pool capacity never
/// shrinks.
struct RespawnGuard {
    shared: Arc<Shared>,
    rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.metrics.panics.inc();
            spawn_worker(&self.shared, &self.rx, &self.handles);
        }
    }
}

/// Answers an over-capacity connection from the acceptor thread: an
/// immediate 503 with `Retry-After`, without reading the request — the
/// whole point is to spend no worker time on it. The rejection still goes
/// through the normal instrumentation path, so overload shows up in the
/// request counters and the access log (under `endpoint="acceptor"`), not
/// just in `queue_rejected`.
fn reject_overloaded(shared: &Shared, stream: TcpStream) {
    let metrics = &shared.metrics;
    metrics.queue_rejected.inc();
    let ctx = RequestCtx::new(metrics, metrics.request_id(None));
    ctx.endpoint.set("acceptor");
    let _ = stream.set_write_timeout(Some(shared.config.write_deadline));
    let mut writer = TrackedWriter::new(BufWriter::new(stream));
    let body = Json::object(vec![
        ("error", Json::String("overloaded".into())),
        ("message", Json::String("pending-connection queue is full; retry shortly".into())),
    ]);
    let text = body.to_string_compact().expect("static body");
    ctx.status.set(503);
    let _ = write_response(
        &mut writer,
        503,
        "application/json",
        &[API_HEADER, ("Retry-After", "1"), (REQUEST_ID_HEADER, &ctx.id)],
        false,
        text.as_bytes(),
    );
    metrics.finish_request(&ctx, "-", "-", writer.request_bytes());
}

/// A writer that counts response bytes per request on a persistent
/// connection: `started` tells the panic handler whether a structured 500
/// is still possible for the *current* request, and `request_bytes` feeds
/// the access log.
struct TrackedWriter<W: Write> {
    inner: W,
    bytes: u64,
    mark: u64,
}

impl<W: Write> TrackedWriter<W> {
    fn new(inner: W) -> Self {
        Self { inner, bytes: 0, mark: 0 }
    }

    /// Resets the per-request view (call before reading each request).
    fn begin_request(&mut self) {
        self.mark = self.bytes;
    }

    /// Whether any byte of the current request's response was written.
    fn started(&self) -> bool {
        self.bytes > self.mark
    }

    /// Bytes written for the current request.
    fn request_bytes(&self) -> u64 {
        self.bytes - self.mark
    }
}

impl<W: Write> Write for TrackedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Dispatches on `(method, path)`. Each arm labels `ctx.endpoint` before
/// doing any work, so even a response that fails mid-write is attributed.
fn route<W: Write>(
    shared: &Shared,
    req: &Request,
    out: &mut W,
    deadline: Instant,
    ctx: &RequestCtx<'_>,
) -> std::io::Result<()> {
    #[cfg(any(test, feature = "fault-injection"))]
    if let Some(plan) = shared.fault.read().expect("fault plan lock poisoned").as_ref() {
        if let Some(Fault::Panic) = plan.take(FaultSite::Handler) {
            panic!("injected handler panic");
        }
    }
    let segments = req.segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            ctx.endpoint.set("healthz");
            let metrics = &shared.metrics;
            respond_json(
                out,
                ctx,
                200,
                &Json::object(vec![
                    ("status", Json::String("ok".into())),
                    ("models", Json::from_usize(shared.registry.len())),
                    ("tenants", Json::from_usize(shared.ledger.snapshot().len())),
                    (
                        "requests",
                        Json::from_usize(
                            metrics.registry().counter_total("privbayes_requests_total") as usize,
                        ),
                    ),
                    ("panics", Json::from_usize(metrics.panics.get() as usize)),
                    ("queue_rejected", Json::from_usize(metrics.queue_rejected.get() as usize)),
                    ("queue_depth", Json::from_usize(metrics.queue_depth.get().max(0) as usize)),
                    (
                        "active_streams",
                        Json::from_usize(metrics.active_streams.get().max(0) as usize),
                    ),
                ]),
            )
        }
        ("GET", ["metrics"]) => {
            ctx.endpoint.set("metrics");
            if !shared.config.metrics_enabled {
                return respond_error(
                    out,
                    ctx,
                    404,
                    "not-found",
                    "metrics exposition is disabled on this server",
                );
            }
            let body = shared.metrics.render(&shared.ledger.snapshot());
            ctx.status.set(200);
            ctx.stage("write");
            write_response(
                out,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &[API_HEADER, (REQUEST_ID_HEADER, &ctx.id)],
                ctx.keep_alive.get(),
                body.as_bytes(),
            )
        }
        ("GET", ["models"]) => {
            ctx.endpoint.set("models");
            let models: Vec<Json> = shared.registry.list().iter().map(|e| model_json(e)).collect();
            respond_json(out, ctx, 200, &Json::Array(models))
        }
        ("PUT", ["models", id]) => load_model(shared, id, &req.body, out, ctx),
        ("GET", ["models", id]) => {
            ctx.endpoint.set("models");
            ctx.stage("lookup");
            match shared.registry.get(id) {
                Some(entry) => respond_json(out, ctx, 200, &model_json(&entry)),
                None => respond_error(out, ctx, 404, "model-not-found", id),
            }
        }
        ("DELETE", ["models", id]) => {
            ctx.endpoint.set("models");
            if shared.registry.evict(id) {
                respond_json(
                    out,
                    ctx,
                    200,
                    &Json::object(vec![("evicted", Json::String((*id).to_string()))]),
                )
            } else {
                respond_error(out, ctx, 404, "model-not-found", id)
            }
        }
        ("GET", ["models", id, "synth"]) => synth_legacy(shared, id, req, out, deadline, ctx),
        ("POST", ["v1", "models", id, "synth"]) => synth_v1(shared, id, req, out, deadline, ctx),
        ("POST", ["v1", "models", id, "query"]) => query_v1(shared, id, req, out, ctx),
        ("GET", ["v1", "models", id, "generations"]) => generations_v1(shared, id, out, ctx),
        ("POST", ["v1", "tenants", tenant, "ingest"]) => ingest_v1(shared, tenant, req, out, ctx),
        ("POST", ["fit"]) => fit(shared, req, out, deadline, ctx),
        ("GET", ["tenants"]) => {
            ctx.endpoint.set("tenants");
            let tenants: Vec<Json> = shared.ledger.snapshot().iter().map(tenant_json).collect();
            respond_json(out, ctx, 200, &Json::Array(tenants))
        }
        ("PUT", ["tenants", id]) => {
            ctx.endpoint.set("tenants");
            let Some(raw) = req.query("budget") else {
                return respond_error(
                    out,
                    ctx,
                    400,
                    "bad-request",
                    "missing `budget` query parameter",
                );
            };
            let Ok(total) = raw.parse::<f64>() else {
                return respond_error(out, ctx, 400, "bad-request", "unparsable `budget`");
            };
            match shared.ledger.register(id, total) {
                Ok(()) => {
                    let row = shared.ledger.budget(id).expect("registered above");
                    respond_json(out, ctx, 201, &tenant_json(&row))
                }
                Err(ServerError::Conflict(msg)) => {
                    respond_error(out, ctx, 409, "tenant-exists", &msg)
                }
                Err(e @ ServerError::Ledger(_)) => {
                    respond_error(out, ctx, 500, "ledger-error", &e.to_string())
                }
                Err(e) => respond_error(out, ctx, 400, "bad-request", &e.to_string()),
            }
        }
        ("GET", ["tenants", id]) => {
            ctx.endpoint.set("tenants");
            match shared.ledger.budget(id) {
                Some(row) => respond_json(out, ctx, 200, &tenant_json(&row)),
                None => respond_error(out, ctx, 404, "tenant-not-found", id),
            }
        }
        ("POST", ["shutdown"]) => {
            ctx.endpoint.set("shutdown");
            shared.shutdown.store(true, Ordering::SeqCst);
            // The final response on a draining server always closes.
            ctx.keep_alive.set(false);
            let result = respond_json(
                out,
                ctx,
                200,
                &Json::object(vec![("status", Json::String("shutting-down".into()))]),
            );
            // Wake the acceptor, which is blocked in `accept`; it sees the
            // flag and stops. Errors are moot — if the connect fails the
            // listener is already gone.
            let _ = TcpStream::connect(shared.addr);
            result
        }
        // A known path with the wrong method is 405; an unknown path is 404.
        (
            _,
            ["healthz"]
            | ["metrics"]
            | ["models"]
            | ["models", _]
            | ["models", _, "synth"]
            | ["v1", "models", _, "synth" | "query" | "generations"]
            | ["v1", "tenants", _, "ingest"]
            | ["fit"]
            | ["tenants"]
            | ["tenants", _]
            | ["shutdown"],
        ) => {
            ctx.endpoint.set(endpoint_label(&segments));
            respond_error(out, ctx, 405, "method-not-allowed", &req.method)
        }
        _ => respond_error(out, ctx, 404, "not-found", &req.path),
    }
}

/// The metric endpoint label for a known path, so wrong-method 405s are
/// counted under the endpoint they aimed at instead of `unknown`.
fn endpoint_label(segments: &[&str]) -> &'static str {
    match segments {
        ["healthz"] => "healthz",
        ["metrics"] => "metrics",
        ["models"] | ["models", _] => "models",
        ["models", _, "synth"] | ["v1", "models", _, "synth"] => "synth",
        ["v1", "models", _, "query"] => "query",
        ["v1", "models", _, "generations"] => "generations",
        ["v1", "tenants", _, "ingest"] => "ingest",
        ["fit"] => "fit",
        ["tenants"] | ["tenants", _] => "tenants",
        ["shutdown"] => "shutdown",
        _ => "unknown",
    }
}

/// `PUT /models/{id}`: parse, validate, compile, register.
fn load_model<W: Write>(
    shared: &Shared,
    id: &str,
    body: &[u8],
    out: &mut W,
    ctx: &RequestCtx<'_>,
) -> std::io::Result<()> {
    ctx.endpoint.set("models");
    let Ok(text) = std::str::from_utf8(body) else {
        return respond_error(out, ctx, 400, "bad-request", "artifact body is not UTF-8");
    };
    let artifact = match ReleasedModel::from_json_string(text) {
        Ok(artifact) => artifact,
        Err(e) => return respond_error(out, ctx, 400, "invalid-model", &e.to_string()),
    };
    // `registry.load` validates and eagerly compiles the alias tables; its
    // wall time is the alias-build cost for this artifact.
    let compile_started = Instant::now();
    let loaded = shared.registry.load(id, artifact);
    ctx.metrics.alias_build_seconds.observe(compile_started.elapsed());
    match loaded {
        Ok(created) => {
            let entry = shared.registry.get(id).expect("loaded above");
            shared.metrics.set_model_generation(id, entry.generation);
            respond_json(out, ctx, if created { 201 } else { 200 }, &model_json(&entry))
        }
        Err(e) => respond_error(out, ctx, 400, "invalid-model", &e.to_string()),
    }
}

/// `GET /models/{id}/synth`: the legacy route, kept as an alias that
/// desugars the query parameters into a default [`SynthSpec`] (no evidence,
/// no projection, no cursor). Its bytes for a fixed `(model, seed, rows,
/// format)` are the pre-v1 bytes exactly.
///
/// [`SynthSpec`]: privbayes_synth::SynthSpec
fn synth_legacy<W: Write>(
    shared: &Shared,
    id: &str,
    req: &Request,
    out: &mut W,
    deadline: Instant,
    ctx: &RequestCtx<'_>,
) -> std::io::Result<()> {
    ctx.endpoint.set("synth");
    ctx.stage("lookup");
    let Some(entry) = shared.registry.get(id) else {
        return respond_error(out, ctx, 404, "model-not-found", id);
    };
    let format = match RowFormat::parse(req.query("format")) {
        Ok(format) => format,
        Err(e) => return respond_error(out, ctx, 400, "bad-request", &e.to_string()),
    };
    let rows = match req.query("rows").map(str::parse::<usize>) {
        None => None,
        Some(Ok(rows)) => Some(rows),
        Some(Err(_)) => return respond_error(out, ctx, 400, "bad-request", "unparsable `rows`"),
    };
    let seed = match req.query("seed").map(str::parse::<u64>) {
        None => None,
        Some(Ok(seed)) => Some(seed),
        Some(Err(_)) => return respond_error(out, ctx, 400, "bad-request", "unparsable `seed`"),
    };
    let resolved = ResolvedSynth {
        rows,
        seed,
        format,
        projection: None,
        evidence: Vec::new(),
        start_row: 0,
        generation: None,
    };
    stream_synth(shared, &entry, &resolved, out, deadline, ctx)
}

/// `POST /v1/models/{id}/synth`: parse the [`SynthSpec`] body, resolve it
/// against the model's schema, stream rows.
///
/// [`SynthSpec`]: privbayes_synth::SynthSpec
fn synth_v1<W: Write>(
    shared: &Shared,
    id: &str,
    req: &Request,
    out: &mut W,
    deadline: Instant,
    ctx: &RequestCtx<'_>,
) -> std::io::Result<()> {
    ctx.endpoint.set("synth");
    let json = match parse_json_body(&req.body) {
        Ok(json) => json,
        Err(e) => return respond_error(out, ctx, 400, "bad-request", &e.to_string()),
    };
    let spec = match SynthSpec::from_json(&json) {
        Ok(spec) => spec,
        Err(e) => return respond_invalid_spec(out, ctx, &e),
    };
    ctx.stage("lookup");
    // A `pbc2` cursor pins the model *generation* it was cut from, so a
    // stream resumed across a hot-swap keeps sampling the exact artifact
    // that produced its prefix — bytes identical to the uninterrupted
    // stream. Unpinned requests serve the newest generation.
    let pinned = spec.cursor.as_ref().and_then(|c| c.generation);
    let entry = match pinned {
        None => match shared.registry.get(id) {
            Some(entry) => entry,
            None => return respond_error(out, ctx, 404, "model-not-found", id),
        },
        Some(generation) => match shared.registry.get_generation(id, generation) {
            GenerationLookup::Found(entry) => entry,
            GenerationLookup::Evicted { newest } => {
                return respond_error(
                    out,
                    ctx,
                    410,
                    "generation-evicted",
                    &format!(
                        "generation {generation} of model `{id}` has aged out \
                         (newest is {newest}); restart the stream without a cursor"
                    ),
                );
            }
            GenerationLookup::Unknown => {
                return respond_error(out, ctx, 404, "model-not-found", id)
            }
        },
    };
    let resolved = match spec.resolve(&entry.artifact.schema) {
        Ok(resolved) => resolved,
        Err(e) => return respond_invalid_spec(out, ctx, &e),
    };
    stream_synth(shared, &entry, &resolved, out, deadline, ctx)
}

/// Streams one resolved synthesis request: the shared tail of the legacy
/// alias and the `/v1` spec route. The response carries `X-PrivBayes-Seed`
/// (the effective seed, also when the server drew it) and
/// `X-PrivBayes-Cursor` (the stream's own resume token), and skips the CSV
/// header on resumed streams so `prefix + resumed` is byte-identical to an
/// uninterrupted stream.
fn stream_synth<W: Write>(
    shared: &Shared,
    entry: &ModelEntry,
    resolved: &ResolvedSynth,
    out: &mut W,
    deadline: Instant,
    ctx: &RequestCtx<'_>,
) -> std::io::Result<()> {
    let rows = resolved.rows.unwrap_or(entry.artifact.metadata.source_rows);
    if rows > shared.config.max_rows {
        return respond_error(
            out,
            ctx,
            400,
            "too-many-rows",
            &format!("rows = {rows} exceeds the per-request cap of {}", shared.config.max_rows),
        );
    }
    let seed = match resolved.seed {
        Some(seed) => seed,
        None => match StdRng::try_from_rng(&mut rand::rngs::SysRng) {
            Ok(mut rng) => rng.random::<u64>(),
            Err(_) => {
                return respond_error(out, ctx, 500, "internal", "entropy source unavailable")
            }
        },
    };
    let sampler = match entry.sampler() {
        Ok(sampler) => sampler,
        Err(e) => return respond_error(out, ctx, 500, "internal", &e.to_string()),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let stream = match sampler.stream_spec(&resolved.sample_spec(rows), &mut rng) {
        Ok(stream) => stream,
        Err(e) => return respond_error(out, ctx, 400, "invalid-spec", &e.to_string()),
    };
    // Ancestrally-closed evidence was already mass-checked exactly inside
    // `stream_spec`; only the likelihood-weighted mode cannot detect
    // impossible evidence itself, so only it pays for the exact
    // evidence-marginal guard (skipped when the closure exceeds the cell
    // cap — the stream then degrades to clamped rows rather than erroring).
    if stream.is_likelihood_weighted() {
        let attrs: Vec<usize> = resolved.evidence.iter().map(|&(a, _)| a).collect();
        if let Ok(table) = theta_projection(
            &entry.artifact.model,
            &entry.artifact.schema,
            &attrs,
            DEFAULT_CELL_CAP,
        ) {
            let coords: Vec<usize> =
                resolved.evidence.iter().map(|&(_, code)| code as usize).collect();
            if table.get(&coords) <= 0.0 {
                return respond_error(
                    out,
                    ctx,
                    400,
                    "invalid-spec",
                    "evidence has probability zero under the model",
                );
            }
        }
    }
    let schema = sampler.schema();
    let projection = resolved.projection.as_deref();
    let seed_text = seed.to_string();
    // The resume token pins the generation actually serving this stream,
    // so resuming after a refit hot-swaps in keeps the original artifact.
    let cursor =
        Cursor { seed, row: resolved.start_row as u64, generation: Some(entry.generation) }
            .encode();
    let headers = [
        API_HEADER,
        ("X-PrivBayes-Seed", &seed_text),
        ("X-PrivBayes-Cursor", &cursor),
        (REQUEST_ID_HEADER, &ctx.id),
    ];
    if Instant::now() >= deadline {
        // Out of budget before the first byte: a clean 408 is still
        // possible (and more useful than a truncated stream).
        return respond_error(out, ctx, 408, "request-timeout", "handler deadline expired");
    }
    ctx.status.set(200);
    let metrics = ctx.metrics;
    metrics.active_streams.add(1);
    let _guard = StreamGuard(metrics);
    // Stage timings and throughput counters accumulate locally per chunk
    // and hit the shared atomics once per stream — the hot loop stays
    // identical in its output bytes and pays no per-chunk contention.
    let mut sample_time = Duration::ZERO;
    let mut write_time = Duration::ZERO;
    let mut rows_out: u64 = 0;
    let mut bytes_out: u64 = 0;
    let finalize = |sample: Duration, write: Duration, rows: u64, bytes: u64| {
        ctx.observe_stage("sample", sample);
        ctx.observe_stage("write", write);
        metrics.rows_streamed.add(rows);
        metrics.bytes_streamed.add(bytes);
    };
    let write_started = Instant::now();
    let mut chunked = ChunkedResponse::begin(
        out,
        200,
        resolved.format.content_type(),
        &headers,
        ctx.keep_alive.get(),
    )?;
    if resolved.start_row == 0 {
        let header = resolved.format.header(schema, projection);
        bytes_out += header.len() as u64;
        chunked.write(header.as_bytes())?;
    }
    write_time += write_started.elapsed();
    // Unconditioned, unprojected, from-the-start streams are pure functions
    // of `(model generation, seed, format, rows)` chunk by chunk, so they
    // route through the row-block cache: each chunk is either replayed from
    // cache or sampled, formatted, and published for the next request.
    // Everything else (evidence, projection, cursor resume) streams cold.
    let cacheable = shared.cache.enabled()
        && resolved.evidence.is_empty()
        && resolved.projection.is_none()
        && resolved.start_row == 0;
    if cacheable {
        // Chunks are absolute-aligned and per-chunk seeded, so a segment
        // stream started at any chunk boundary yields exactly the chunks
        // of the full stream — cache hits and misses interleave freely
        // without changing a byte.
        let mut segment = Some(stream);
        let mut next_row = 0usize;
        while next_row < rows {
            // Deadline at chunk boundaries: once the response has started
            // the only honest way to stop is to truncate the chunked
            // stream (no terminating chunk), which the client decodes as
            // an interrupted transfer and may resume via the cursor.
            if Instant::now() >= deadline {
                finalize(sample_time, write_time, rows_out, bytes_out);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "handler deadline expired mid-stream",
                ));
            }
            let chunk_rows = CHUNK_ROWS.min(rows - next_row);
            let key = BlockKey {
                generation: entry.generation,
                seed,
                format: resolved.format,
                chunk_index: next_row / CHUNK_ROWS,
                rows: chunk_rows,
            };
            if let Some(block) = shared.cache.get(&key) {
                // The sampler position is now stale; rebuild on next miss.
                segment = None;
                let write_started = Instant::now();
                rows_out += chunk_rows as u64;
                bytes_out += block.len() as u64;
                chunked.write(block.as_bytes())?;
                write_time += write_started.elapsed();
            } else {
                let sample_started = Instant::now();
                if segment.is_none() {
                    let seg = ResolvedSynth {
                        rows: resolved.rows,
                        seed: resolved.seed,
                        format: resolved.format,
                        projection: None,
                        evidence: Vec::new(),
                        start_row: next_row,
                        generation: resolved.generation,
                    };
                    let mut seg_rng = StdRng::seed_from_u64(seed);
                    match sampler.stream_spec(&seg.sample_spec(rows), &mut seg_rng) {
                        Ok(s) => segment = Some(s),
                        Err(e) => {
                            // The spec already validated once; mid-response
                            // there is no clean error channel left, so fail
                            // like a deadline overrun: truncate.
                            finalize(sample_time, write_time, rows_out, bytes_out);
                            return Err(std::io::Error::other(e.to_string()));
                        }
                    }
                }
                let Some(chunk) = segment.as_mut().expect("created above").next() else { break };
                sample_time += sample_started.elapsed();
                let write_started = Instant::now();
                let rendered = resolved.format.render(schema, projection, &chunk);
                rows_out += chunk.len() as u64;
                bytes_out += rendered.len() as u64;
                let block: Arc<str> = Arc::from(rendered);
                shared.cache.insert(key, Arc::clone(&block));
                chunked.write(block.as_bytes())?;
                write_time += write_started.elapsed();
            }
            next_row += chunk_rows;
        }
    } else {
        let mut stream = stream;
        loop {
            let sample_started = Instant::now();
            let Some(chunk) = stream.next() else { break };
            sample_time += sample_started.elapsed();
            // Same truncation contract as above: the deadline is checked
            // at chunk boundaries only.
            if Instant::now() >= deadline {
                finalize(sample_time, write_time, rows_out, bytes_out);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "handler deadline expired mid-stream",
                ));
            }
            let write_started = Instant::now();
            let rendered = resolved.format.render(schema, projection, &chunk);
            rows_out += chunk.len() as u64;
            bytes_out += rendered.len() as u64;
            chunked.write(rendered.as_bytes())?;
            write_time += write_started.elapsed();
        }
    }
    let write_started = Instant::now();
    let result = chunked.finish();
    write_time += write_started.elapsed();
    finalize(sample_time, write_time, rows_out, bytes_out);
    result
}

/// RAII guard: decrements the `privbayes_active_streams` gauge when a
/// streaming response ends — finished, timed out, or client hang-up alike.
struct StreamGuard<'m>(&'m ServerMetrics);

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.0.active_streams.sub(1);
    }
}

/// `POST /v1/models/{id}/query`: answer a [`MarginalQuery`] exactly from
/// the released θ via the deterministic θ-projection — no sampling, no
/// privacy cost (post-processing), bit-reproducible values.
///
/// [`MarginalQuery`]: privbayes_synth::MarginalQuery
fn query_v1<W: Write>(
    shared: &Shared,
    id: &str,
    req: &Request,
    out: &mut W,
    ctx: &RequestCtx<'_>,
) -> std::io::Result<()> {
    ctx.endpoint.set("query");
    ctx.stage("lookup");
    let Some(entry) = shared.registry.get(id) else {
        return respond_error(out, ctx, 404, "model-not-found", id);
    };
    let json = match parse_json_body(&req.body) {
        Ok(json) => json,
        Err(e) => return respond_error(out, ctx, 400, "bad-request", &e.to_string()),
    };
    let schema = &entry.artifact.schema;
    let attrs = match MarginalQuery::from_json(&json).and_then(|q| q.resolve(schema)) {
        Ok(attrs) => attrs,
        Err(e) => return respond_invalid_spec(out, ctx, &e),
    };
    let table = match theta_projection(&entry.artifact.model, schema, &attrs, DEFAULT_CELL_CAP) {
        Ok(table) => table,
        Err(e) => return respond_error(out, ctx, 400, "invalid-spec", &e.to_string()),
    };
    ctx.stage("sample");
    let names: Vec<Json> =
        attrs.iter().map(|&a| Json::String(schema.attribute(a).name().to_string())).collect();
    let dims: Vec<Json> = table.dims().iter().map(|&d| Json::from_usize(d)).collect();
    let values: Vec<Json> = table.values().iter().map(|&v| Json::Number(v)).collect();
    let body = Json::object(vec![
        ("model", Json::String(entry.id.clone())),
        ("attrs", Json::Array(names)),
        ("dims", Json::Array(dims)),
        ("values", Json::Array(values)),
    ]);
    respond_json(out, ctx, 200, &body)
}

/// `GET /v1/models/{id}/generations`: the retained generation chain,
/// newest first — what a pinned cursor can still resume against.
fn generations_v1<W: Write>(
    shared: &Shared,
    id: &str,
    out: &mut W,
    ctx: &RequestCtx<'_>,
) -> std::io::Result<()> {
    ctx.endpoint.set("generations");
    ctx.stage("lookup");
    match shared.registry.generations(id) {
        Some(entries) => {
            let generations: Vec<Json> = entries.iter().map(|e| model_json(e)).collect();
            respond_json(
                out,
                ctx,
                200,
                &Json::object(vec![
                    ("id", Json::String(id.to_string())),
                    ("retained", Json::from_usize(generations.len())),
                    ("generations", Json::Array(generations)),
                ]),
            )
        }
        None => respond_error(out, ctx, 404, "model-not-found", id),
    }
}

/// `POST /v1/tenants/{t}/ingest`: append a schema-validated batch to the
/// tenant's journaled dataset. The first batch must carry `schema` and the
/// refit target (`model_id`, `epsilon`, optional `method`/`seed`); later
/// batches may omit both. Rows ride in `csv` (the `POST /fit` layout) or
/// `jsonl` (one object or array per line). Appending spends no budget —
/// ε is debited by the background refit the appended rows trigger.
fn ingest_v1<W: Write>(
    shared: &Shared,
    tenant: &str,
    req: &Request,
    out: &mut W,
    ctx: &RequestCtx<'_>,
) -> std::io::Result<()> {
    ctx.endpoint.set("ingest");
    let json = match parse_json_body(&req.body) {
        Ok(json) => json,
        Err(e) => return respond_error(out, ctx, 400, "bad-request", &e.to_string()),
    };
    let (spec, format, text) = match parse_ingest_body(&json) {
        Ok(parsed) => parsed,
        Err(e) => return respond_error(out, ctx, 400, "bad-request", &e.to_string()),
    };
    let schema = match json.get("schema") {
        Some(v) => match schema_from_json(v) {
            Ok(schema) => schema,
            Err(e) => return respond_error(out, ctx, 400, "bad-request", &format!("schema: {e}")),
        },
        None => match shared.store.schema(tenant) {
            Some(schema) => schema,
            None => {
                return respond_error(
                    out,
                    ctx,
                    400,
                    "bad-request",
                    &format!("first ingest batch for tenant `{tenant}` must carry `schema`"),
                )
            }
        },
    };
    let batch = match parse_batch(&schema, format, &text) {
        Ok(batch) => batch,
        Err(e) => return respond_error(out, ctx, 400, "bad-batch", &e.to_string()),
    };
    ctx.stage("parse");
    match shared.store.append(tenant, &batch, spec.as_ref()) {
        Ok(receipt) => {
            shared.metrics.record_ingest(tenant, receipt.batch_rows);
            respond_json(
                out,
                ctx,
                200,
                &Json::object(vec![
                    ("tenant", Json::String(tenant.to_string())),
                    ("batch_rows", Json::from_usize(receipt.batch_rows as usize)),
                    ("total_rows", Json::from_usize(receipt.total_rows as usize)),
                    ("pending_rows", Json::from_usize(receipt.pending_rows as usize)),
                ]),
            )
        }
        Err(e @ ServerError::Dataset(_)) => {
            respond_error(out, ctx, 400, "ingest-rejected", &e.to_string())
        }
        Err(e) => respond_error(out, ctx, 400, "bad-request", &e.to_string()),
    }
}

/// Pulls the optional refit target and the batch rows out of an ingest
/// body. A body naming `model_id` must also carry a valid `epsilon`;
/// `method` defaults to `privbayes` and `seed` to 0 (refit seeds are fixed
/// per tenant so every generation is a pure function of the data).
fn parse_ingest_body(json: &Json) -> Result<(Option<RefitSpec>, BatchFormat, String), ServerError> {
    let field = |name: &str| ServerError::Protocol(format!("missing or mistyped `{name}`"));
    let spec = match json.get("model_id") {
        None => None,
        Some(v) => {
            let model_id = v.as_str().ok_or_else(|| field("model_id"))?.to_string();
            let method = match json.get("method") {
                None => Method::PrivBayes,
                Some(v) => {
                    let name = v.as_str().ok_or_else(|| field("method"))?;
                    Method::parse(name).ok_or_else(|| {
                        ServerError::Protocol(format!(
                            "unknown method `{name}`; valid methods: {}",
                            Method::names()
                        ))
                    })?
                }
            };
            let epsilon =
                json.get("epsilon").and_then(Json::as_f64).ok_or_else(|| field("epsilon"))?;
            let seed = match json.get("seed") {
                None => 0,
                Some(v) => v.as_usize().ok_or_else(|| field("seed"))? as u64,
            };
            Some(RefitSpec { model_id, method, epsilon, seed })
        }
    };
    let (format, text) = if let Some(v) = json.get("csv") {
        (BatchFormat::Csv, v.as_str().ok_or_else(|| field("csv"))?.to_string())
    } else if let Some(v) = json.get("jsonl") {
        (BatchFormat::Jsonl, v.as_str().ok_or_else(|| field("jsonl"))?.to_string())
    } else {
        return Err(ServerError::Protocol("batch must carry `csv` or `jsonl` rows".into()));
    };
    Ok((spec, format, text))
}

/// One background refit: debit the tenant exactly as `POST /fit` would,
/// fit over the tenant's live engine, hot-swap the model's registry
/// generation, and refund the debit on any failure — a failed refit never
/// leaks budget, a successful one is charged exactly once. The fit holds
/// the tenant's dataset lock, so same-tenant appends queue behind it and
/// each generation covers an exact point-in-time prefix of the data.
fn run_refit(shared: &Shared, job: &RefitJob) {
    let spec = &job.spec;
    let spends = spec.method.spends_budget();
    if spends {
        if let Err(e) = shared.ledger.charge(&job.tenant, spec.epsilon) {
            let status = match e {
                LedgerError::Exhausted { .. } => "exhausted",
                _ => "charge-failed",
            };
            shared.metrics.record_refit(status);
            shared.store.refit_finished(&job.tenant, None);
            return;
        }
    } else if shared.ledger.budget(&job.tenant).is_none() {
        shared.metrics.record_refit("charge-failed");
        shared.store.refit_finished(&job.tenant, None);
        return;
    }
    let settings = FitSettings {
        threads: shared.config.fit_threads,
        comment: format!("refit via privbayes-server ingest for tenant {}", job.tenant),
        ..FitSettings::default()
    };
    let fit_started = Instant::now();
    let outcome = shared.store.with_engine(&job.tenant, |engine| {
        let before = engine.stats();
        let fitted =
            fit_method_with_engine(spec.method, engine, spec.epsilon, spec.seed, &settings);
        (before, fitted)
    });
    shared.metrics.fit_seconds.observe(fit_started.elapsed());
    let loaded = match outcome {
        Some((before, Ok(fitted))) => {
            // The tenant engine is long-lived; record only this fit's
            // counter increments, not the cumulative engine totals.
            let after = fitted.stats;
            shared.metrics.record_engine(&EngineStats {
                hits: after.hits.saturating_sub(before.hits),
                projections: after.projections.saturating_sub(before.projections),
                scans: after.scans.saturating_sub(before.scans),
                bytes_materialized: after
                    .bytes_materialized
                    .saturating_sub(before.bytes_materialized),
                ..after
            });
            let compile_started = Instant::now();
            let loaded = shared.registry.load(&spec.model_id, fitted.artifact);
            shared.metrics.alias_build_seconds.observe(compile_started.elapsed());
            loaded.map(|_| ())
        }
        Some((_, Err(e))) => Err(ServerError::Model(e.to_string())),
        None => Err(ServerError::Dataset(format!("tenant `{}` vanished mid-refit", job.tenant))),
    };
    match loaded {
        Ok(()) => {
            if let Some(entry) = shared.registry.get(&spec.model_id) {
                shared.metrics.set_model_generation(&spec.model_id, entry.generation);
            }
            shared.metrics.record_refit("ok");
            shared.store.refit_finished(&job.tenant, Some(job.total_rows));
        }
        Err(_) => {
            if spends {
                shared.ledger.refund(&job.tenant, spec.epsilon);
            }
            shared.metrics.record_refit("failed");
            shared.store.refit_finished(&job.tenant, None);
        }
    }
}

/// Parses a request body as UTF-8 JSON.
fn parse_json_body(body: &[u8]) -> Result<Json, ServerError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServerError::Protocol("request body is not UTF-8".into()))?;
    Json::parse(text).map_err(|e| ServerError::Protocol(e.to_string()))
}

/// Answers a spec-validation failure: `400` with the `invalid-spec` error
/// code and the typed error's message.
fn respond_invalid_spec<W: Write>(
    out: &mut W,
    ctx: &RequestCtx<'_>,
    e: &SpecError,
) -> std::io::Result<()> {
    respond_error(out, ctx, 400, "invalid-spec", &e.to_string())
}

/// `POST /fit`: debit the tenant, fit on the uploaded table with the
/// requested method, register the resulting model. The charge happens first
/// (atomically), and is refunded if the input turns out to be invalid — so a
/// rejected or failed request never leaks budget, and an over-budget request
/// never touches the data. Methods that spend no budget (`uniform`) skip the
/// charge entirely, but the tenant must still be registered.
fn fit<W: Write>(
    shared: &Shared,
    req: &Request,
    out: &mut W,
    deadline: Instant,
    ctx: &RequestCtx<'_>,
) -> std::io::Result<()> {
    ctx.endpoint.set("fit");
    let parsed = match parse_fit_body(&req.body) {
        Ok(parsed) => parsed,
        Err(e) => return respond_error(out, ctx, 400, "bad-request", &e.to_string()),
    };
    ctx.stage("parse");
    // Checked before the charge: a fit that cannot start within its budget
    // must not touch the ledger at all.
    if Instant::now() >= deadline {
        return respond_error(out, ctx, 408, "request-timeout", "handler deadline expired");
    }
    let spends = parsed.method.spends_budget();
    if spends {
        let charged = shared.ledger.charge(&parsed.tenant, parsed.epsilon);
        ctx.stage("ledger");
        match charged {
            Ok(_) => {}
            Err(e @ LedgerError::Exhausted { .. }) => {
                let message = e.to_string();
                let LedgerError::Exhausted { tenant, requested, remaining } = e else {
                    return respond_error(out, ctx, 500, "internal", &message);
                };
                let body = Json::object(vec![
                    ("error", Json::String("budget-exhausted".into())),
                    ("message", Json::String(message)),
                    ("tenant", Json::String(tenant)),
                    ("requested", Json::Number(requested)),
                    ("remaining", Json::Number(remaining)),
                ]);
                return respond_json(out, ctx, 402, &body);
            }
            Err(LedgerError::UnknownTenant(t)) => {
                return respond_error(out, ctx, 404, "tenant-not-found", &t);
            }
            Err(LedgerError::InvalidAmount(msg)) => {
                return respond_error(out, ctx, 400, "bad-request", &msg);
            }
            Err(e @ LedgerError::Persistence(_)) => {
                return respond_error(out, ctx, 500, "ledger-error", &e.to_string());
            }
        }
    } else if shared.ledger.budget(&parsed.tenant).is_none() {
        ctx.stage("ledger");
        return respond_error(out, ctx, 404, "tenant-not-found", &parsed.tenant);
    } else {
        ctx.stage("ledger");
    }
    // Charged: any failure from here on refunds before reporting.
    let fit_started = Instant::now();
    let outcome = run_fit(shared, &parsed);
    shared.metrics.fit_seconds.observe(fit_started.elapsed());
    match outcome {
        Ok(entry) => {
            let remaining = shared.ledger.budget(&parsed.tenant).map_or(0.0, |row| row.remaining());
            let mut body = model_json(&entry);
            if let Json::Object(fields) = &mut body {
                fields.push(("tenant".into(), Json::String(parsed.tenant.clone())));
                fields.push(("remaining".into(), Json::Number(remaining)));
            }
            respond_json(out, ctx, 201, &body)
        }
        Err(e) => {
            if spends {
                shared.ledger.refund(&parsed.tenant, parsed.epsilon);
            }
            respond_error(out, ctx, 400, "fit-failed", &e.to_string())
        }
    }
}

/// A parsed `POST /fit` body.
struct FitRequest {
    tenant: String,
    model_id: String,
    method: Method,
    epsilon: f64,
    beta: Option<f64>,
    theta: Option<f64>,
    alpha: Option<usize>,
    iterations: Option<usize>,
    k: Option<usize>,
    seed: Option<u64>,
    schema: Json,
    csv: String,
}

fn parse_fit_body(body: &[u8]) -> Result<FitRequest, ServerError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServerError::Protocol("fit body is not UTF-8".into()))?;
    let json = Json::parse(text).map_err(|e| ServerError::Protocol(e.to_string()))?;
    let field = |name: &str| ServerError::Protocol(format!("missing or mistyped `{name}`"));
    let str_field = |name: &str| -> Result<String, ServerError> {
        Ok(json.get(name).and_then(Json::as_str).ok_or_else(|| field(name))?.to_string())
    };
    let opt_number = |name: &str| -> Result<Option<f64>, ServerError> {
        match json.get(name) {
            None => Ok(None),
            Some(v) => Ok(Some(v.as_f64().ok_or_else(|| field(name))?)),
        }
    };
    let opt_usize = |name: &str| -> Result<Option<usize>, ServerError> {
        match json.get(name) {
            None => Ok(None),
            Some(v) => Ok(Some(v.as_usize().ok_or_else(|| field(name))?)),
        }
    };
    // Validate the id *here*, before the caller charges the ledger and
    // runs the fit — a request that can only fail at registration must
    // never spend CPU on the DP mechanism.
    let model_id = str_field("model_id")?;
    crate::registry::validate_id(&model_id)?;
    let method = match json.get("method") {
        None => Method::PrivBayes,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| field("method"))?;
            Method::parse(name).ok_or_else(|| {
                ServerError::Protocol(format!(
                    "unknown method `{name}`; valid methods: {}",
                    Method::names()
                ))
            })?
        }
    };
    Ok(FitRequest {
        tenant: str_field("tenant")?,
        model_id,
        method,
        epsilon: json.get("epsilon").and_then(Json::as_f64).ok_or_else(|| field("epsilon"))?,
        beta: opt_number("beta")?,
        theta: opt_number("theta")?,
        alpha: opt_usize("alpha")?,
        iterations: opt_usize("iterations")?,
        k: opt_usize("k")?,
        seed: match json.get("seed") {
            None => None,
            Some(v) => Some(v.as_usize().ok_or_else(|| field("seed"))? as u64),
        },
        schema: json.get("schema").ok_or_else(|| field("schema"))?.clone(),
        csv: str_field("csv")?,
    })
}

/// Fits the model with the requested method and registers it; every failure
/// is reported (and the caller refunds).
fn run_fit(shared: &Shared, fit: &FitRequest) -> Result<Arc<ModelEntry>, ServerError> {
    let schema = schema_from_json(&fit.schema).map_err(|e| ServerError::Model(e.to_string()))?;
    let data = read_csv(&schema, fit.csv.as_bytes())
        .map_err(|e| ServerError::Model(format!("csv: {e}")))?;
    let defaults = FitSettings::default();
    let settings = FitSettings {
        beta: fit.beta.unwrap_or(defaults.beta),
        theta: fit.theta.unwrap_or(defaults.theta),
        alpha: fit.alpha.unwrap_or(defaults.alpha),
        fixed_k: fit.k.unwrap_or(defaults.fixed_k),
        mwem: privbayes_synth::MwemOptions {
            iterations: fit.iterations.unwrap_or(defaults.mwem.iterations),
            ..defaults.mwem
        },
        threads: shared.config.fit_threads,
        comment: format!("fit via privbayes-server for tenant {}", fit.tenant),
        ..defaults
    };
    let seed = match fit.seed {
        Some(seed) => seed,
        None => StdRng::try_from_rng(&mut rand::rngs::SysRng)
            .map_err(|_| ServerError::Io("entropy source unavailable".into()))?
            .random::<u64>(),
    };
    let fitted = fit_method(fit.method, &data, fit.epsilon, seed, &settings)
        .map_err(|e| ServerError::Model(e.to_string()))?;
    // The fit-phase engine counters (cache hits, scans, bytes materialised)
    // feed the `privbayes_engine_*` families; the registry load is the
    // alias-compile step and is timed as such.
    shared.metrics.record_engine(&fitted.stats);
    let compile_started = Instant::now();
    let loaded = shared.registry.load(&fit.model_id, fitted.artifact);
    shared.metrics.alias_build_seconds.observe(compile_started.elapsed());
    loaded?;
    let entry = shared.registry.get(&fit.model_id).expect("loaded above");
    shared.metrics.set_model_generation(&fit.model_id, entry.generation);
    Ok(entry)
}

/// A model's public metadata (no conditionals — those are the artifact).
fn model_json(entry: &ModelEntry) -> Json {
    let meta = &entry.artifact.metadata;
    Json::object(vec![
        ("id", Json::String(entry.id.clone())),
        ("generation", Json::from_usize(entry.generation as usize)),
        ("method", Json::String(meta.method.clone())),
        ("attributes", Json::from_usize(entry.artifact.schema.len())),
        ("epsilon", Json::Number(meta.epsilon)),
        ("source_rows", Json::from_usize(meta.source_rows)),
        ("score", Json::String(meta.score.clone())),
        ("encoding", Json::String(meta.encoding.clone())),
    ])
}

fn tenant_json(row: &TenantBudget) -> Json {
    Json::object(vec![
        ("tenant", Json::String(row.tenant.clone())),
        ("total", Json::Number(row.total)),
        ("spent", Json::Number(row.spent)),
        ("remaining", Json::Number(row.remaining())),
    ])
}

/// Writes a complete JSON response. Every response carries the
/// [`API_HEADER`] and the request id (errors included), and records its
/// status on the [`RequestCtx`] so the access log and counters agree with
/// what hit the wire.
fn respond_json<W: Write>(
    out: &mut W,
    ctx: &RequestCtx<'_>,
    code: u16,
    body: &Json,
) -> std::io::Result<()> {
    let text = body.to_string_compact().expect("response bodies are finite");
    ctx.status.set(code);
    ctx.stage("write");
    write_response(
        out,
        code,
        "application/json",
        &[API_HEADER, (REQUEST_ID_HEADER, &ctx.id)],
        ctx.keep_alive.get(),
        text.as_bytes(),
    )
}

/// Writes a structured error: `{"error": CODE, "message": …}`.
fn respond_error<W: Write>(
    out: &mut W,
    ctx: &RequestCtx<'_>,
    code: u16,
    error: &str,
    message: &str,
) -> std::io::Result<()> {
    let body = Json::object(vec![
        ("error", Json::String(error.to_string())),
        ("message", Json::String(message.to_string())),
    ]);
    respond_json(out, ctx, code, &body)
}
