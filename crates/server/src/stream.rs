//! Row rendering for streamed synthesis responses.
//!
//! The synthesis endpoints deliver rows in the sampler's 1024-row chunk
//! scheme ([`privbayes::CHUNK_ROWS`]); each chunk is rendered to text and
//! written as one HTTP chunk. The renderer itself — [`RowFormat`] — lives in
//! `privbayes_synth::spec` alongside the request specs (this module
//! re-exports it): the format is part of the typed request surface, shared
//! by the server, the bundled client, and the CLI.
//!
//! CSV output is byte-compatible with `privbayes_data::csv::write_csv`
//! restricted to the projected columns — the header line plus one
//! label-per-cell line per row — so a streamed response concatenates to
//! exactly the bytes the batch path would produce for the same seed and
//! projection. JSONL output (`application/x-ndjson`) emits one compact JSON
//! object per row, escaped through the same `Json` writer as the release
//! artifacts.

pub use privbayes_synth::RowFormat;

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Dataset, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::binary("smoker"),
            Attribute::categorical_labelled("region", ["north", "south"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn csv_matches_write_csv_bytes() {
        let schema = schema();
        let rows = vec![vec![0, 1], vec![1, 0]];
        let data = Dataset::from_rows(schema.clone(), &rows).unwrap();
        let mut expected = Vec::new();
        privbayes_data::csv::write_csv(&data, &mut expected).unwrap();
        let streamed = format!(
            "{}{}",
            RowFormat::Csv.header(&schema, None),
            RowFormat::Csv.render(&schema, None, &rows)
        );
        assert_eq!(streamed.as_bytes(), &expected[..]);
    }

    #[test]
    fn jsonl_renders_one_object_per_row() {
        let schema = schema();
        let out = RowFormat::Jsonl.render(&schema, None, &[vec![1, 0]]);
        // Unlabelled domains print their default `v{code}` labels, exactly
        // as the CSV writer does.
        assert_eq!(out, "{\"smoker\":\"v1\",\"region\":\"north\"}\n");
        assert_eq!(RowFormat::Jsonl.header(&schema, None), "");
    }

    #[test]
    fn projection_restricts_and_reorders_columns() {
        let schema = schema();
        assert_eq!(RowFormat::Csv.header(&schema, Some(&[1, 0])), "region,smoker\n");
        let out = RowFormat::Csv.render(&schema, Some(&[1, 0]), &[vec![0, 1]]);
        assert_eq!(out, "north,v1\n");
    }
}
