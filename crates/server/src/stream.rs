//! Row rendering for streamed synthesis responses.
//!
//! The synthesis endpoint delivers rows in the sampler's 1024-row chunk
//! scheme ([`privbayes::CHUNK_ROWS`]); each chunk is rendered to text here
//! and written as one HTTP chunk. CSV output is byte-compatible with
//! `privbayes_data::csv::write_csv` — the header line plus one
//! label-per-cell line per row — so a streamed response concatenates to
//! exactly the bytes the batch path would produce for the same seed. JSONL
//! output emits one compact JSON object per row (attribute name → label),
//! escaped through the same `Json` writer as the release artifacts.

use privbayes_data::Schema;
use privbayes_model::Json;

use crate::error::ServerError;

/// Wire format of a streamed synthesis response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowFormat {
    /// `text/csv`: header line, then one comma-joined label row per tuple.
    Csv,
    /// `application/jsonl`: one `{"attr": "label", …}` object per line.
    Jsonl,
}

impl RowFormat {
    /// Parses the `format` query parameter (`None` defaults to CSV).
    ///
    /// # Errors
    /// Returns [`ServerError::Protocol`] naming the unknown format.
    pub fn parse(raw: Option<&str>) -> Result<Self, ServerError> {
        match raw {
            None | Some("csv") => Ok(RowFormat::Csv),
            Some("jsonl") => Ok(RowFormat::Jsonl),
            Some(other) => {
                Err(ServerError::Protocol(format!("unknown format `{other}` (csv|jsonl)")))
            }
        }
    }

    /// The response `Content-Type`.
    #[must_use]
    pub fn content_type(self) -> &'static str {
        match self {
            RowFormat::Csv => "text/csv",
            RowFormat::Jsonl => "application/jsonl",
        }
    }

    /// The bytes that precede the first row (the CSV header; nothing for
    /// JSONL).
    #[must_use]
    pub fn header(self, schema: &Schema) -> String {
        match self {
            RowFormat::Csv => {
                let names: Vec<&str> = schema.attributes().iter().map(|a| a.name()).collect();
                format!("{}\n", names.join(","))
            }
            RowFormat::Jsonl => String::new(),
        }
    }

    /// Renders one chunk of row-major tuples.
    #[must_use]
    pub fn render(self, schema: &Schema, rows: &[Vec<u32>]) -> String {
        let mut out = String::new();
        for tuple in rows {
            match self {
                RowFormat::Csv => {
                    for (attr, &code) in tuple.iter().enumerate() {
                        if attr > 0 {
                            out.push(',');
                        }
                        out.push_str(&schema.attribute(attr).domain().label(code));
                    }
                }
                RowFormat::Jsonl => {
                    let fields: Vec<(String, Json)> = tuple
                        .iter()
                        .enumerate()
                        .map(|(attr, &code)| {
                            let a = schema.attribute(attr);
                            (a.name().to_string(), Json::String(a.domain().label(code)))
                        })
                        .collect();
                    out.push_str(
                        &Json::Object(fields).to_string_compact().expect("labels are finite"),
                    );
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Dataset};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::binary("smoker"),
            Attribute::categorical_labelled("region", ["north", "south"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn format_parsing() {
        assert_eq!(RowFormat::parse(None).unwrap(), RowFormat::Csv);
        assert_eq!(RowFormat::parse(Some("csv")).unwrap(), RowFormat::Csv);
        assert_eq!(RowFormat::parse(Some("jsonl")).unwrap(), RowFormat::Jsonl);
        assert!(RowFormat::parse(Some("xml")).is_err());
    }

    #[test]
    fn csv_matches_write_csv_bytes() {
        let schema = schema();
        let rows = vec![vec![0, 1], vec![1, 0]];
        let data = Dataset::from_rows(schema.clone(), &rows).unwrap();
        let mut expected = Vec::new();
        privbayes_data::csv::write_csv(&data, &mut expected).unwrap();
        let streamed =
            format!("{}{}", RowFormat::Csv.header(&schema), RowFormat::Csv.render(&schema, &rows));
        assert_eq!(streamed.as_bytes(), &expected[..]);
    }

    #[test]
    fn jsonl_renders_one_object_per_row() {
        let schema = schema();
        let out = RowFormat::Jsonl.render(&schema, &[vec![1, 0]]);
        // Unlabelled domains print their default `v{code}` labels, exactly
        // as the CSV writer does.
        assert_eq!(out, "{\"smoker\":\"v1\",\"region\":\"north\"}\n");
        assert_eq!(RowFormat::Jsonl.header(&schema), "");
    }
}
