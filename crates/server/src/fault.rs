//! Deterministic fault injection for the serving tier.
//!
//! A [`FaultPlan`] is a step-indexed schedule of faults: every injection
//! *site* (ledger persistence, connection reads, connection writes, request
//! handlers) keeps a monotonically increasing operation counter, and a rule
//! fires when its site's counter reaches the rule's step. Plans are either
//! built explicitly ([`FaultPlan::inject`]) for kill-at-every-step style
//! tests, or sampled from a seed ([`FaultPlan::seeded`]) for randomized
//! chaos storms that are nevertheless reproducible run to run.
//!
//! The whole module — and every hook that consults it in `ledger`,
//! `server`, and `http` — only exists under
//! `#[cfg(any(test, feature = "fault-injection"))]`. A release build
//! (`cargo build --release`) contains none of it: the hooks are not
//! "cheap", they are *absent*.
//!
//! Faults model three distinct failure families:
//!
//! * **Process death** during ledger persistence ([`Fault::CrashAt`],
//!   [`Fault::ShortWrite`]): the persist sequence stops at the named step,
//!   leaving the on-disk state exactly as a `kill -9` at that instant
//!   would. Tests then "restart" by re-opening the ledger from the path.
//! * **Network pathology** on connection IO ([`Fault::Reset`],
//!   [`Fault::ShortWrite`], [`Fault::DelayMs`]): the wrapped stream
//!   ([`FaultStream`]) errors, truncates, or stalls — the server must
//!   degrade per-connection, never per-worker.
//! * **Code defects** in handlers ([`Fault::Panic`]): a forced panic inside
//!   request handling — the worker must isolate it, answer a structured
//!   500 when possible, and keep serving.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// One [`crate::BudgetLedger`] persistence attempt (one counter tick
    /// per persist call, faults name a [`LedgerStep`] inside it).
    LedgerPersist,
    /// One `read` call on a connection's socket.
    ConnRead,
    /// One `write` call on a connection's socket.
    ConnWrite,
    /// One request dispatched to a handler.
    Handler,
    /// One per-tenant dataset-journal persistence attempt (same step
    /// anatomy as [`FaultSite::LedgerPersist`]: faults name a
    /// [`LedgerStep`] inside the write-temp→fsync→rename sequence).
    DatasetPersist,
}

const SITES: [FaultSite; 5] = [
    FaultSite::LedgerPersist,
    FaultSite::ConnRead,
    FaultSite::ConnWrite,
    FaultSite::Handler,
    FaultSite::DatasetPersist,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::LedgerPersist => 0,
            FaultSite::ConnRead => 1,
            FaultSite::ConnWrite => 2,
            FaultSite::Handler => 3,
            FaultSite::DatasetPersist => 4,
        }
    }
}

/// A step inside the ledger persist sequence. [`Fault::CrashAt`] aborts the
/// sequence *immediately before* executing the named step, so the five
/// possible crash points are: before anything is written (`WriteTmp`),
/// after the temp file is written but not yet synced (`SyncTmp`), after the
/// sync but before the rename (`Rename`), and after the rename but before
/// the parent directory entry is made durable (`SyncDir`). `ShortWrite`
/// covers the fifth: death in the middle of writing the temp file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerStep {
    /// Writing the sibling temp file.
    WriteTmp,
    /// `fsync` of the temp file.
    SyncTmp,
    /// The atomic rename over the target.
    Rename,
    /// `fsync` of the parent directory (makes the rename durable).
    SyncDir,
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Report a clean I/O error without touching any state (exercises
    /// rollback paths).
    Fail,
    /// Write roughly half the bytes, then die. On the ledger this tears the
    /// temp file; on a connection it truncates the response mid-stream.
    ShortWrite,
    /// Ledger only: abort the persist sequence immediately before `step`,
    /// as a `kill -9` at that instant would.
    CrashAt(LedgerStep),
    /// Connection IO only: stall this operation for the given milliseconds
    /// before letting it proceed (slow peer / slow disk).
    DelayMs(u64),
    /// Connection IO only: fail with `ConnectionReset`; every later
    /// operation on the same stream fails too (the peer is gone).
    Reset,
    /// Handler only: panic with a recognizable payload.
    Panic,
}

/// One scheduled fault: fire at the `step`-th operation (0-based) on
/// `site`.
#[derive(Debug, Clone, Copy)]
struct Rule {
    site: FaultSite,
    step: u64,
    fault: Fault,
}

/// A seeded, step-indexed schedule of faults (see the module docs). Cheap
/// to share: wrap in an [`Arc`] and hand clones to the server, the ledger,
/// and the test driver.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
    counters: [AtomicU64; 5],
    fired: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (injects nothing until rules are added).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `fault` for the `step`-th operation (0-based) at `site`.
    #[must_use]
    pub fn inject(mut self, site: FaultSite, step: u64, fault: Fault) -> Self {
        self.rules.push(Rule { site, step, fault });
        self
    }

    /// A reproducible random schedule: for each site listed in `faults`,
    /// each of the first `horizon` steps independently receives the
    /// site's fault with probability `percent`/100, driven by a SplitMix64
    /// stream over `seed` alone — the same seed always yields the same
    /// storm.
    #[must_use]
    pub fn seeded(seed: u64, horizon: u64, percent: u64, faults: &[(FaultSite, Fault)]) -> Self {
        let mut plan = Self::new();
        let mut state = seed;
        for &(site, fault) in faults {
            for step in 0..horizon {
                if splitmix64(&mut state) % 100 < percent {
                    plan = plan.inject(site, step, fault);
                }
            }
        }
        plan
    }

    /// Advances `site`'s operation counter and returns the fault scheduled
    /// for this step, if any. Thread-safe; every call consumes exactly one
    /// step.
    pub fn take(&self, site: FaultSite) -> Option<Fault> {
        let step = self.counters[site.index()].fetch_add(1, Ordering::SeqCst);
        let hit = self.rules.iter().find(|r| r.site == site && r.step == step).map(|r| r.fault);
        if hit.is_some() {
            self.fired.fetch_add(1, Ordering::SeqCst);
        }
        hit
    }

    /// How many faults have actually fired so far (a storm test can assert
    /// it exercised something).
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// The number of operations seen so far at `site`.
    #[must_use]
    pub fn steps_seen(&self, site: FaultSite) -> u64 {
        self.counters[site.index()].load(Ordering::SeqCst)
    }

    /// Total number of scheduled rules across all sites.
    #[must_use]
    pub fn scheduled(&self) -> usize {
        self.rules.len()
    }

    /// The sites this plan can inject at (fixed; exposed for diagnostics).
    #[must_use]
    pub fn sites() -> [FaultSite; 5] {
        SITES
    }
}

/// The SplitMix64 step — a tiny, dependency-free PRNG good enough for
/// schedule sampling and retry jitter (not for anything DP-related).
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A connection stream with faults injected per the plan: each `read` /
/// `write` call consumes one [`FaultSite::ConnRead`] /
/// [`FaultSite::ConnWrite`] step. After a [`Fault::Reset`] or
/// [`Fault::ShortWrite`] the stream is dead: every later operation fails,
/// as it would on a torn TCP connection.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    plan: Option<Arc<FaultPlan>>,
    dead: bool,
}

impl<S> FaultStream<S> {
    /// Wraps `inner`; a `None` plan passes everything through untouched.
    pub fn new(inner: S, plan: Option<Arc<FaultPlan>>) -> Self {
        Self { inner, plan, dead: false }
    }

    fn reset_err() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::ConnectionReset, "injected connection reset")
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(Self::reset_err());
        }
        match self.plan.as_ref().and_then(|p| p.take(FaultSite::ConnRead)) {
            Some(Fault::DelayMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(Fault::Reset | Fault::ShortWrite) => {
                self.dead = true;
                return Err(Self::reset_err());
            }
            Some(Fault::Fail) => {
                return Err(std::io::Error::other("injected read failure"));
            }
            _ => {}
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(Self::reset_err());
        }
        match self.plan.as_ref().and_then(|p| p.take(FaultSite::ConnWrite)) {
            Some(Fault::DelayMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(Fault::Reset) => {
                self.dead = true;
                return Err(Self::reset_err());
            }
            Some(Fault::ShortWrite) => {
                // Half the bytes reach the peer, then the connection dies —
                // the classic truncated-response shape.
                let half = (buf.len() / 2).max(1).min(buf.len());
                let _ = self.inner.write(&buf[..half]);
                let _ = self.inner.flush();
                self.dead = true;
                return Err(Self::reset_err());
            }
            Some(Fault::Fail) => {
                return Err(std::io::Error::other("injected write failure"));
            }
            _ => {}
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(Self::reset_err());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_are_consumed_in_order() {
        let plan = FaultPlan::new().inject(FaultSite::Handler, 1, Fault::Panic).inject(
            FaultSite::ConnWrite,
            0,
            Fault::Reset,
        );
        assert_eq!(plan.take(FaultSite::Handler), None, "step 0 is clean");
        assert_eq!(plan.take(FaultSite::Handler), Some(Fault::Panic), "step 1 fires");
        assert_eq!(plan.take(FaultSite::Handler), None, "step 2 is clean again");
        assert_eq!(plan.take(FaultSite::ConnWrite), Some(Fault::Reset));
        assert_eq!(plan.fired(), 2);
        assert_eq!(plan.steps_seen(FaultSite::Handler), 3);
        assert_eq!(plan.steps_seen(FaultSite::LedgerPersist), 0, "sites are independent");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let sites = [(FaultSite::Handler, Fault::Panic), (FaultSite::ConnWrite, Fault::Reset)];
        let a = FaultPlan::seeded(7, 100, 30, &sites);
        let b = FaultPlan::seeded(7, 100, 30, &sites);
        let c = FaultPlan::seeded(8, 100, 30, &sites);
        let fires = |plan: &FaultPlan| -> Vec<(usize, bool)> {
            (0..100)
                .map(|_| plan.take(FaultSite::Handler).is_some())
                .enumerate()
                .filter(|&(_, hit)| hit)
                .collect()
        };
        let (fa, fb, fc) = (fires(&a), fires(&b), fires(&c));
        assert_eq!(fa, fb, "same seed, same storm");
        assert_ne!(fa, fc, "different seed, different storm");
        assert!(!fa.is_empty() && fa.len() < 100, "30% density fires some but not all");
    }

    #[test]
    fn fault_stream_injects_and_then_dies() {
        let plan =
            Arc::new(FaultPlan::new().inject(FaultSite::ConnWrite, 1, Fault::ShortWrite).inject(
                FaultSite::ConnRead,
                0,
                Fault::Reset,
            ));
        let mut out = Vec::new();
        {
            let mut stream = FaultStream::new(&mut out, Some(Arc::clone(&plan)));
            assert_eq!(stream.write(b"abcd").unwrap(), 4, "step 0 passes through");
            let err = stream.write(b"wxyz").unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
            assert!(stream.write(b"after").is_err(), "dead streams stay dead");
        }
        assert_eq!(&out, b"abcdwx", "short write delivered exactly half before dying");

        let mut reader = FaultStream::new(&b"data"[..], Some(plan));
        let mut buf = [0u8; 4];
        assert!(reader.read(&mut buf).is_err(), "read reset fires on step 0");
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut a), "stream advances");
    }
}
