//! A tiny std-only client for the service — used by the integration tests,
//! the perf harness, the `serve_and_query` example, and scripting against a
//! running server.
//!
//! # Connection reuse
//!
//! Idempotent requests issued through [`Client::request_retrying`] (reads,
//! synthesis, queries, model loads) are sent `Connection: keep-alive` and
//! the connection is pooled for the next request, so a request/response
//! ping-pong pays one TCP handshake total instead of one per request. A
//! pooled connection can always have gone stale behind our back (the
//! server's idle deadline, its per-connection request cap, a crashed peer),
//! so a failure on a *reused* connection is retried once on a fresh
//! connection before it counts as a real failure — this costs nothing
//! semantically precisely because only idempotent requests ever reuse.
//! Non-idempotent requests ([`Client::request`] — fits, tenant
//! registration, shutdown) keep the one-connection-per-request
//! `Connection: close` discipline.
//!
//! # Retries
//!
//! With a [`RetryPolicy`] installed ([`Client::with_retry`]), transient
//! failures — connection errors, timeouts, 5xx statuses — are retried with
//! capped exponential backoff and deterministic seeded jitter, honoring a
//! server `Retry-After` hint (still capped by the policy's `max_delay`).
//! **Only idempotent requests are ever retried**: reads, model loads and
//! evictions, synthesis and queries (pure post-processing of a released
//! model). `POST /fit` debits the tenant's ε and `PUT /tenants/{id}`
//! registers exactly once, so neither is ever auto-retried — a lost
//! response would otherwise risk a double spend.
//!
//! An interrupted row stream is not restarted from scratch:
//! [`Client::synth_resuming`] keeps the delivered prefix, counts its
//! complete rows, and re-issues the spec with the stream's cursor advanced,
//! so the assembled bytes are identical to an uninterrupted stream.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use privbayes_model::{Json, ReleasedModel};
use privbayes_obs::Snapshot;
use privbayes_synth::{Cursor, MarginalQuery, SynthSpec};

use crate::error::ServerError;
use crate::http::Response;

/// Connect/read timeout for client sockets.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

/// Backoff schedule for retrying idempotent requests. Delay for retry `i`
/// (0-based) is `base_delay · 2^i`, scaled by a deterministic jitter factor
/// in `[0.5, 1.0)` drawn from `jitter_seed`, raised to any `Retry-After`
/// the server sent, and finally capped at `max_delay` — so a fleet of
/// clients with distinct seeds de-synchronizes its retry storms while each
/// individual client stays exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// First-retry backoff before jitter.
    pub base_delay: Duration,
    /// Hard cap on any single delay, `Retry-After` included.
    pub max_delay: Duration,
    /// Seed for the jitter stream; same seed, same delays.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// No retries at all — the default for a plain [`Client::new`].
    #[must_use]
    pub fn none() -> Self {
        Self { max_retries: 0, ..Self::default() }
    }

    /// The backoff before retry `attempt` (0-based), honoring an optional
    /// server `Retry-After` hint.
    #[must_use]
    pub fn delay(&self, attempt: u32, retry_after: Option<Duration>) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        let mut state = self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let frac = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = exp.mul_f64(0.5 + frac / 2.0);
        let with_hint = match retry_after {
            Some(hint) => jittered.max(hint),
            None => jittered,
        };
        with_hint.min(self.max_delay)
    }
}

/// The SplitMix64 step (duplicated privately: the fault module that also
/// carries one is compiled out of release builds, and the client's jitter
/// must not be).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One kept-alive connection waiting in the client's pool.
#[derive(Debug)]
struct PooledConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Whether this connection has already carried a request (a reused
    /// connection gets one free reconnect on failure; a fresh one fails
    /// for real).
    used: bool,
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    retry: RetryPolicy,
    /// The kept-alive connection pool (capacity 1: this client is a
    /// sequential caller; clones share it). Only idempotent requests check
    /// connections in or out.
    pool: Arc<Mutex<Option<PooledConn>>>,
}

impl Client {
    /// A client for `addr` (anything `ToSocketAddrs` accepts as text, e.g.
    /// `127.0.0.1:8321`). Does not retry; see [`Client::with_retry`].
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), retry: RetryPolicy::none(), pool: Arc::new(Mutex::new(None)) }
    }

    /// Installs a retry policy for idempotent requests.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// The address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and reads the full response (chunked bodies are
    /// reassembled).
    ///
    /// # Errors
    /// Returns [`ServerError::Io`] on socket failure and
    /// [`ServerError::Protocol`] on malformed response framing. Error
    /// *statuses* are returned as ordinary [`Response`]s — use
    /// [`Client::expect_success`] to convert them.
    pub fn request(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<(&str, &[u8])>,
    ) -> Result<Response, ServerError> {
        let (response, truncated) = self.request_partial(method, path_and_query, body)?;
        match truncated {
            None => Ok(response),
            Some(e) => Err(e),
        }
    }

    /// Like [`Client::request`], but a body truncated mid-transfer is
    /// returned as the delivered prefix plus the terminating error (see
    /// [`Response::read_partial`]) — the primitive under
    /// [`Client::synth_resuming`]. Always a fresh `Connection: close`
    /// exchange (partial-body recovery and connection reuse don't mix).
    ///
    /// # Errors
    /// Socket failure before the response head, or malformed head framing.
    pub fn request_partial(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<(&str, &[u8])>,
    ) -> Result<(Response, Option<ServerError>), ServerError> {
        let mut conn = self.connect()?;
        self.exchange(&mut conn, method, path_and_query, body, false)
    }

    /// Opens a fresh connection with the client timeouts and `TCP_NODELAY`.
    fn connect(&self) -> Result<PooledConn, ServerError> {
        // `connect_timeout` needs a resolved address; plain `connect` would
        // block on the OS SYN-retry schedule (minutes) for dead hosts.
        let addr =
            self.addr.to_socket_addrs()?.next().ok_or_else(|| {
                ServerError::Io(format!("`{}` resolves to no address", self.addr))
            })?;
        let stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT)?;
        stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
        // Requests are small and written in one flush; don't let Nagle
        // delay them behind an unacked previous segment.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(PooledConn { reader: BufReader::new(stream), writer, used: false })
    }

    /// Writes one request on `conn` and reads the full response. `keep`
    /// picks the `Connection` header; whether the connection actually
    /// survives is decided from the *response* (see `checkin`).
    fn exchange(
        &self,
        conn: &mut PooledConn,
        method: &str,
        path_and_query: &str,
        body: Option<(&str, &[u8])>,
        keep: bool,
    ) -> Result<(Response, Option<ServerError>), ServerError> {
        let connection = if keep { "keep-alive" } else { "close" };
        match body {
            Some((content_type, data)) => {
                write!(
                    conn.writer,
                    "{method} {path_and_query} HTTP/1.1\r\nHost: {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
                    self.addr,
                    data.len()
                )?;
                conn.writer.write_all(data)?;
            }
            None => {
                write!(
                    conn.writer,
                    "{method} {path_and_query} HTTP/1.1\r\nHost: {}\r\nConnection: {connection}\r\n\r\n",
                    self.addr
                )?;
            }
        }
        conn.writer.flush()?;
        conn.used = true;
        Response::read_partial(&mut conn.reader)
    }

    /// One keep-alive request: reuse the pooled connection when present,
    /// fall back to (and pool) a fresh one. A failure on a *reused*
    /// connection — the server may have idled it out at any moment — is
    /// invisibly retried once on a fresh connection; the caller must
    /// therefore only use this for idempotent requests.
    fn request_pooled(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<(&str, &[u8])>,
    ) -> Result<Response, ServerError> {
        let pooled = self.pool.lock().expect("client pool poisoned").take();
        let mut conn = match pooled {
            Some(conn) => conn,
            None => self.connect()?,
        };
        let reused = conn.used;
        let outcome = self.exchange(&mut conn, method, path_and_query, body, true);
        let outcome = match outcome {
            Err(ServerError::Io(_) | ServerError::Timeout(_) | ServerError::Protocol(_))
                if reused =>
            {
                // Stale pooled connection: rebuild and re-send once.
                conn = self.connect()?;
                self.exchange(&mut conn, method, path_and_query, body, true)
            }
            other => other,
        };
        let (response, truncated) = outcome?;
        match truncated {
            Some(e) => Err(e), // a torn body also tore the framing: no checkin
            None => {
                // The server says whether the connection survives.
                let keep = response
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"));
                if keep {
                    let mut slot = self.pool.lock().expect("client pool poisoned");
                    if slot.is_none() {
                        *slot = Some(conn);
                    }
                }
                Ok(response)
            }
        }
    }

    /// [`Client::request`] under the retry policy. `idempotent` is the
    /// caller's promise that re-issuing the request cannot double an
    /// effect; non-idempotent requests are never retried regardless of the
    /// failure (so a lost `POST /fit` response cannot double-debit ε).
    /// Idempotent requests are also the ones sent keep-alive over the
    /// pooled connection (reuse *is* an invisible retry on failure, so it
    /// demands the same promise). Retried failures: connection errors,
    /// timeouts, and 5xx statuses (honoring `Retry-After` on a 503).
    ///
    /// # Errors
    /// The last attempt's error once retries are exhausted.
    pub fn request_retrying(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<(&str, &[u8])>,
        idempotent: bool,
    ) -> Result<Response, ServerError> {
        let mut attempt = 0u32;
        loop {
            let result = if idempotent {
                self.request_pooled(method, path_and_query, body)
            } else {
                self.request(method, path_and_query, body)
            };
            let retriable = idempotent
                && attempt < self.retry.max_retries
                && match &result {
                    Ok(response) => response.code >= 500,
                    Err(ServerError::Io(_) | ServerError::Timeout(_)) => true,
                    Err(_) => false,
                };
            if !retriable {
                return result;
            }
            let hint = result.as_ref().ok().and_then(retry_after);
            std::thread::sleep(self.retry.delay(attempt, hint));
            attempt += 1;
        }
    }

    /// Unwraps a 2xx response, converting error statuses into
    /// [`ServerError::Status`].
    ///
    /// # Errors
    /// Returns [`ServerError::Status`] carrying the code and body for any
    /// non-2xx response.
    pub fn expect_success(response: Response) -> Result<Response, ServerError> {
        if (200..300).contains(&response.code) {
            Ok(response)
        } else {
            Err(ServerError::Status { code: response.code, body: response.text() })
        }
    }

    /// `GET /healthz`, parsed.
    ///
    /// # Errors
    /// Socket/protocol errors, or [`ServerError::Status`] on non-2xx.
    pub fn health(&self) -> Result<Json, ServerError> {
        self.get_json("/healthz")
    }

    /// `GET /metrics`, parsed into a typed [`Snapshot`]. Idempotent (a
    /// scrape mutates nothing), so retried under the policy like any read.
    ///
    /// # Errors
    /// Socket errors, [`ServerError::Status`] on non-2xx (404 when the
    /// server runs with metrics disabled), and [`ServerError::Protocol`] if
    /// the exposition text does not parse.
    pub fn metrics(&self) -> Result<Snapshot, ServerError> {
        let response = Self::expect_success(self.request_retrying("GET", "/metrics", None, true)?)?;
        privbayes_obs::parse_text(&response.text()).map_err(ServerError::Protocol)
    }

    /// `GET` returning parsed JSON. Idempotent: retried under the policy.
    ///
    /// # Errors
    /// Socket/protocol errors, [`ServerError::Status`] on non-2xx, and
    /// [`ServerError::Protocol`] if the body is not JSON.
    pub fn get_json(&self, path_and_query: &str) -> Result<Json, ServerError> {
        let response =
            Self::expect_success(self.request_retrying("GET", path_and_query, None, true)?)?;
        Json::parse(&response.text()).map_err(|e| ServerError::Protocol(e.to_string()))
    }

    /// `PUT /models/{id}` with a release artifact.
    ///
    /// # Errors
    /// Serialization, socket, and status errors.
    pub fn load_model(&self, id: &str, artifact: &ReleasedModel) -> Result<Json, ServerError> {
        let text = artifact.to_json_string().map_err(|e| ServerError::Model(e.to_string()))?;
        // PUT of a fixed artifact is idempotent: loading the same model
        // twice converges to the same registry state.
        let response = Self::expect_success(self.request_retrying(
            "PUT",
            &format!("/models/{id}"),
            Some(("application/json", text.as_bytes())),
            true,
        )?)?;
        Json::parse(&response.text()).map_err(|e| ServerError::Protocol(e.to_string()))
    }

    /// `DELETE /models/{id}`.
    ///
    /// # Errors
    /// Socket and status errors (404 if the model is not loaded).
    pub fn evict_model(&self, id: &str) -> Result<(), ServerError> {
        Self::expect_success(self.request("DELETE", &format!("/models/{id}"), None)?)?;
        Ok(())
    }

    /// `GET /models/{id}/synth` — the full streamed body as text.
    /// Idempotent (sampling a released model is deterministic, free
    /// post-processing), so retried under the policy.
    ///
    /// # Errors
    /// Socket and status errors.
    pub fn synth(
        &self,
        id: &str,
        rows: usize,
        seed: u64,
        format: &str,
    ) -> Result<String, ServerError> {
        let path = format!("/models/{id}/synth?rows={rows}&seed={seed}&format={format}");
        Ok(Self::expect_success(self.request_retrying("GET", &path, None, true)?)?.text())
    }

    /// `POST /v1/models/{id}/synth` with a typed [`SynthSpec`] — the v1
    /// request-spec route (evidence, projection, cursor resume). Returns the
    /// full [`Response`] so callers can read the body alongside the
    /// `X-PrivBayes-Seed` / `X-PrivBayes-Cursor` headers needed to build a
    /// resume cursor for an interrupted stream.
    ///
    /// # Errors
    /// Socket and status errors (spec-validation failures come back as
    /// [`ServerError::Status`] with code 400 and an `invalid-spec` body).
    pub fn synth_with(&self, id: &str, spec: &SynthSpec) -> Result<Response, ServerError> {
        let text =
            spec.to_json().to_string_compact().map_err(|e| ServerError::Protocol(e.to_string()))?;
        Self::expect_success(self.request_retrying(
            "POST",
            &format!("/v1/models/{id}/synth"),
            Some(("application/json", text.as_bytes())),
            true,
        )?)
    }

    /// `POST /v1/models/{id}/synth` with interruption recovery: an
    /// interrupted stream keeps its delivered prefix and is re-issued with
    /// the cursor advanced past every *complete* row already received, so
    /// the assembled bytes are identical to an uninterrupted stream. The
    /// seed comes from the response's `X-PrivBayes-Seed` header, so this
    /// works even when the spec left the seed to the server. Retries (for
    /// interruptions, connection failures, and 5xx statuses alike) are
    /// bounded by the policy's `max_retries`.
    ///
    /// # Errors
    /// Socket and status errors; the terminating error once retries are
    /// exhausted mid-stream.
    pub fn synth_resuming(&self, id: &str, spec: &SynthSpec) -> Result<String, ServerError> {
        let path = format!("/v1/models/{id}/synth");
        let mut assembled: Vec<u8> = Vec::new();
        // Once the first response head arrives: the server-reported cursor
        // with the row advanced past what we kept. The cursor carries the
        // model generation too, so a resume keeps sampling the generation
        // the stream started on even if a refit swapped in a newer one.
        let mut state: Option<Cursor> = None;
        let mut attempt = 0u32;
        loop {
            let current = match state {
                None => spec.clone(),
                Some(cursor) => spec.clone().with_cursor(cursor),
            };
            let text = current
                .to_json()
                .to_string_compact()
                .map_err(|e| ServerError::Protocol(e.to_string()))?;
            let outcome =
                self.request_partial("POST", &path, Some(("application/json", text.as_bytes())));
            let (response, truncated) = match outcome {
                Ok(pair) => pair,
                Err(e) => {
                    // Connection died before any response head.
                    if attempt >= self.retry.max_retries
                        || !matches!(e, ServerError::Io(_) | ServerError::Timeout(_))
                    {
                        return Err(e);
                    }
                    std::thread::sleep(self.retry.delay(attempt, None));
                    attempt += 1;
                    continue;
                }
            };
            if !(200..300).contains(&response.code) {
                if response.code >= 500 && attempt < self.retry.max_retries {
                    let hint = retry_after(&response);
                    std::thread::sleep(self.retry.delay(attempt, hint));
                    attempt += 1;
                    continue;
                }
                return Err(ServerError::Status { code: response.code, body: response.text() });
            }
            let seed: u64 = response
                .header("x-privbayes-seed")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ServerError::Protocol("stream lacks X-PrivBayes-Seed".into()))?;
            let cursor = response
                .header("x-privbayes-cursor")
                .and_then(|t| Cursor::decode(t).ok())
                .ok_or_else(|| ServerError::Protocol("stream lacks X-PrivBayes-Cursor".into()))?;
            let start_row = cursor.row;
            match truncated {
                None => {
                    assembled.extend_from_slice(&response.body);
                    return Ok(String::from_utf8_lossy(&assembled).into_owned());
                }
                Some(e) => {
                    if attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    // Keep only complete lines; a partial final row is
                    // discarded and regenerated by the resumed stream.
                    let keep = response.body.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                    let kept = &response.body[..keep];
                    let mut lines = kept.iter().filter(|&&b| b == b'\n').count() as u64;
                    // A stream that started at row 0 leads with the CSV
                    // header line, which is not a data row.
                    let has_header = start_row == 0
                        && response
                            .header("content-type")
                            .is_some_and(|ct| ct.starts_with("text/csv"));
                    if has_header {
                        lines = lines.saturating_sub(1);
                    }
                    assembled.extend_from_slice(kept);
                    state = Some(Cursor { seed, row: start_row + lines, ..cursor });
                    std::thread::sleep(self.retry.delay(attempt, None));
                    attempt += 1;
                }
            }
        }
    }

    /// `POST /v1/models/{id}/query` with a typed [`MarginalQuery`]; returns
    /// the parsed answer (`attrs`, `dims`, row-major `values` — exact
    /// θ-projection of the released model, bit-reproducible for a fixed
    /// model).
    ///
    /// # Errors
    /// Socket/protocol/status errors.
    pub fn query(&self, id: &str, query: &MarginalQuery) -> Result<Json, ServerError> {
        let text = query
            .to_json()
            .to_string_compact()
            .map_err(|e| ServerError::Protocol(e.to_string()))?;
        let response = Self::expect_success(self.request(
            "POST",
            &format!("/v1/models/{id}/query"),
            Some(("application/json", text.as_bytes())),
        )?)?;
        Json::parse(&response.text()).map_err(|e| ServerError::Protocol(e.to_string()))
    }

    /// `PUT /tenants/{tenant}?budget=…`. Never auto-retried: registration
    /// succeeds exactly once (the second attempt would read a confusing
    /// 409 for a request that actually worked).
    ///
    /// # Errors
    /// Socket and status errors (409 if the tenant exists).
    pub fn register_tenant(&self, tenant: &str, budget: f64) -> Result<(), ServerError> {
        Self::expect_success(self.request(
            "PUT",
            &format!("/tenants/{tenant}?budget={budget}"),
            None,
        )?)?;
        Ok(())
    }

    /// `GET /tenants/{tenant}`, parsed.
    ///
    /// # Errors
    /// Socket/protocol/status errors.
    pub fn tenant(&self, tenant: &str) -> Result<Json, ServerError> {
        self.get_json(&format!("/tenants/{tenant}"))
    }

    /// `POST /fit` with a raw JSON body (see the server docs for fields).
    /// Returns the raw [`Response`] so callers can inspect structured 4xx
    /// bodies (budget exhaustion) without error mapping.
    ///
    /// **Never auto-retried**, whatever the policy: a fit debits the
    /// tenant's ε, and a retry after a lost response would spend it twice.
    /// Callers who know their fit is safe to repeat must re-issue it
    /// explicitly.
    ///
    /// # Errors
    /// Socket/protocol errors only; HTTP error statuses come back as
    /// responses.
    pub fn fit_raw(&self, body: &Json) -> Result<Response, ServerError> {
        let text = body.to_string_compact().map_err(|e| ServerError::Protocol(e.to_string()))?;
        self.request("POST", "/fit", Some(("application/json", text.as_bytes())))
    }

    /// `POST /v1/tenants/{tenant}/ingest` with a raw JSON body (schema +
    /// refit target on the first batch, `csv` or `jsonl` rows on every
    /// batch). Returns the raw [`Response`] so callers can inspect
    /// structured 4xx bodies.
    ///
    /// **Never auto-retried**, whatever the policy: an accepted append
    /// mutates the tenant's dataset, and a retry after an ambiguous
    /// timeout could land the same rows twice.
    ///
    /// # Errors
    /// Socket and protocol errors only; HTTP-level failures come back as
    /// the response.
    pub fn ingest(&self, tenant: &str, body: &Json) -> Result<Response, ServerError> {
        let text = body.to_string_compact().map_err(|e| ServerError::Protocol(e.to_string()))?;
        self.request(
            "POST",
            &format!("/v1/tenants/{tenant}/ingest"),
            Some(("application/json", text.as_bytes())),
        )
    }

    /// `GET /v1/models/{id}/generations`: the retained generation chain,
    /// newest first. Idempotent: retried under the policy.
    ///
    /// # Errors
    /// Socket/protocol errors and [`ServerError::Status`] on non-2xx.
    pub fn generations(&self, id: &str) -> Result<Json, ServerError> {
        self.get_json(&format!("/v1/models/{id}/generations"))
    }

    /// `POST /shutdown`.
    ///
    /// # Errors
    /// Socket and status errors.
    pub fn shutdown(&self) -> Result<(), ServerError> {
        Self::expect_success(self.request("POST", "/shutdown", None)?)?;
        Ok(())
    }
}

/// Parses a `Retry-After: <seconds>` response header.
fn retry_after(response: &Response) -> Option<Duration> {
    response
        .header("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy::default();
        for attempt in 0..5 {
            let a = policy.delay(attempt, None);
            let b = policy.delay(attempt, None);
            assert_eq!(a, b, "same seed and attempt, same delay");
            assert!(a <= policy.max_delay);
            let exp = policy.base_delay * (1 << attempt);
            assert!(a >= exp.mul_f64(0.5).min(policy.max_delay), "jitter floor is half the step");
        }
        // Deep attempts saturate at the cap instead of overflowing.
        assert_eq!(policy.delay(40, None), policy.max_delay);
        // Different seeds de-synchronize.
        let other = RetryPolicy { jitter_seed: 99, ..policy };
        assert!((0..8).any(|i| other.delay(i, None) != policy.delay(i, None)));
    }

    #[test]
    fn retry_after_hint_raises_but_never_exceeds_the_cap() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            ..RetryPolicy::default()
        };
        let hinted = policy.delay(0, Some(Duration::from_millis(200)));
        assert!(hinted >= Duration::from_millis(200), "the server hint is honored");
        let huge = policy.delay(0, Some(Duration::from_secs(3600)));
        assert_eq!(huge, policy.max_delay, "but tests never sleep an hour");
    }

    #[test]
    fn retry_after_header_parses() {
        let response = Response {
            code: 503,
            headers: vec![("retry-after".into(), "1".into())],
            body: Vec::new(),
        };
        assert_eq!(retry_after(&response), Some(Duration::from_secs(1)));
        let response = Response { code: 503, headers: vec![], body: Vec::new() };
        assert_eq!(retry_after(&response), None);
    }
}
