//! A tiny std-only client for the service — used by the integration tests,
//! the perf harness, the `serve_and_query` example, and scripting against a
//! running server. One TCP connection per request, mirroring the server's
//! `Connection: close` policy.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use privbayes_model::{Json, ReleasedModel};
use privbayes_synth::{MarginalQuery, SynthSpec};

use crate::error::ServerError;
use crate::http::Response;

/// Connect/read timeout for client sockets.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (anything `ToSocketAddrs` accepts as text, e.g.
    /// `127.0.0.1:8321`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }

    /// The address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and reads the full response (chunked bodies are
    /// reassembled).
    ///
    /// # Errors
    /// Returns [`ServerError::Io`] on socket failure and
    /// [`ServerError::Protocol`] on malformed response framing. Error
    /// *statuses* are returned as ordinary [`Response`]s — use
    /// [`Client::expect_success`] to convert them.
    pub fn request(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<(&str, &[u8])>,
    ) -> Result<Response, ServerError> {
        // `connect_timeout` needs a resolved address; plain `connect` would
        // block on the OS SYN-retry schedule (minutes) for dead hosts.
        let addr =
            self.addr.to_socket_addrs()?.next().ok_or_else(|| {
                ServerError::Io(format!("`{}` resolves to no address", self.addr))
            })?;
        let stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT)?;
        stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
        let mut writer = stream.try_clone()?;
        match body {
            Some((content_type, data)) => {
                write!(
                    writer,
                    "{method} {path_and_query} HTTP/1.1\r\nHost: {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    self.addr,
                    data.len()
                )?;
                writer.write_all(data)?;
            }
            None => {
                write!(
                    writer,
                    "{method} {path_and_query} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
                    self.addr
                )?;
            }
        }
        writer.flush()?;
        Response::read_from(&mut BufReader::new(stream))
    }

    /// Unwraps a 2xx response, converting error statuses into
    /// [`ServerError::Status`].
    ///
    /// # Errors
    /// Returns [`ServerError::Status`] carrying the code and body for any
    /// non-2xx response.
    pub fn expect_success(response: Response) -> Result<Response, ServerError> {
        if (200..300).contains(&response.code) {
            Ok(response)
        } else {
            Err(ServerError::Status { code: response.code, body: response.text() })
        }
    }

    /// `GET /healthz`, parsed.
    ///
    /// # Errors
    /// Socket/protocol errors, or [`ServerError::Status`] on non-2xx.
    pub fn health(&self) -> Result<Json, ServerError> {
        self.get_json("/healthz")
    }

    /// `GET` returning parsed JSON.
    ///
    /// # Errors
    /// Socket/protocol errors, [`ServerError::Status`] on non-2xx, and
    /// [`ServerError::Protocol`] if the body is not JSON.
    pub fn get_json(&self, path_and_query: &str) -> Result<Json, ServerError> {
        let response = Self::expect_success(self.request("GET", path_and_query, None)?)?;
        Json::parse(&response.text()).map_err(|e| ServerError::Protocol(e.to_string()))
    }

    /// `PUT /models/{id}` with a release artifact.
    ///
    /// # Errors
    /// Serialization, socket, and status errors.
    pub fn load_model(&self, id: &str, artifact: &ReleasedModel) -> Result<Json, ServerError> {
        let text = artifact.to_json_string().map_err(|e| ServerError::Model(e.to_string()))?;
        let response = Self::expect_success(self.request(
            "PUT",
            &format!("/models/{id}"),
            Some(("application/json", text.as_bytes())),
        )?)?;
        Json::parse(&response.text()).map_err(|e| ServerError::Protocol(e.to_string()))
    }

    /// `DELETE /models/{id}`.
    ///
    /// # Errors
    /// Socket and status errors (404 if the model is not loaded).
    pub fn evict_model(&self, id: &str) -> Result<(), ServerError> {
        Self::expect_success(self.request("DELETE", &format!("/models/{id}"), None)?)?;
        Ok(())
    }

    /// `GET /models/{id}/synth` — the full streamed body as text.
    ///
    /// # Errors
    /// Socket and status errors.
    pub fn synth(
        &self,
        id: &str,
        rows: usize,
        seed: u64,
        format: &str,
    ) -> Result<String, ServerError> {
        let path = format!("/models/{id}/synth?rows={rows}&seed={seed}&format={format}");
        Ok(Self::expect_success(self.request("GET", &path, None)?)?.text())
    }

    /// `POST /v1/models/{id}/synth` with a typed [`SynthSpec`] — the v1
    /// request-spec route (evidence, projection, cursor resume). Returns the
    /// full [`Response`] so callers can read the body alongside the
    /// `X-PrivBayes-Seed` / `X-PrivBayes-Cursor` headers needed to build a
    /// resume cursor for an interrupted stream.
    ///
    /// # Errors
    /// Socket and status errors (spec-validation failures come back as
    /// [`ServerError::Status`] with code 400 and an `invalid-spec` body).
    pub fn synth_with(&self, id: &str, spec: &SynthSpec) -> Result<Response, ServerError> {
        let text =
            spec.to_json().to_string_compact().map_err(|e| ServerError::Protocol(e.to_string()))?;
        Self::expect_success(self.request(
            "POST",
            &format!("/v1/models/{id}/synth"),
            Some(("application/json", text.as_bytes())),
        )?)
    }

    /// `POST /v1/models/{id}/query` with a typed [`MarginalQuery`]; returns
    /// the parsed answer (`attrs`, `dims`, row-major `values` — exact
    /// θ-projection of the released model, bit-reproducible for a fixed
    /// model).
    ///
    /// # Errors
    /// Socket/protocol/status errors.
    pub fn query(&self, id: &str, query: &MarginalQuery) -> Result<Json, ServerError> {
        let text = query
            .to_json()
            .to_string_compact()
            .map_err(|e| ServerError::Protocol(e.to_string()))?;
        let response = Self::expect_success(self.request(
            "POST",
            &format!("/v1/models/{id}/query"),
            Some(("application/json", text.as_bytes())),
        )?)?;
        Json::parse(&response.text()).map_err(|e| ServerError::Protocol(e.to_string()))
    }

    /// `PUT /tenants/{tenant}?budget=…`.
    ///
    /// # Errors
    /// Socket and status errors (409 if the tenant exists).
    pub fn register_tenant(&self, tenant: &str, budget: f64) -> Result<(), ServerError> {
        Self::expect_success(self.request(
            "PUT",
            &format!("/tenants/{tenant}?budget={budget}"),
            None,
        )?)?;
        Ok(())
    }

    /// `GET /tenants/{tenant}`, parsed.
    ///
    /// # Errors
    /// Socket/protocol/status errors.
    pub fn tenant(&self, tenant: &str) -> Result<Json, ServerError> {
        self.get_json(&format!("/tenants/{tenant}"))
    }

    /// `POST /fit` with a raw JSON body (see the server docs for fields).
    /// Returns the raw [`Response`] so callers can inspect structured 4xx
    /// bodies (budget exhaustion) without error mapping.
    ///
    /// # Errors
    /// Socket/protocol errors only; HTTP error statuses come back as
    /// responses.
    pub fn fit_raw(&self, body: &Json) -> Result<Response, ServerError> {
        let text = body.to_string_compact().map_err(|e| ServerError::Protocol(e.to_string()))?;
        self.request("POST", "/fit", Some(("application/json", text.as_bytes())))
    }

    /// `POST /shutdown`.
    ///
    /// # Errors
    /// Socket and status errors.
    pub fn shutdown(&self) -> Result<(), ServerError> {
        Self::expect_success(self.request("POST", "/shutdown", None)?)?;
        Ok(())
    }
}
