//! The preformatted row-block cache.
//!
//! Streams are deterministic: for a fixed `(model, seed, format)` the bytes
//! of chunk *i* are a pure function of the key, because the sampler derives
//! each 1024-row chunk's RNG stream from `(seed, chunk index)` alone
//! ([`privbayes::CHUNK_ROWS`] chunking). That makes formatted chunks safe
//! to cache and replay: a repeat request is served as a memcpy of bytes
//! the sampler already produced, instead of re-sampling and re-serialising.
//!
//! The cache is a byte-bounded LRU. Values are `Arc<str>` handles, so
//! eviction only drops the map's reference — an in-flight stream that
//! already cloned the handle keeps writing the same bytes; nothing is ever
//! torn. Models are identified by their registry *generation* (a
//! process-unique stamp minted per load), so an evicted-and-reloaded model
//! can never be served bytes cached from its predecessor, even under the
//! same id.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use privbayes_obs::Counter;

use crate::stream::RowFormat;

/// The cache key: one formatted chunk of one deterministic stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// The model's registry load generation (not its id — reloads must
    /// never alias).
    pub generation: u64,
    /// The stream seed.
    pub seed: u64,
    /// The output format.
    pub format: RowFormat,
    /// The chunk index within the stream (chunk `i` covers rows
    /// `[i * CHUNK_ROWS, (i + 1) * CHUNK_ROWS)` of the full stream).
    pub chunk_index: usize,
    /// Rows rendered into this block. Full chunks always hold `CHUNK_ROWS`
    /// rows; the final chunk of an `N`-row stream holds `N % CHUNK_ROWS`.
    /// Keying on the length keeps a short tail block (from a small request)
    /// from ever being replayed into a longer stream.
    pub rows: usize,
}

#[derive(Debug)]
struct Slot {
    bytes: Arc<str>,
    tick: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<BlockKey, Slot>,
    /// LRU order: tick → key. Ticks are unique (monotone per touch), so
    /// the first entry is always the least-recently-used block.
    lru: BTreeMap<u64, BlockKey>,
    total_bytes: usize,
    tick: u64,
}

/// Shared handles for the cache's hit/miss/eviction counters (pre-registered
/// `Arc`s into the server's metric registry; a standalone cache counts into
/// unexported counters).
#[derive(Debug, Clone)]
pub struct CacheMetrics {
    /// Blocks served from cache.
    pub hits: Arc<Counter>,
    /// Blocks that had to be sampled and formatted.
    pub misses: Arc<Counter>,
    /// Bytes dropped to stay under the budget.
    pub evicted_bytes: Arc<Counter>,
}

impl Default for CacheMetrics {
    fn default() -> Self {
        Self {
            hits: Arc::new(Counter::default()),
            misses: Arc::new(Counter::default()),
            evicted_bytes: Arc::new(Counter::default()),
        }
    }
}

/// A byte-bounded LRU of formatted row blocks. `max_bytes == 0` disables
/// caching entirely ([`RowBlockCache::get`] always misses, `insert` is a
/// no-op), which keeps the serving path branch-free on configuration.
#[derive(Debug)]
pub struct RowBlockCache {
    inner: Mutex<Inner>,
    max_bytes: usize,
    metrics: CacheMetrics,
}

impl RowBlockCache {
    /// A cache holding at most `max_bytes` of formatted blocks.
    #[must_use]
    pub fn new(max_bytes: usize, metrics: CacheMetrics) -> Self {
        Self { inner: Mutex::new(Inner::default()), max_bytes, metrics }
    }

    /// Whether the cache can ever store anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.max_bytes > 0
    }

    /// The configured byte budget.
    #[must_use]
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Bytes currently held.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").total_bytes
    }

    /// Looks up a block, counting a hit or miss and refreshing recency on a
    /// hit. The returned `Arc` stays valid across any later eviction.
    #[must_use]
    pub fn get(&self, key: &BlockKey) -> Option<Arc<str>> {
        if !self.enabled() {
            self.metrics.misses.inc();
            return None;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(slot) => {
                let old = std::mem::replace(&mut slot.tick, tick);
                let bytes = Arc::clone(&slot.bytes);
                inner.lru.remove(&old);
                inner.lru.insert(tick, key.clone());
                drop(inner);
                self.metrics.hits.inc();
                Some(bytes)
            }
            None => {
                drop(inner);
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Inserts a freshly formatted block, evicting least-recently-used
    /// blocks until the budget holds. A block larger than the whole budget
    /// is not cached at all (it would immediately evict everything for one
    /// never-reusable entry).
    pub fn insert(&self, key: BlockKey, bytes: Arc<str>) {
        if !self.enabled() || bytes.len() > self.max_bytes {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            // Racing inserts of the same deterministic block: keep ours,
            // the bytes are identical by construction.
            inner.lru.remove(&old.tick);
            inner.total_bytes -= old.bytes.len();
        }
        inner.total_bytes += bytes.len();
        inner.map.insert(key.clone(), Slot { bytes, tick });
        inner.lru.insert(tick, key);
        let mut evicted = 0usize;
        while inner.total_bytes > self.max_bytes {
            let (&old_tick, _) = inner.lru.iter().next().expect("over budget implies entries");
            let old_key = inner.lru.remove(&old_tick).expect("present");
            let slot = inner.map.remove(&old_key).expect("lru and map agree");
            inner.total_bytes -= slot.bytes.len();
            evicted += slot.bytes.len();
        }
        drop(inner);
        if evicted > 0 {
            self.metrics.evicted_bytes.add(evicted as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64, chunk_index: usize) -> BlockKey {
        BlockKey { generation: 1, seed, format: RowFormat::Csv, chunk_index, rows: 1024 }
    }

    fn block(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn hit_after_insert_and_counters_move() {
        let cache = RowBlockCache::new(1024, CacheMetrics::default());
        assert!(cache.get(&key(7, 0)).is_none());
        cache.insert(key(7, 0), block("a,b\n0,1\n"));
        let hit = cache.get(&key(7, 0)).expect("cached block");
        assert_eq!(&*hit, "a,b\n0,1\n");
        assert!(cache.get(&key(7, 1)).is_none(), "different chunk misses");
        assert!(cache.get(&key(8, 0)).is_none(), "different seed misses");
        assert_eq!(cache.metrics.hits.get(), 1);
        assert_eq!(cache.metrics.misses.get(), 3);
    }

    #[test]
    fn lru_evicts_cold_blocks_by_bytes() {
        // Budget of 20 bytes, three 8-byte blocks: inserting the third must
        // evict exactly the least recently used one.
        let cache = RowBlockCache::new(20, CacheMetrics::default());
        cache.insert(key(1, 0), block("aaaaaaaa"));
        cache.insert(key(1, 1), block("bbbbbbbb"));
        let _ = cache.get(&key(1, 0)); // touch block 0: block 1 is now LRU
        cache.insert(key(1, 2), block("cccccccc"));
        assert!(cache.get(&key(1, 0)).is_some(), "recently touched survives");
        assert!(cache.get(&key(1, 1)).is_none(), "LRU block was evicted");
        assert!(cache.get(&key(1, 2)).is_some());
        assert_eq!(cache.metrics.evicted_bytes.get(), 8);
        assert!(cache.len_bytes() <= 20);
    }

    #[test]
    fn eviction_never_invalidates_held_handles() {
        let cache = RowBlockCache::new(8, CacheMetrics::default());
        cache.insert(key(1, 0), block("12345678"));
        let held = cache.get(&key(1, 0)).unwrap();
        cache.insert(key(1, 1), block("87654321")); // evicts block 0
        assert!(cache.get(&key(1, 0)).is_none());
        assert_eq!(&*held, "12345678", "an in-flight stream keeps its bytes");
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = RowBlockCache::new(0, CacheMetrics::default());
        assert!(!cache.enabled());
        cache.insert(key(1, 0), block("data"));
        assert!(cache.get(&key(1, 0)).is_none());
        assert_eq!(cache.len_bytes(), 0);
        assert_eq!(cache.metrics.hits.get(), 0);
    }

    #[test]
    fn oversized_block_is_passed_through() {
        let cache = RowBlockCache::new(4, CacheMetrics::default());
        cache.insert(key(1, 0), block("too large to cache"));
        assert!(cache.get(&key(1, 0)).is_none());
        assert_eq!(cache.len_bytes(), 0, "nothing was evicted to make room");
    }

    #[test]
    fn generation_isolates_reloaded_models() {
        let cache = RowBlockCache::new(1024, CacheMetrics::default());
        let old = BlockKey { generation: 1, ..key(7, 0) };
        let new = BlockKey { generation: 2, ..key(7, 0) };
        cache.insert(old.clone(), block("old bytes"));
        assert!(cache.get(&new).is_none(), "a reloaded model must not see stale bytes");
        assert!(cache.get(&old).is_some());
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let cache = RowBlockCache::new(64, CacheMetrics::default());
        cache.insert(key(1, 0), block("aaaa"));
        cache.insert(key(1, 0), block("aaaa"));
        assert_eq!(cache.len_bytes(), 4, "re-inserting the same key must not double-count");
    }
}
