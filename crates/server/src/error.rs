//! Error type for the serving layer.

use std::fmt;

/// Errors raised while configuring, starting, or driving the server.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (bind, accept, read, write).
    Io(String),
    /// A request or response violated the supported HTTP/1.1 subset.
    Protocol(String),
    /// A client-side call completed but the server answered with an error
    /// status; carries the status code and the (JSON) body.
    Status {
        /// The HTTP status code.
        code: u16,
        /// The response body (structured JSON for every server-side error).
        body: String,
    },
    /// The persisted ledger file could not be parsed or written.
    Ledger(String),
    /// A per-tenant dataset journal could not be parsed or written, or an
    /// ingest batch was rejected.
    Dataset(String),
    /// The request conflicts with existing state (e.g. re-registering a
    /// tenant); the server answers 409.
    Conflict(String),
    /// A model artifact was rejected (parse or validation failure).
    Model(String),
    /// A deadline expired: the peer read or wrote too slowly, or a handler
    /// overran its budget. The server answers 408 for slow requests.
    Timeout(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(msg) => write!(f, "io: {msg}"),
            ServerError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServerError::Status { code, body } => write!(f, "server returned {code}: {body}"),
            ServerError::Ledger(msg) => write!(f, "ledger: {msg}"),
            ServerError::Dataset(msg) => write!(f, "dataset: {msg}"),
            ServerError::Conflict(msg) => write!(f, "conflict: {msg}"),
            ServerError::Model(msg) => write!(f, "model: {msg}"),
            ServerError::Timeout(msg) => write!(f, "timeout: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            // Socket read/write timeouts surface as either kind depending on
            // the platform; both mean "the peer was too slow".
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                ServerError::Timeout(e.to_string())
            }
            _ => ServerError::Io(e.to_string()),
        }
    }
}

impl From<privbayes_model::ModelError> for ServerError {
    fn from(e: privbayes_model::ModelError) -> Self {
        ServerError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServerError::Io("refused".into()).to_string().contains("refused"));
        assert!(ServerError::Protocol("bad request line".into()).to_string().contains("bad"));
        let e = ServerError::Status { code: 402, body: "{\"error\":\"x\"}".into() };
        assert!(e.to_string().contains("402"));
        assert!(ServerError::Ledger("corrupt".into()).to_string().contains("corrupt"));
        assert!(ServerError::Conflict("tenant exists".into()).to_string().contains("exists"));
        assert!(ServerError::Model("not normalised".into()).to_string().contains("normalised"));
        assert!(ServerError::Timeout("read deadline".into()).to_string().contains("deadline"));
    }

    #[test]
    fn io_timeouts_become_timeout_variant() {
        for kind in [std::io::ErrorKind::TimedOut, std::io::ErrorKind::WouldBlock] {
            let e: ServerError = std::io::Error::new(kind, "slow peer").into();
            assert!(matches!(e, ServerError::Timeout(_)), "{kind:?} must map to Timeout");
        }
        let e: ServerError =
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "gone").into();
        assert!(matches!(e, ServerError::Io(_)));
    }
}
