//! The model registry: released models, loaded once, shared by every request.
//!
//! Each entry wraps a [`ReleasedModel`] in an [`Arc`]. Loading compiles the
//! model's alias tables **once** (via the `ReleasedModel` sampler cache), so
//! concurrent synthesis requests against the same model share one compiled
//! form instead of rebuilding it per request. Eviction only removes the
//! entry from the map: any request that already cloned the `Arc` keeps
//! streaming from the (still-alive) compiled model — an in-flight request is
//! never dropped by an eviction racing with it.
//!
//! An id names a **generation chain**, not a single model: every
//! [`ModelRegistry::load`] under an existing id atomically swaps a new
//! current generation in front of the old one (one `Arc` snapshot
//! replacement — readers never observe a half-updated chain), and the most
//! recent [`RETAINED_GENERATIONS`] stay addressable through
//! [`ModelRegistry::get_generation`]. A stream that pinned its generation
//! via a `pbc2` cursor therefore resumes against exactly the artifact it
//! started on, even after a background refit hot-swaps the current model;
//! once a generation ages out of the chain, resumption gets a structured
//! "evicted" answer instead of silently different bytes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use privbayes::CompiledSampler;
use privbayes_model::ReleasedModel;

use crate::error::ServerError;

/// Maximum accepted length of a model id or tenant name.
pub const MAX_ID_LEN: usize = 64;

/// Validates a registry/ledger identifier: 1..=64 chars from
/// `[A-Za-z0-9._-]`, so ids embed safely in paths, queries, and JSON.
///
/// # Errors
/// Returns [`ServerError::Protocol`] describing the violation.
pub fn validate_id(id: &str) -> Result<(), ServerError> {
    if id.is_empty() || id.len() > MAX_ID_LEN {
        return Err(ServerError::Protocol(format!(
            "id must have 1..={MAX_ID_LEN} characters, got {}",
            id.len()
        )));
    }
    if !id.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-')) {
        return Err(ServerError::Protocol(format!(
            "id `{id}` contains characters outside [A-Za-z0-9._-]"
        )));
    }
    Ok(())
}

/// Stamps every loaded entry with a process-unique generation, so caches
/// keyed on it can never confuse a reloaded model with its predecessor
/// (even when both carried the same id).
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// One registered model: the artifact plus its id.
#[derive(Debug)]
pub struct ModelEntry {
    /// The registry id the model was loaded under.
    pub id: String,
    /// The released artifact (owns the cached [`CompiledSampler`]).
    pub artifact: ReleasedModel,
    /// Process-unique load generation (fresh per [`ModelRegistry::load`]).
    pub generation: u64,
}

impl ModelEntry {
    /// The compiled sampler, built on first use and shared afterwards.
    ///
    /// # Errors
    /// Propagates compilation failures as [`ServerError::Model`].
    pub fn sampler(&self) -> Result<&CompiledSampler, ServerError> {
        self.artifact.compiled().map_err(ServerError::from)
    }
}

/// How many generations of one id stay addressable (and alive) in the
/// chain. Older generations are dropped from the map on the next load —
/// streams already holding their `Arc` finish unaffected, but new
/// pinned-cursor lookups for them answer "evicted".
pub const RETAINED_GENERATIONS: usize = 4;

/// One id's generation chain, newest first. Immutable once published: a
/// load builds a fresh chain and swaps the map snapshot.
#[derive(Debug)]
struct Chain {
    entries: Vec<Arc<ModelEntry>>,
}

/// Outcome of a generation-pinned lookup (see
/// [`ModelRegistry::get_generation`]).
#[derive(Debug)]
pub enum GenerationLookup {
    /// The pinned generation is still in the chain.
    Found(Arc<ModelEntry>),
    /// The id exists but that generation aged out of the chain; `newest`
    /// is the current generation (for the structured 410 body).
    Evicted {
        /// The chain's current generation.
        newest: u64,
    },
    /// No model is loaded under the id at all.
    Unknown,
}

/// A concurrent map from model id to its generation chain.
///
/// The map itself lives behind an [`Arc`] snapshot: readers clone the
/// current snapshot pointer under a momentary read lock and then walk it
/// with no lock held, so `GET /synth` lookups never contend with a
/// load/evict holding the write lock mid-rebuild.
#[derive(Debug)]
pub struct ModelRegistry {
    entries: RwLock<Arc<BTreeMap<String, Arc<Chain>>>>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self { entries: RwLock::new(Arc::new(BTreeMap::new())) }
    }
}

impl ModelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `artifact` under `id`, eagerly compiling its sampler so the
    /// cost is paid at load time, not on the first synthesis request. The
    /// new entry becomes the id's current generation; previous ones stay
    /// in the chain up to [`RETAINED_GENERATIONS`]. Returns `true` if the
    /// id was new.
    ///
    /// # Errors
    /// Returns [`ServerError::Protocol`] for an invalid id and
    /// [`ServerError::Model`] if the artifact fails to compile.
    pub fn load(&self, id: &str, artifact: ReleasedModel) -> Result<bool, ServerError> {
        validate_id(id)?;
        let entry = ModelEntry {
            id: id.to_string(),
            artifact,
            generation: GENERATION.fetch_add(1, Ordering::Relaxed),
        };
        entry.sampler()?; // compile once, up front
        let mut entries = self.entries.write().expect("registry lock poisoned");
        let mut next = BTreeMap::clone(&entries);
        let mut chain = vec![Arc::new(entry)];
        if let Some(previous) = next.get(id) {
            chain.extend(previous.entries.iter().cloned());
        }
        chain.truncate(RETAINED_GENERATIONS);
        let was_new = next.insert(id.to_string(), Arc::new(Chain { entries: chain })).is_none();
        *entries = Arc::new(next);
        Ok(was_new)
    }

    /// The current map snapshot; walked lock-free by the caller.
    fn snapshot(&self) -> Arc<BTreeMap<String, Arc<Chain>>> {
        Arc::clone(&self.entries.read().expect("registry lock poisoned"))
    }

    /// The current-generation entry for `id`, if loaded. The returned
    /// [`Arc`] keeps the model alive across later evictions and reloads.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Arc<ModelEntry>> {
        self.snapshot().get(id).and_then(|chain| chain.entries.first().cloned())
    }

    /// The entry for a specific pinned `generation` of `id` — what a
    /// `pbc2` cursor resumes against.
    #[must_use]
    pub fn get_generation(&self, id: &str, generation: u64) -> GenerationLookup {
        let snapshot = self.snapshot();
        let Some(chain) = snapshot.get(id) else { return GenerationLookup::Unknown };
        match chain.entries.iter().find(|e| e.generation == generation) {
            Some(entry) => GenerationLookup::Found(Arc::clone(entry)),
            None => GenerationLookup::Evicted {
                newest: chain.entries.first().map_or(0, |e| e.generation),
            },
        }
    }

    /// The retained generation chain for `id`, newest first.
    #[must_use]
    pub fn generations(&self, id: &str) -> Option<Vec<Arc<ModelEntry>>> {
        self.snapshot().get(id).map(|chain| chain.entries.clone())
    }

    /// Removes `id` — the whole chain; returns whether it was present.
    /// In-flight requests holding an entry's [`Arc`] are unaffected.
    #[must_use]
    pub fn evict(&self, id: &str) -> bool {
        let mut entries = self.entries.write().expect("registry lock poisoned");
        let mut next = BTreeMap::clone(&entries);
        let was_present = next.remove(id).is_some();
        *entries = Arc::new(next);
        was_present
    }

    /// The current generation of every id, sorted by id.
    #[must_use]
    pub fn list(&self) -> Vec<Arc<ModelEntry>> {
        self.snapshot().values().filter_map(|chain| chain.entries.first().cloned()).collect()
    }

    /// Number of loaded model ids (not generations).
    #[must_use]
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
    use privbayes_data::{Attribute, Dataset, Schema};
    use privbayes_model::ModelMetadata;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> ReleasedModel {
        let schema = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
        let rows: Vec<Vec<u32>> = (0..120).map(|i| vec![i % 2, (i + 1) % 2]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let options = PrivBayesOptions::new(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let result = PrivBayes::new(options.clone()).synthesize(&data, &mut rng).unwrap();
        ReleasedModel::new(
            ModelMetadata {
                method: "privbayes".into(),
                epsilon: options.epsilon,
                beta: options.beta,
                theta: options.theta,
                score: options.effective_score().name().to_string(),
                encoding: options.encoding.name().to_string(),
                source_rows: data.n(),
                comment: String::new(),
            },
            data.schema().clone(),
            result.model,
        )
        .unwrap()
    }

    #[test]
    fn load_get_evict_cycle() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        assert!(registry.load("m1", tiny_model()).unwrap(), "first load is new");
        assert!(!registry.load("m1", tiny_model()).unwrap(), "reload replaces");
        assert_eq!(registry.len(), 1);
        assert!(registry.get("m1").is_some());
        assert!(registry.get("m2").is_none());
        assert!(registry.evict("m1"));
        assert!(!registry.evict("m1"));
        assert!(registry.get("m1").is_none());
    }

    #[test]
    fn eviction_does_not_invalidate_held_entries() {
        let registry = ModelRegistry::new();
        registry.load("m", tiny_model()).unwrap();
        let held = registry.get("m").unwrap();
        assert!(registry.evict("m"));
        // The held Arc still samples fine after eviction.
        let sampler = held.sampler().unwrap();
        let data = sampler.sample_dataset(32, Some(1), &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(data.n(), 32);
    }

    #[test]
    fn reload_gets_a_fresh_generation() {
        let registry = ModelRegistry::new();
        registry.load("m", tiny_model()).unwrap();
        let first = registry.get("m").unwrap().generation;
        assert!(registry.evict("m"));
        registry.load("m", tiny_model()).unwrap();
        let second = registry.get("m").unwrap().generation;
        assert_ne!(first, second, "same id reloaded must never share a generation");
    }

    #[test]
    fn reloads_grow_a_pinned_generation_chain() {
        let registry = ModelRegistry::new();
        registry.load("m", tiny_model()).unwrap();
        let first = registry.get("m").unwrap().generation;
        registry.load("m", tiny_model()).unwrap();
        let second = registry.get("m").unwrap().generation;
        assert_ne!(first, second);
        // Both generations resolve; the chain lists newest first.
        assert!(matches!(
            registry.get_generation("m", first),
            GenerationLookup::Found(e) if e.generation == first
        ));
        assert!(matches!(
            registry.get_generation("m", second),
            GenerationLookup::Found(e) if e.generation == second
        ));
        let chain: Vec<u64> =
            registry.generations("m").unwrap().iter().map(|e| e.generation).collect();
        assert_eq!(chain, vec![second, first]);
        assert_eq!(registry.len(), 1, "a chain is one id");
        assert_eq!(registry.list().len(), 1, "list shows current generations only");
    }

    #[test]
    fn old_generations_age_out_and_answer_evicted() {
        let registry = ModelRegistry::new();
        registry.load("m", tiny_model()).unwrap();
        let first = registry.get("m").unwrap().generation;
        for _ in 0..RETAINED_GENERATIONS {
            registry.load("m", tiny_model()).unwrap();
        }
        assert_eq!(registry.generations("m").unwrap().len(), RETAINED_GENERATIONS);
        let newest = registry.get("m").unwrap().generation;
        match registry.get_generation("m", first) {
            GenerationLookup::Evicted { newest: n } => assert_eq!(n, newest),
            other => panic!("expected Evicted, got {other:?}"),
        }
        assert!(matches!(registry.get_generation("ghost", 1), GenerationLookup::Unknown));
    }

    #[test]
    fn list_is_sorted_by_id() {
        let registry = ModelRegistry::new();
        registry.load("zeta", tiny_model()).unwrap();
        registry.load("alpha", tiny_model()).unwrap();
        let ids: Vec<String> = registry.list().iter().map(|e| e.id.clone()).collect();
        assert_eq!(ids, vec!["alpha", "zeta"]);
    }

    #[test]
    fn id_validation() {
        assert!(validate_id("adult-v1.2_final").is_ok());
        assert!(validate_id("").is_err());
        assert!(validate_id("has space").is_err());
        assert!(validate_id("slash/y").is_err());
        assert!(validate_id(&"x".repeat(MAX_ID_LEN + 1)).is_err());
        let registry = ModelRegistry::new();
        assert!(registry.load("bad id", tiny_model()).is_err());
    }
}
