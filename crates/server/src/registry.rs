//! The model registry: released models, loaded once, shared by every request.
//!
//! Each entry wraps a [`ReleasedModel`] in an [`Arc`]. Loading compiles the
//! model's alias tables **once** (via the `ReleasedModel` sampler cache), so
//! concurrent synthesis requests against the same model share one compiled
//! form instead of rebuilding it per request. Eviction only removes the
//! entry from the map: any request that already cloned the `Arc` keeps
//! streaming from the (still-alive) compiled model — an in-flight request is
//! never dropped by an eviction racing with it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use privbayes::CompiledSampler;
use privbayes_model::ReleasedModel;

use crate::error::ServerError;

/// Maximum accepted length of a model id or tenant name.
pub const MAX_ID_LEN: usize = 64;

/// Validates a registry/ledger identifier: 1..=64 chars from
/// `[A-Za-z0-9._-]`, so ids embed safely in paths, queries, and JSON.
///
/// # Errors
/// Returns [`ServerError::Protocol`] describing the violation.
pub fn validate_id(id: &str) -> Result<(), ServerError> {
    if id.is_empty() || id.len() > MAX_ID_LEN {
        return Err(ServerError::Protocol(format!(
            "id must have 1..={MAX_ID_LEN} characters, got {}",
            id.len()
        )));
    }
    if !id.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-')) {
        return Err(ServerError::Protocol(format!(
            "id `{id}` contains characters outside [A-Za-z0-9._-]"
        )));
    }
    Ok(())
}

/// Stamps every loaded entry with a process-unique generation, so caches
/// keyed on it can never confuse a reloaded model with its predecessor
/// (even when both carried the same id).
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// One registered model: the artifact plus its id.
#[derive(Debug)]
pub struct ModelEntry {
    /// The registry id the model was loaded under.
    pub id: String,
    /// The released artifact (owns the cached [`CompiledSampler`]).
    pub artifact: ReleasedModel,
    /// Process-unique load generation (fresh per [`ModelRegistry::load`]).
    pub generation: u64,
}

impl ModelEntry {
    /// The compiled sampler, built on first use and shared afterwards.
    ///
    /// # Errors
    /// Propagates compilation failures as [`ServerError::Model`].
    pub fn sampler(&self) -> Result<&CompiledSampler, ServerError> {
        self.artifact.compiled().map_err(ServerError::from)
    }
}

/// A concurrent map from model id to loaded model.
///
/// The map itself lives behind an [`Arc`] snapshot: readers clone the
/// current snapshot pointer under a momentary read lock and then walk it
/// with no lock held, so `GET /synth` lookups never contend with a
/// load/evict holding the write lock mid-rebuild.
#[derive(Debug)]
pub struct ModelRegistry {
    entries: RwLock<Arc<BTreeMap<String, Arc<ModelEntry>>>>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self { entries: RwLock::new(Arc::new(BTreeMap::new())) }
    }
}

impl ModelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `artifact` under `id`, eagerly compiling its sampler so the
    /// cost is paid at load time, not on the first synthesis request.
    /// Replaces any previous entry with the same id; returns `true` if the
    /// id was new.
    ///
    /// # Errors
    /// Returns [`ServerError::Protocol`] for an invalid id and
    /// [`ServerError::Model`] if the artifact fails to compile.
    pub fn load(&self, id: &str, artifact: ReleasedModel) -> Result<bool, ServerError> {
        validate_id(id)?;
        let entry = ModelEntry {
            id: id.to_string(),
            artifact,
            generation: GENERATION.fetch_add(1, Ordering::Relaxed),
        };
        entry.sampler()?; // compile once, up front
        let mut entries = self.entries.write().expect("registry lock poisoned");
        let mut next = BTreeMap::clone(&entries);
        let was_new = next.insert(id.to_string(), Arc::new(entry)).is_none();
        *entries = Arc::new(next);
        Ok(was_new)
    }

    /// The current map snapshot; walked lock-free by the caller.
    fn snapshot(&self) -> Arc<BTreeMap<String, Arc<ModelEntry>>> {
        Arc::clone(&self.entries.read().expect("registry lock poisoned"))
    }

    /// The entry for `id`, if loaded. The returned [`Arc`] keeps the model
    /// alive across a later eviction.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Arc<ModelEntry>> {
        self.snapshot().get(id).cloned()
    }

    /// Removes `id`; returns whether it was present. In-flight requests
    /// holding the entry's [`Arc`] are unaffected.
    #[must_use]
    pub fn evict(&self, id: &str) -> bool {
        let mut entries = self.entries.write().expect("registry lock poisoned");
        let mut next = BTreeMap::clone(&entries);
        let was_present = next.remove(id).is_some();
        *entries = Arc::new(next);
        was_present
    }

    /// All entries, sorted by id.
    #[must_use]
    pub fn list(&self) -> Vec<Arc<ModelEntry>> {
        self.snapshot().values().cloned().collect()
    }

    /// Number of loaded models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
    use privbayes_data::{Attribute, Dataset, Schema};
    use privbayes_model::ModelMetadata;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> ReleasedModel {
        let schema = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
        let rows: Vec<Vec<u32>> = (0..120).map(|i| vec![i % 2, (i + 1) % 2]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let options = PrivBayesOptions::new(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let result = PrivBayes::new(options.clone()).synthesize(&data, &mut rng).unwrap();
        ReleasedModel::new(
            ModelMetadata {
                method: "privbayes".into(),
                epsilon: options.epsilon,
                beta: options.beta,
                theta: options.theta,
                score: options.effective_score().name().to_string(),
                encoding: options.encoding.name().to_string(),
                source_rows: data.n(),
                comment: String::new(),
            },
            data.schema().clone(),
            result.model,
        )
        .unwrap()
    }

    #[test]
    fn load_get_evict_cycle() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        assert!(registry.load("m1", tiny_model()).unwrap(), "first load is new");
        assert!(!registry.load("m1", tiny_model()).unwrap(), "reload replaces");
        assert_eq!(registry.len(), 1);
        assert!(registry.get("m1").is_some());
        assert!(registry.get("m2").is_none());
        assert!(registry.evict("m1"));
        assert!(!registry.evict("m1"));
        assert!(registry.get("m1").is_none());
    }

    #[test]
    fn eviction_does_not_invalidate_held_entries() {
        let registry = ModelRegistry::new();
        registry.load("m", tiny_model()).unwrap();
        let held = registry.get("m").unwrap();
        assert!(registry.evict("m"));
        // The held Arc still samples fine after eviction.
        let sampler = held.sampler().unwrap();
        let data = sampler.sample_dataset(32, Some(1), &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(data.n(), 32);
    }

    #[test]
    fn reload_gets_a_fresh_generation() {
        let registry = ModelRegistry::new();
        registry.load("m", tiny_model()).unwrap();
        let first = registry.get("m").unwrap().generation;
        assert!(registry.evict("m"));
        registry.load("m", tiny_model()).unwrap();
        let second = registry.get("m").unwrap().generation;
        assert_ne!(first, second, "same id reloaded must never share a generation");
    }

    #[test]
    fn list_is_sorted_by_id() {
        let registry = ModelRegistry::new();
        registry.load("zeta", tiny_model()).unwrap();
        registry.load("alpha", tiny_model()).unwrap();
        let ids: Vec<String> = registry.list().iter().map(|e| e.id.clone()).collect();
        assert_eq!(ids, vec!["alpha", "zeta"]);
    }

    #[test]
    fn id_validation() {
        assert!(validate_id("adult-v1.2_final").is_ok());
        assert!(validate_id("").is_err());
        assert!(validate_id("has space").is_err());
        assert!(validate_id("slash/y").is_err());
        assert!(validate_id(&"x".repeat(MAX_ID_LEN + 1)).is_err());
        let registry = ModelRegistry::new();
        assert!(registry.load("bad id", tiny_model()).is_err());
    }
}
