//! Per-tenant online ingestion: durable dataset journals feeding live
//! incremental count engines.
//!
//! [`DatasetStore`] holds one state per tenant: the full coded dataset,
//! journaled as CRC-tagged `privbayes-dataset/1` JSON, and a live
//! [`CountEngine`] the rows have been appended into. An append batch is
//! validated against the tenant's schema, journaled with the same
//! write-temp → `fsync` → rename → directory-sync sequence the budget
//! ledger uses (one `FaultSite::DatasetPersist` step per persist under
//! fault injection), and only then merged into the engine — a persist
//! failure before the rename rolls the whole append back, so the journal
//! and the engine can never disagree about which rows exist, and a crash
//! at any instant leaves the file as either the complete old dataset or
//! the complete new one.
//!
//! Because [`CountEngine::append`] integer-adds batch counts into cached
//! tables, an engine grown by appends is bit-identical to one cold-built
//! over the concatenated data. A refit over the live engine therefore
//! produces exactly the network a from-scratch fit over all rows would —
//! the journal is only ever replayed at recovery.
//!
//! The store also owns the *when* of refitting: [`RefitPolicy`] names the
//! row-count and staleness triggers, [`DatasetStore::due_refits`] hands
//! out at most one in-flight [`RefitJob`] per tenant, and
//! [`DatasetStore::refit_finished`] records how many rows the new model
//! generation covers (journaled best-effort: losing that metadata can
//! only cause one extra — correctly ε-charged — refit after a restart,
//! never a missed charge).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use privbayes_data::csv::read_csv;
use privbayes_data::{Dataset, Schema};
use privbayes_marginals::CountEngine;
use privbayes_model::{schema_from_json, schema_to_json, Json};
use privbayes_synth::Method;

use crate::error::ServerError;
#[cfg(any(test, feature = "fault-injection"))]
use crate::fault::{Fault, FaultPlan, FaultSite, LedgerStep};
use crate::ledger::crc32;
use crate::registry::validate_id;

/// The dataset journal file format identifier.
pub const DATASET_FORMAT: &str = "privbayes-dataset/1";

/// When a tenant's accumulated rows trigger a background refit.
#[derive(Debug, Clone, PartialEq)]
pub struct RefitPolicy {
    /// Refit once at least this many rows are pending (appended since the
    /// last fitted generation). `u64::MAX` disables the row trigger.
    pub min_rows: u64,
    /// Refit once *any* rows have been pending this long, even if fewer
    /// than `min_rows`. `None` disables the staleness trigger.
    pub max_staleness: Option<Duration>,
}

impl RefitPolicy {
    /// A policy that never triggers (the server's default).
    #[must_use]
    pub fn disabled() -> Self {
        Self { min_rows: u64::MAX, max_staleness: None }
    }

    /// Whether either trigger can ever fire.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.min_rows != u64::MAX || self.max_staleness.is_some()
    }
}

/// What a tenant's background refits produce: which model to re-release,
/// with which method, and at what per-refit ε price. The seed is fixed so
/// every generation is a pure function of (data, spec) — the bit-identity
/// tests fit cold over the same rows and compare artifacts exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RefitSpec {
    /// The registry id the refit (re-)loads; each refit bumps its
    /// generation.
    pub model_id: String,
    /// The synthesis method to fit.
    pub method: Method,
    /// ε debited from the tenant's ledger per refit.
    pub epsilon: f64,
    /// The fit seed (deterministic across refits by design).
    pub seed: u64,
}

/// What one accepted append did to a tenant's dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReceipt {
    /// Rows in the accepted batch.
    pub batch_rows: u64,
    /// All rows ever accepted for the tenant.
    pub total_rows: u64,
    /// Rows not yet covered by a fitted model generation.
    pub pending_rows: u64,
}

/// A due refit handed to the server's refit driver. The tenant stays
/// marked in-flight until [`DatasetStore::refit_finished`] is called.
#[derive(Debug, Clone)]
pub struct RefitJob {
    /// The tenant whose data is due.
    pub tenant: String,
    /// What to fit and at what price.
    pub spec: RefitSpec,
    /// Rows the engine held when the job was cut — what the new
    /// generation will cover.
    pub total_rows: u64,
}

/// One row of [`DatasetStore::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantIngest {
    /// Tenant name.
    pub tenant: String,
    /// All rows ever accepted.
    pub total_rows: u64,
    /// Rows covered by the latest fitted generation.
    pub fitted_rows: u64,
    /// The tenant's refit target.
    pub refit: RefitSpec,
}

/// The wire encodings accepted for an ingest batch body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFormat {
    /// Headered CSV of coded values, exactly the `POST /fit` layout.
    Csv,
    /// One JSON object (attribute name → code) or array (codes in schema
    /// order) per line.
    Jsonl,
}

/// Parses a batch body into a [`Dataset`] over `schema`.
///
/// # Errors
/// Returns [`ServerError::Dataset`] for malformed rows, unknown
/// attributes, or out-of-domain codes.
pub fn parse_batch(
    schema: &Schema,
    format: BatchFormat,
    text: &str,
) -> Result<Dataset, ServerError> {
    match format {
        BatchFormat::Csv => read_csv(schema, text.as_bytes())
            .map_err(|e| ServerError::Dataset(format!("csv batch: {e}"))),
        BatchFormat::Jsonl => parse_jsonl(schema, text),
    }
}

fn parse_jsonl(schema: &Schema, text: &str) -> Result<Dataset, ServerError> {
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| ServerError::Dataset(format!("jsonl line {}: {msg}", index + 1));
        let json = Json::parse(line).map_err(|e| at(e.to_string()))?;
        let code = |value: Option<&Json>, name: &str| -> Result<u32, ServerError> {
            let raw = value
                .and_then(Json::as_usize)
                .ok_or_else(|| at(format!("missing or mistyped `{name}`")))?;
            u32::try_from(raw).map_err(|_| at(format!("`{name}` exceeds the code range")))
        };
        let row: Vec<u32> = if let Some(items) = json.as_array() {
            if items.len() != schema.len() {
                return Err(at(format!("expected {} codes, found {}", schema.len(), items.len())));
            }
            items
                .iter()
                .enumerate()
                .map(|(i, v)| code(Some(v), schema.attribute(i).name()))
                .collect::<Result<_, _>>()?
        } else if json.as_object().is_some() {
            schema
                .attributes()
                .iter()
                .map(|a| code(json.get(a.name()), a.name()))
                .collect::<Result<_, _>>()?
        } else {
            return Err(at("expected a JSON object or array of codes".into()));
        };
        rows.push(row);
    }
    Dataset::from_rows(schema.clone(), &rows)
        .map_err(|e| ServerError::Dataset(format!("jsonl batch: {e}")))
}

/// Everything the store tracks for one tenant. The engine owns the only
/// copy of the coded columns; the journal is rendered from it on demand.
#[derive(Debug)]
struct TenantState {
    engine: CountEngine,
    refit: RefitSpec,
    /// Rows covered by the latest fitted model generation.
    fitted_rows: u64,
    /// When the oldest currently-pending row arrived (drives the
    /// staleness trigger). Reset after every refit outcome.
    pending_since: Option<Instant>,
    /// Set while a [`RefitJob`] for this tenant is outstanding, so a slow
    /// refit is never doubled up.
    refit_inflight: bool,
}

impl TenantState {
    fn pending_rows(&self) -> u64 {
        (self.engine.n() as u64).saturating_sub(self.fitted_rows)
    }
}

/// Why a journal persist did not complete cleanly — same semantics as the
/// ledger's: after the rename the new dataset *is* the file, so the
/// mutation is kept; before it, nothing landed and the append rolls back.
struct PersistFailure {
    durable: bool,
    error: ServerError,
}

/// The per-tenant dataset store. See the module docs for the durability
/// and bit-identity contracts.
#[derive(Debug)]
pub struct DatasetStore {
    dir: Option<PathBuf>,
    tenants: Mutex<BTreeMap<String, Arc<Mutex<TenantState>>>>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Mutex<Option<Arc<FaultPlan>>>,
}

impl DatasetStore {
    /// A store with no journal directory: appends feed live engines but
    /// nothing survives a restart.
    #[must_use]
    pub fn in_memory() -> Self {
        Self {
            dir: None,
            tenants: Mutex::new(BTreeMap::new()),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: Mutex::new(None),
        }
    }

    /// Opens (creating if needed) a journal directory and recovers every
    /// `*.dataset.json` file in it: CRC-validated, schema-validated, and
    /// rebuilt into a live engine. Stray `*.tmp` debris from a crash
    /// mid-persist is ignored — the rename never landed, so the target
    /// file still holds the pre-crash dataset.
    ///
    /// # Errors
    /// Returns [`ServerError::Dataset`] if a journal file is unreadable,
    /// corrupt, or fails its checksum — a dataset that cannot be trusted
    /// must never be silently dropped or guessed at.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServerError> {
        let dir = dir.into();
        let io = |e: std::io::Error| ServerError::Dataset(format!("{}: {e}", dir.display()));
        std::fs::create_dir_all(&dir).map_err(io)?;
        let mut tenants = BTreeMap::new();
        for entry in std::fs::read_dir(&dir).map_err(io)? {
            let path = entry.map_err(io)?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let Some(tenant) = name.strip_suffix(".dataset.json") else { continue };
            let text = std::fs::read_to_string(&path)
                .map_err(|e| ServerError::Dataset(format!("{}: {e}", path.display())))?;
            let (named, state) = parse_journal(&text)
                .map_err(|e| ServerError::Dataset(format!("{}: {e}", path.display())))?;
            if named != tenant {
                return Err(ServerError::Dataset(format!(
                    "{}: journal names tenant `{named}`",
                    path.display()
                )));
            }
            tenants.insert(tenant.to_string(), Arc::new(Mutex::new(state)));
        }
        Ok(Self {
            dir: Some(dir),
            tenants: Mutex::new(tenants),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: Mutex::new(None),
        })
    }

    /// Installs (or clears) a fault plan consulted on every journal
    /// persist. Test-only: absent from release builds.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault.lock().expect("fault lock poisoned") = plan;
    }

    /// The registered tenants, in name order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TenantIngest> {
        let slots: Vec<(String, Arc<Mutex<TenantState>>)> = {
            let map = self.tenants.lock().expect("tenant map lock poisoned");
            map.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
        };
        slots
            .into_iter()
            .map(|(tenant, slot)| {
                let state = slot.lock().expect("tenant state lock poisoned");
                TenantIngest {
                    tenant,
                    total_rows: state.engine.n() as u64,
                    fitted_rows: state.fitted_rows,
                    refit: state.refit.clone(),
                }
            })
            .collect()
    }

    /// The schema the tenant's batches must match, if the tenant exists.
    #[must_use]
    pub fn schema(&self, tenant: &str) -> Option<Schema> {
        let slot = self.slot_of(tenant)?;
        let state = slot.lock().expect("tenant state lock poisoned");
        Some(state.engine.schema().clone())
    }

    /// Runs `f` against the tenant's live engine, holding the tenant's
    /// lock for the duration — appends to the same tenant wait, so the
    /// engine `f` sees is a consistent point-in-time dataset.
    pub fn with_engine<T>(&self, tenant: &str, f: impl FnOnce(&CountEngine) -> T) -> Option<T> {
        let slot = self.slot_of(tenant)?;
        let state = slot.lock().expect("tenant state lock poisoned");
        Some(f(&state.engine))
    }

    /// Appends a schema-validated batch to `tenant`'s dataset: journal
    /// first (durably), engine second — a persist failure before the
    /// rename returns the error with *nothing* appended.
    ///
    /// The first batch for a tenant must carry the [`RefitSpec`] naming
    /// what its refits produce; later batches may repeat it (it must
    /// match) or omit it.
    ///
    /// # Errors
    /// [`ServerError::Protocol`] for a bad tenant name,
    /// [`ServerError::Dataset`] for a schema/refit mismatch or a
    /// non-durable journal failure.
    pub fn append(
        &self,
        tenant: &str,
        batch: &Dataset,
        refit: Option<&RefitSpec>,
    ) -> Result<IngestReceipt, ServerError> {
        validate_id(tenant)?;
        if let Some(spec) = refit {
            validate_id(&spec.model_id)?;
            if !spec.epsilon.is_finite() || spec.epsilon <= 0.0 {
                return Err(ServerError::Dataset(format!(
                    "refit epsilon must be positive and finite, got {}",
                    spec.epsilon
                )));
            }
        }
        let slot = self.slot(tenant, batch.schema(), refit)?;
        let mut state = slot.lock().expect("tenant state lock poisoned");
        if state.engine.schema() != batch.schema() {
            return Err(ServerError::Dataset(format!(
                "batch schema does not match tenant `{tenant}`'s dataset"
            )));
        }
        if let Some(spec) = refit {
            if *spec != state.refit {
                return Err(ServerError::Dataset(format!(
                    "refit target differs from tenant `{tenant}`'s registered one \
                     (model `{}`, method `{}`, epsilon {}, seed {})",
                    state.refit.model_id,
                    state.refit.method.name(),
                    state.refit.epsilon,
                    state.refit.seed
                )));
            }
        }
        if batch.n() > 0 {
            if let Some(dir) = &self.dir {
                // Render the *post-append* dataset and persist it before
                // touching the engine: the journal is the commit point.
                let columns = appended_columns(&state.engine, batch);
                let inner = dataset_json(
                    tenant,
                    state.engine.schema(),
                    &columns,
                    state.engine.n() + batch.n(),
                    &state.refit,
                    state.fitted_rows,
                );
                if let Err(f) = self.persist(&Self::tenant_path(dir, tenant), &render(&inner)) {
                    if !f.durable {
                        return Err(f.error);
                    }
                }
            }
            state.engine.append(batch);
            if state.pending_since.is_none() {
                state.pending_since = Some(Instant::now());
            }
        }
        Ok(IngestReceipt {
            batch_rows: batch.n() as u64,
            total_rows: state.engine.n() as u64,
            pending_rows: state.pending_rows(),
        })
    }

    /// Cuts a [`RefitJob`] for every tenant the policy says is due, and
    /// marks each in-flight — the caller *must* answer every job with
    /// [`DatasetStore::refit_finished`], success or not, or the tenant
    /// never refits again.
    #[must_use]
    pub fn due_refits(&self, policy: &RefitPolicy) -> Vec<RefitJob> {
        let slots: Vec<(String, Arc<Mutex<TenantState>>)> = {
            let map = self.tenants.lock().expect("tenant map lock poisoned");
            map.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
        };
        let mut jobs = Vec::new();
        for (tenant, slot) in slots {
            let mut state = slot.lock().expect("tenant state lock poisoned");
            let pending = state.pending_rows();
            if state.refit_inflight || pending == 0 {
                continue;
            }
            let stale = state.pending_since.is_some_and(|since| {
                policy.max_staleness.is_some_and(|max| since.elapsed() >= max)
            });
            if pending >= policy.min_rows || stale {
                state.refit_inflight = true;
                jobs.push(RefitJob {
                    tenant,
                    spec: state.refit.clone(),
                    total_rows: state.engine.n() as u64,
                });
            }
        }
        jobs
    }

    /// Reports a [`RefitJob`]'s outcome. On success, `fitted_rows` is the
    /// job's `total_rows` — rows appended *during* the fit stay pending
    /// and re-trigger normally. On failure (`None`), the staleness clock
    /// restarts so a persistently failing refit retries at the staleness
    /// cadence instead of spinning.
    pub fn refit_finished(&self, tenant: &str, fitted_rows: Option<u64>) {
        let Some(slot) = self.slot_of(tenant) else { return };
        let mut state = slot.lock().expect("tenant state lock poisoned");
        state.refit_inflight = false;
        match fitted_rows {
            Some(rows) => {
                state.fitted_rows = state.fitted_rows.max(rows);
                state.pending_since = (state.pending_rows() > 0).then(Instant::now);
                // Best-effort metadata persist: if it fails, a restart
                // re-pends these rows and refits once more — an extra,
                // correctly charged fit, never a forgotten one.
                if let Some(dir) = &self.dir {
                    let columns: Vec<Vec<u32>> = (0..state.engine.schema().len())
                        .map(|a| state.engine.column(a).to_vec())
                        .collect();
                    let inner = dataset_json(
                        tenant,
                        state.engine.schema(),
                        &columns,
                        state.engine.n(),
                        &state.refit,
                        state.fitted_rows,
                    );
                    let _ = self.persist(&Self::tenant_path(dir, tenant), &render(&inner));
                }
            }
            None => state.pending_since = Some(Instant::now()),
        }
    }

    fn slot_of(&self, tenant: &str) -> Option<Arc<Mutex<TenantState>>> {
        self.tenants.lock().expect("tenant map lock poisoned").get(tenant).map(Arc::clone)
    }

    /// The tenant's slot, created from the batch schema + refit spec when
    /// absent. Creation requires the spec — a tenant with no refit target
    /// would accumulate rows it could never spend.
    fn slot(
        &self,
        tenant: &str,
        schema: &Schema,
        refit: Option<&RefitSpec>,
    ) -> Result<Arc<Mutex<TenantState>>, ServerError> {
        let mut map = self.tenants.lock().expect("tenant map lock poisoned");
        if let Some(slot) = map.get(tenant) {
            return Ok(Arc::clone(slot));
        }
        let Some(spec) = refit else {
            return Err(ServerError::Dataset(format!(
                "first ingest batch for tenant `{tenant}` must name a refit target \
                 (model_id, method, epsilon, seed)"
            )));
        };
        let state = TenantState {
            engine: CountEngine::new(&Dataset::empty(schema.clone())),
            refit: spec.clone(),
            fitted_rows: 0,
            pending_since: None,
            refit_inflight: false,
        };
        let slot = Arc::new(Mutex::new(state));
        map.insert(tenant.to_string(), Arc::clone(&slot));
        Ok(slot)
    }

    fn tenant_path(dir: &Path, tenant: &str) -> PathBuf {
        // `validate_id` admits only `[A-Za-z0-9._-]`, so the name can
        // never smuggle a path separator.
        dir.join(format!("{tenant}.dataset.json"))
    }

    /// The ledger's crash-durable persist sequence, verbatim, against the
    /// dataset journal: write sibling temp, `fsync` it, rename over the
    /// target, `fsync` the parent directory. One
    /// `FaultSite::DatasetPersist` step is consumed per call under fault
    /// injection; `CrashAt(step)` aborts immediately before the named
    /// step, exactly as `kill -9` at that instant would.
    fn persist(&self, path: &Path, body: &str) -> Result<(), PersistFailure> {
        let io_err = |e: std::io::Error| ServerError::Dataset(format!("{}: {e}", path.display()));
        let fail = |durable: bool, error: ServerError| -> PersistFailure {
            PersistFailure { durable, error }
        };
        let tmp = path.with_extension("tmp");

        #[cfg(any(test, feature = "fault-injection"))]
        let injected: Option<Fault> = self
            .fault
            .lock()
            .expect("fault lock poisoned")
            .as_ref()
            .map(Arc::clone)
            .and_then(|p| p.take(FaultSite::DatasetPersist));
        #[cfg(any(test, feature = "fault-injection"))]
        let crashed = |step: LedgerStep| -> Option<PersistFailure> {
            match injected {
                Some(Fault::CrashAt(s)) if s == step => Some(PersistFailure {
                    durable: step == LedgerStep::SyncDir,
                    error: ServerError::Dataset(format!("injected crash before {step:?}")),
                }),
                _ => None,
            }
        };

        #[cfg(any(test, feature = "fault-injection"))]
        {
            if let Some(f) = crashed(LedgerStep::WriteTmp) {
                return Err(f);
            }
            match injected {
                Some(Fault::Fail) => {
                    return Err(fail(
                        false,
                        ServerError::Dataset("injected persist failure".to_string()),
                    ))
                }
                Some(Fault::ShortWrite) => {
                    // Die halfway through writing the temp file: the
                    // target is untouched, the temp file is torn garbage.
                    let _ = std::fs::write(&tmp, &body.as_bytes()[..body.len() / 2]);
                    return Err(fail(
                        false,
                        ServerError::Dataset("injected crash mid temp-file write".to_string()),
                    ));
                }
                _ => {}
            }
        }

        let mut file = File::create(&tmp).map_err(|e| fail(false, io_err(e)))?;
        file.write_all(body.as_bytes()).map_err(|e| fail(false, io_err(e)))?;

        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(f) = crashed(LedgerStep::SyncTmp) {
            return Err(f);
        }

        file.sync_all().map_err(|e| fail(false, io_err(e)))?;
        drop(file);

        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(f) = crashed(LedgerStep::Rename) {
            return Err(f);
        }

        std::fs::rename(&tmp, path).map_err(|e| fail(false, io_err(e)))?;

        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(f) = crashed(LedgerStep::SyncDir) {
            return Err(f);
        }

        // Make the rename itself durable; past it the file already holds
        // the new dataset, so the caller keeps the append.
        #[cfg(unix)]
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = File::open(parent).and_then(|dir| dir.sync_all()) {
                return Err(fail(true, io_err(e)));
            }
        }
        Ok(())
    }
}

/// The tenant's full column set with `batch` appended — rendered before
/// the engine is touched, so the journal is always post-state.
fn appended_columns(engine: &CountEngine, batch: &Dataset) -> Vec<Vec<u32>> {
    (0..engine.schema().len())
        .map(|a| {
            let mut col = Vec::with_capacity(engine.n() + batch.n());
            col.extend_from_slice(engine.column(a));
            col.extend_from_slice(batch.column(a));
            col
        })
        .collect()
}

/// The canonical inner object the journal CRC is computed over.
fn dataset_json(
    tenant: &str,
    schema: &Schema,
    columns: &[Vec<u32>],
    rows: usize,
    refit: &RefitSpec,
    fitted_rows: u64,
) -> Json {
    Json::object(vec![
        ("tenant", Json::String(tenant.to_string())),
        ("rows", Json::from_usize(rows)),
        ("fitted_rows", Json::from_usize(fitted_rows as usize)),
        (
            "refit",
            Json::object(vec![
                ("model_id", Json::String(refit.model_id.clone())),
                ("method", Json::String(refit.method.name().to_string())),
                ("epsilon", Json::Number(refit.epsilon)),
                // Hex, not a JSON number: a u64 seed can exceed f64's
                // exact-integer range.
                ("seed", Json::String(format!("{:016x}", refit.seed))),
            ]),
        ),
        ("schema", schema_to_json(schema)),
        (
            "columns",
            Json::Array(
                columns
                    .iter()
                    .map(|col| {
                        Json::Array(col.iter().map(|&c| Json::from_usize(c as usize)).collect())
                    })
                    .collect(),
            ),
        ),
    ])
}

fn render(inner: &Json) -> String {
    let canonical = inner.to_string_compact().expect("codes are finite");
    let crc = crc32(canonical.as_bytes());
    Json::object(vec![
        ("format", Json::String(DATASET_FORMAT.to_string())),
        ("crc", Json::String(format!("{crc:08x}"))),
        ("dataset", inner.clone()),
    ])
    .to_string_pretty()
    .expect("codes are finite")
}

/// Parses and CRC-validates one journal file into a recovered tenant
/// state. The checksum is recomputed over the canonical re-rendering of
/// the parsed content (exactly like the v2 ledger), so whitespace is
/// irrelevant but any value corruption is caught.
fn parse_journal(text: &str) -> Result<(String, TenantState), String> {
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    match json.get("format").and_then(Json::as_str) {
        Some(DATASET_FORMAT) => {}
        other => return Err(format!("unsupported format {other:?}, expected `{DATASET_FORMAT}`")),
    }
    let dataset = json.get("dataset").ok_or("missing `dataset` object")?;
    let field = |name: &str| format!("missing or mistyped `{name}`");
    let tenant = dataset.get("tenant").and_then(Json::as_str).ok_or_else(|| field("tenant"))?;
    let rows = dataset.get("rows").and_then(Json::as_usize).ok_or_else(|| field("rows"))?;
    let fitted_rows =
        dataset.get("fitted_rows").and_then(Json::as_usize).ok_or_else(|| field("fitted_rows"))?
            as u64;
    let refit_json = dataset.get("refit").ok_or_else(|| field("refit"))?;
    let method_name =
        refit_json.get("method").and_then(Json::as_str).ok_or_else(|| field("method"))?;
    let refit = RefitSpec {
        model_id: refit_json
            .get("model_id")
            .and_then(Json::as_str)
            .ok_or_else(|| field("model_id"))?
            .to_string(),
        method: Method::parse(method_name)
            .ok_or_else(|| format!("unknown refit method `{method_name}`"))?,
        epsilon: refit_json
            .get("epsilon")
            .and_then(Json::as_f64)
            .ok_or_else(|| field("epsilon"))?,
        seed: refit_json
            .get("seed")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| field("seed"))?,
    };
    let schema = schema_from_json(dataset.get("schema").ok_or_else(|| field("schema"))?)
        .map_err(|e| e.to_string())?;
    let column_json =
        dataset.get("columns").and_then(Json::as_array).ok_or_else(|| field("columns"))?;
    let mut columns: Vec<Vec<u32>> = Vec::with_capacity(column_json.len());
    for (a, col) in column_json.iter().enumerate() {
        let items = col.as_array().ok_or_else(|| format!("column {a} is not an array"))?;
        let mut out = Vec::with_capacity(items.len());
        for v in items {
            let raw = v.as_usize().ok_or_else(|| format!("column {a} holds a non-code value"))?;
            out.push(u32::try_from(raw).map_err(|_| format!("column {a} code exceeds the range"))?);
        }
        columns.push(out);
    }
    let stored = json.get("crc").and_then(Json::as_str).ok_or("journal is missing `crc`")?;
    let canonical = dataset_json(tenant, &schema, &columns, rows, &refit, fitted_rows)
        .to_string_compact()
        .expect("codes are finite");
    let expected = format!("{:08x}", crc32(canonical.as_bytes()));
    if stored != expected {
        return Err(format!(
            "crc mismatch: file says {stored}, content hashes to {expected} \
             (corrupt dataset journal; refusing to guess at rows)"
        ));
    }
    let data = Dataset::from_columns(schema, columns).map_err(|e| e.to_string())?;
    if data.n() != rows {
        return Err(format!("journal says {rows} rows but columns hold {}", data.n()));
    }
    let fitted_rows = fitted_rows.min(rows as u64);
    let state = TenantState {
        pending_since: ((data.n() as u64) > fitted_rows).then(Instant::now),
        engine: CountEngine::new(&data),
        refit,
        fitted_rows,
        refit_inflight: false,
    };
    Ok((tenant.to_string(), state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::Attribute;
    use privbayes_marginals::{Axis, ContingencyTable};

    fn schema() -> Schema {
        Schema::new(vec![Attribute::binary("a"), Attribute::categorical("b", 3).unwrap()]).unwrap()
    }

    fn batch(rows: &[[u32; 2]]) -> Dataset {
        Dataset::from_rows(schema(), &rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap()
    }

    fn spec() -> RefitSpec {
        RefitSpec { model_id: "m".into(), method: Method::PrivBayes, epsilon: 0.5, seed: 7 }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("privbayes-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn first_batch_requires_a_refit_target() {
        let store = DatasetStore::in_memory();
        let err = store.append("acme", &batch(&[[0, 1]]), None).unwrap_err();
        assert!(err.to_string().contains("refit target"), "{err}");
        // With the spec, the same batch lands.
        let receipt = store.append("acme", &batch(&[[0, 1]]), Some(&spec())).unwrap();
        assert_eq!(receipt.batch_rows, 1);
        assert_eq!(receipt.total_rows, 1);
        assert_eq!(receipt.pending_rows, 1);
    }

    #[test]
    fn appends_accumulate_and_match_a_cold_table() {
        let store = DatasetStore::in_memory();
        store.append("acme", &batch(&[[0, 0], [1, 2]]), Some(&spec())).unwrap();
        store.append("acme", &batch(&[[1, 1], [0, 2], [1, 0]]), None).unwrap();
        let axes = [Axis::raw(0), Axis::raw(1)];
        let live = store.with_engine("acme", |e| e.joint(&axes)).unwrap();
        let all = batch(&[[0, 0], [1, 2], [1, 1], [0, 2], [1, 0]]);
        let cold = ContingencyTable::from_dataset(&all, &axes);
        assert_eq!(live, cold.values().to_vec());
    }

    #[test]
    fn schema_and_refit_mismatches_are_rejected() {
        let store = DatasetStore::in_memory();
        store.append("acme", &batch(&[[0, 0]]), Some(&spec())).unwrap();
        let other = Dataset::from_rows(
            Schema::new(vec![Attribute::binary("x"), Attribute::binary("y")]).unwrap(),
            &[vec![0, 1]],
        )
        .unwrap();
        let err = store.append("acme", &other, None).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        let wrong = RefitSpec { epsilon: 0.9, ..spec() };
        let err = store.append("acme", &batch(&[[1, 1]]), Some(&wrong)).unwrap_err();
        assert!(err.to_string().contains("refit target differs"), "{err}");
        // Neither rejection appended anything.
        assert_eq!(store.snapshot()[0].total_rows, 1);
    }

    #[test]
    fn journal_round_trips_through_recovery() {
        let dir = temp_dir("roundtrip");
        let store = DatasetStore::open(&dir).unwrap();
        store.append("acme", &batch(&[[0, 0], [1, 2]]), Some(&spec())).unwrap();
        store.append("acme", &batch(&[[1, 1]]), None).unwrap();
        store.refit_finished("acme", Some(3));
        drop(store);

        let recovered = DatasetStore::open(&dir).unwrap();
        let rows = recovered.snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tenant, "acme");
        assert_eq!(rows[0].total_rows, 3);
        assert_eq!(rows[0].fitted_rows, 3);
        assert_eq!(rows[0].refit, spec());
        let axes = [Axis::raw(0), Axis::raw(1)];
        let live = recovered.with_engine("acme", |e| e.joint(&axes)).unwrap();
        let all = batch(&[[0, 0], [1, 2], [1, 1]]);
        let cold = ContingencyTable::from_dataset(&all, &axes);
        assert_eq!(live, cold.values().to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journals_are_refused() {
        let dir = temp_dir("corrupt");
        let store = DatasetStore::open(&dir).unwrap();
        store.append("acme", &batch(&[[0, 0]]), Some(&spec())).unwrap();
        drop(store);
        let path = dir.join("acme.dataset.json");
        let flipped = std::fs::read_to_string(&path).unwrap().replace("\"rows\": 1", "\"rows\": 2");
        std::fs::write(&path, flipped).unwrap();
        let err = DatasetStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("crc mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_failure_rolls_the_append_back() {
        let dir = temp_dir("rollback");
        let store = DatasetStore::open(&dir).unwrap();
        store.append("acme", &batch(&[[0, 0]]), Some(&spec())).unwrap();
        let plan = Arc::new(FaultPlan::new().inject(FaultSite::DatasetPersist, 0, Fault::Fail));
        store.set_fault_plan(Some(plan));
        let err = store.append("acme", &batch(&[[1, 1]]), None).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(store.snapshot()[0].total_rows, 1, "failed append must not land");
        store.set_fault_plan(None);
        // The journal still holds exactly the pre-failure dataset.
        drop(store);
        let recovered = DatasetStore::open(&dir).unwrap();
        assert_eq!(recovered.snapshot()[0].total_rows, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refit_policy_triggers_and_single_flights() {
        let store = DatasetStore::in_memory();
        store.append("acme", &batch(&[[0, 0], [1, 1]]), Some(&spec())).unwrap();
        let rows_policy = RefitPolicy { min_rows: 3, max_staleness: None };
        assert!(store.due_refits(&rows_policy).is_empty(), "below the row floor");
        store.append("acme", &batch(&[[1, 2]]), None).unwrap();
        let jobs = store.due_refits(&rows_policy);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].tenant, "acme");
        assert_eq!(jobs[0].total_rows, 3);
        assert!(store.due_refits(&rows_policy).is_empty(), "in-flight jobs never double up");
        store.refit_finished("acme", Some(3));
        assert!(store.due_refits(&rows_policy).is_empty(), "nothing pending after success");
        // A staleness-only policy fires as soon as anything is pending.
        store.append("acme", &batch(&[[0, 2]]), None).unwrap();
        let stale_policy =
            RefitPolicy { min_rows: u64::MAX, max_staleness: Some(Duration::from_millis(0)) };
        assert_eq!(store.due_refits(&stale_policy).len(), 1);
        store.refit_finished("acme", None);
        assert!(
            store.due_refits(&RefitPolicy { min_rows: 1, max_staleness: None }).len() == 1,
            "failure keeps the rows pending"
        );
    }

    #[test]
    fn jsonl_batches_parse_in_both_row_shapes() {
        let s = schema();
        let text = "{\"a\": 1, \"b\": 2}\n\n[0, 1]\n";
        let data = parse_batch(&s, BatchFormat::Jsonl, text).unwrap();
        assert_eq!(data.n(), 2);
        assert_eq!(data.row(0), vec![1, 2]);
        assert_eq!(data.row(1), vec![0, 1]);
        assert!(parse_batch(&s, BatchFormat::Jsonl, "{\"a\": 1}").is_err(), "missing attribute");
        assert!(parse_batch(&s, BatchFormat::Jsonl, "[0, 9]").is_err(), "out-of-domain code");
        assert!(parse_batch(&s, BatchFormat::Jsonl, "7").is_err(), "scalar line");
        let csv = parse_batch(&s, BatchFormat::Csv, "a,b\n1,2\n").unwrap();
        assert_eq!(csv.row(0), vec![1, 2]);
    }
}
