//! `privbayes-server`: a concurrent synthesis service over released
//! PrivBayes models.
//!
//! The library crates fit, release, and sample models in-process; this crate
//! turns them into a *system*: a std-only HTTP/1.1 service (no async
//! runtime — a hand-rolled accept loop with persistent keep-alive
//! connections and per-worker sharded queues on
//! [`std::net::TcpListener`], in the same spirit as the scoped-thread
//! parallelism in `privbayes`'s greedy learner and sampler) with three
//! pieces:
//!
//! * **Model registry** ([`ModelRegistry`]): released models are loaded
//!   once, their alias-table [`CompiledSampler`]s compiled once, and shared
//!   (via [`std::sync::Arc`]) by every request. Eviction removes a model
//!   from the map without touching requests already streaming from it.
//! * **Budget ledger** ([`BudgetLedger`]): one `privbayes-dp`
//!   [`PrivacyBudget`] per tenant, debited atomically by fit requests and
//!   persisted as JSON so accounting survives restarts bit-for-bit. An
//!   over-budget request is rejected with a structured `402` body and no
//!   state change.
//! * **Streaming synthesis**: `POST /v1/models/{id}/synth` takes a typed
//!   [`SynthSpec`] body (evidence-conditioned cohorts, column projection,
//!   cursor-resumable streams) and streams CSV or NDJSON rows with chunked
//!   transfer encoding, one HTTP chunk per sampler chunk;
//!   `POST /v1/models/{id}/query` answers [`MarginalQuery`]s exactly from
//!   the released θ. The legacy `GET /models/{id}/synth` is kept as an
//!   alias that desugars to a default spec with unchanged bytes.
//!
//! # The determinism contract
//!
//! A synthesis response is a pure function of `(model, seed, rows, format)`.
//! Rows are generated in the sampler's fixed 1024-row chunk scheme
//! ([`privbayes::CHUNK_ROWS`]), each chunk's RNG stream derived from
//! `(seed, chunk index)` alone, so the streamed bytes are **identical** to
//! the batch `sample_synthetic` path for the same seed — regardless of how
//! many requests are in flight, which worker serves the connection, how
//! many workers the server runs, whether the connection is fresh or
//! reused, whether the chunks were replayed from the preformatted
//! [`RowBlockCache`] or sampled cold, or whether the model was evicted and
//! reloaded in between. The registry and ledger never participate in row
//! generation; they only decide *whether* a request runs.
//!
//! [`CompiledSampler`]: privbayes::CompiledSampler
//! [`PrivacyBudget`]: privbayes_dp::PrivacyBudget
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use privbayes_server::{BudgetLedger, Client, ModelRegistry, Server, ServerConfig};
//!
//! let registry = Arc::new(ModelRegistry::new());
//! let ledger = Arc::new(BudgetLedger::in_memory());
//! ledger.register("acme", 1.0).unwrap();
//! let server = Server::bind(
//!     "127.0.0.1:0",
//!     ServerConfig::default(),
//!     Arc::clone(&registry),
//!     Arc::clone(&ledger),
//! )
//! .unwrap();
//! let handle = server.spawn();
//!
//! let client = Client::new(handle.addr().to_string());
//! let health = client.health().unwrap();
//! assert_eq!(health.get("status").and_then(|s| s.as_str()), Some("ok"));
//! client.shutdown().unwrap();
//! handle.join().unwrap();
//! ```

pub mod cache;
pub mod client;
pub mod error;
#[cfg(any(test, feature = "fault-injection"))]
pub mod fault;
pub mod http;
pub mod ingest;
pub mod ledger;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod stream;

pub use cache::{BlockKey, CacheMetrics, RowBlockCache};
pub use client::{Client, RetryPolicy};
pub use error::ServerError;
#[cfg(any(test, feature = "fault-injection"))]
pub use fault::{Fault, FaultPlan, FaultSite, FaultStream, LedgerStep};
pub use http::{Request, Response};
pub use ingest::{
    parse_batch, BatchFormat, DatasetStore, IngestReceipt, RefitJob, RefitPolicy, RefitSpec,
    TenantIngest, DATASET_FORMAT,
};
pub use ledger::{
    BudgetLedger, LedgerError, LedgerObserver, TenantBudget, DEFAULT_LEDGER_STRIPES, LEDGER_FORMAT,
    LEDGER_FORMAT_V2,
};
pub use metrics::{ServerMetrics, REQUEST_ID_HEADER};
pub use registry::{GenerationLookup, ModelEntry, ModelRegistry, RETAINED_GENERATIONS};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use stream::RowFormat;
// The metric-snapshot surface, re-exported so scrape consumers (tests, the
// perf harness) can parse `/metrics` without a separate `privbayes-obs`
// dependency.
pub use privbayes_obs::{parse_text, Snapshot};
// The typed request surface of the query API, re-exported so client code
// can build specs without a separate `privbayes-synth` dependency.
pub use privbayes_synth::{AttrRef, Cursor, MarginalQuery, SpecError, SynthSpec, ValueRef};
