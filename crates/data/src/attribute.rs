//! Attribute metadata: name, kind, domain, and optional taxonomy.

use crate::domain::Domain;
use crate::error::DataError;
use crate::taxonomy::TaxonomyTree;

/// The kind of an attribute, mirroring the paper's three attribute classes.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeKind {
    /// A `{0,1}` attribute (NLTCS / ACS attributes, bits of binarised data).
    Binary,
    /// A categorical attribute with an unordered finite domain.
    Categorical,
    /// A continuous attribute, equi-width discretised into `bins` bins over
    /// `[min, max]` (§5.1 uses 16 bins).
    Continuous {
        /// Lower bound of the raw range.
        min: f64,
        /// Upper bound of the raw range.
        max: f64,
    },
}

/// A single attribute of a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    kind: AttributeKind,
    domain: Domain,
    taxonomy: Option<TaxonomyTree>,
}

impl Attribute {
    /// Creates a binary attribute.
    #[must_use]
    pub fn binary(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: AttributeKind::Binary,
            domain: Domain::binary(),
            taxonomy: None,
        }
    }

    /// Creates a categorical attribute over an unlabelled domain of `size` values.
    ///
    /// # Errors
    /// Propagates [`DataError::InvalidDomain`] for an empty domain.
    pub fn categorical(name: impl Into<String>, size: usize) -> Result<Self, DataError> {
        Ok(Self {
            name: name.into(),
            kind: AttributeKind::Categorical,
            domain: Domain::new(size)?,
            taxonomy: None,
        })
    }

    /// Creates a categorical attribute with labelled values.
    ///
    /// # Errors
    /// Propagates [`DataError::InvalidDomain`] for empty/duplicate labels.
    pub fn categorical_labelled<I, S>(name: impl Into<String>, labels: I) -> Result<Self, DataError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Ok(Self {
            name: name.into(),
            kind: AttributeKind::Categorical,
            domain: Domain::with_labels(labels)?,
            taxonomy: None,
        })
    }

    /// Creates a continuous attribute discretised into `bins` equi-width bins.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidDomain`] if `bins == 0` or `min >= max`.
    pub fn continuous(
        name: impl Into<String>,
        min: f64,
        max: f64,
        bins: usize,
    ) -> Result<Self, DataError> {
        if min >= max {
            return Err(DataError::InvalidDomain(format!(
                "continuous range [{min}, {max}] is empty"
            )));
        }
        Ok(Self {
            name: name.into(),
            kind: AttributeKind::Continuous { min, max },
            domain: Domain::new(bins)?,
            taxonomy: None,
        })
    }

    /// Attaches a taxonomy tree (for the hierarchical encoding).
    ///
    /// # Errors
    /// Returns [`DataError::InvalidTaxonomy`] if the tree's leaf count differs
    /// from the domain size.
    pub fn with_taxonomy(mut self, taxonomy: TaxonomyTree) -> Result<Self, DataError> {
        if taxonomy.leaf_count() != self.domain.size() {
            return Err(DataError::InvalidTaxonomy(format!(
                "taxonomy has {} leaves but attribute `{}` has domain size {}",
                taxonomy.leaf_count(),
                self.name,
                self.domain.size()
            )));
        }
        self.taxonomy = Some(taxonomy);
        Ok(self)
    }

    /// Attribute name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute kind.
    #[must_use]
    pub fn kind(&self) -> &AttributeKind {
        &self.kind
    }

    /// Coded domain.
    #[must_use]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Domain size shorthand.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        self.domain.size()
    }

    /// Taxonomy tree, if one is attached.
    #[must_use]
    pub fn taxonomy(&self) -> Option<&TaxonomyTree> {
        self.taxonomy.as_ref()
    }

    /// Whether the attribute is binary.
    #[must_use]
    pub fn is_binary(&self) -> bool {
        self.domain.is_binary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::TaxonomyTree;

    #[test]
    fn binary_attribute_has_domain_two() {
        let a = Attribute::binary("disabled");
        assert_eq!(a.domain_size(), 2);
        assert!(a.is_binary());
        assert_eq!(a.kind(), &AttributeKind::Binary);
    }

    #[test]
    fn categorical_with_labels() {
        let a = Attribute::categorical_labelled("workclass", ["private", "gov"]).unwrap();
        assert_eq!(a.domain_size(), 2);
        assert_eq!(a.domain().label(0), "private");
    }

    #[test]
    fn continuous_rejects_empty_range() {
        assert!(Attribute::continuous("age", 80.0, 0.0, 16).is_err());
        assert!(Attribute::continuous("age", 0.0, 80.0, 0).is_err());
        let a = Attribute::continuous("age", 0.0, 80.0, 16).unwrap();
        assert_eq!(a.domain_size(), 16);
    }

    #[test]
    fn taxonomy_leaf_count_must_match() {
        let a = Attribute::categorical("x", 4).unwrap();
        let good = TaxonomyTree::balanced_binary(4).unwrap();
        assert!(a.clone().with_taxonomy(good).is_ok());
        let bad = TaxonomyTree::balanced_binary(8).unwrap();
        assert!(a.with_taxonomy(bad).is_err());
    }
}
