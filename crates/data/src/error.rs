//! Error type shared by the data-model crate.

use std::fmt;

/// Errors raised while constructing or manipulating datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A value code was outside its attribute's domain.
    CodeOutOfDomain {
        /// Attribute name.
        attribute: String,
        /// Offending code.
        code: u32,
        /// Domain size of the attribute.
        domain_size: usize,
    },
    /// Columns of a dataset had differing lengths.
    RaggedColumns {
        /// Length of the first column.
        expected: usize,
        /// Length of the offending column.
        found: usize,
        /// Index of the offending column.
        column: usize,
    },
    /// The number of columns did not match the schema.
    ColumnCountMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of columns provided.
        found: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A taxonomy tree was structurally invalid.
    InvalidTaxonomy(String),
    /// A domain was empty or otherwise invalid.
    InvalidDomain(String),
    /// Malformed external data (CSV import).
    Parse(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::CodeOutOfDomain { attribute, code, domain_size } => write!(
                f,
                "value code {code} out of domain for attribute `{attribute}` (domain size {domain_size})"
            ),
            DataError::RaggedColumns { expected, found, column } => write!(
                f,
                "column {column} has {found} rows but the first column has {expected}"
            ),
            DataError::ColumnCountMismatch { expected, found } => {
                write!(f, "schema has {expected} attributes but {found} columns were provided")
            }
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::InvalidTaxonomy(msg) => write!(f, "invalid taxonomy: {msg}"),
            DataError::InvalidDomain(msg) => write!(f, "invalid domain: {msg}"),
            DataError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = DataError::CodeOutOfDomain { attribute: "age".into(), code: 9, domain_size: 4 };
        let s = e.to_string();
        assert!(s.contains("age") && s.contains('9') && s.contains('4'));

        let e = DataError::RaggedColumns { expected: 10, found: 7, column: 3 };
        assert!(e.to_string().contains("column 3"));

        let e = DataError::UnknownAttribute("salary".into());
        assert!(e.to_string().contains("salary"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<DataError>();
    }
}
