//! Attribute encodings (§5.1): binary, Gray, vanilla, hierarchical.
//!
//! The *vanilla* and *hierarchical* encodings keep attributes intact (the
//! hierarchical one additionally exposes taxonomy levels; see
//! [`crate::taxonomy`]), so they need no dataset transformation here. The
//! *binary* and *Gray* encodings decompose every attribute into
//! `⌈log₂ ℓ⌉` binary attributes; this module implements that transformation
//! and its inverse (used to decode synthetic data back to the original
//! domain).

use crate::attribute::Attribute;
use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::Schema;

/// Which of the paper's four encodings to use (Figures 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingKind {
    /// Natural binary code, MSB first.
    Binary,
    /// Gray code: successive values differ in one bit.
    Gray,
    /// Attributes kept whole; domains indivisible.
    Vanilla,
    /// Attributes kept whole; taxonomy levels available for generalisation.
    Hierarchical,
}

impl EncodingKind {
    /// Whether this encoding decomposes attributes into bits.
    #[must_use]
    pub fn is_bitwise(self) -> bool {
        matches!(self, EncodingKind::Binary | EncodingKind::Gray)
    }

    /// Display name matching the paper's figures (e.g. `Binary-F`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EncodingKind::Binary => "Binary",
            EncodingKind::Gray => "Gray",
            EncodingKind::Vanilla => "Vanilla",
            EncodingKind::Hierarchical => "Hierarchical",
        }
    }
}

/// Number of bits needed for a domain of `size` values.
#[must_use]
pub fn bits_for(size: usize) -> usize {
    if size <= 1 {
        0
    } else {
        (usize::BITS - (size - 1).leading_zeros()) as usize
    }
}

/// Natural-binary → Gray code.
#[must_use]
pub fn to_gray(v: u32) -> u32 {
    v ^ (v >> 1)
}

/// Gray → natural-binary code.
#[must_use]
pub fn from_gray(mut g: u32) -> u32 {
    let mut shift = 1;
    while shift < 32 {
        g ^= g >> shift;
        shift <<= 1;
    }
    g
}

/// Describes how one original attribute maps to a run of bit attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrBits {
    /// Index of the first bit attribute in the binarised schema.
    pub first_bit_attr: usize,
    /// Number of bit attributes (0 for constant attributes).
    pub bits: usize,
    /// Original domain size.
    pub domain_size: usize,
}

/// Mapping between an original schema and its binarised counterpart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinarizationMap {
    per_attr: Vec<AttrBits>,
    gray: bool,
    bit_attr_count: usize,
}

impl BinarizationMap {
    /// Per-original-attribute bit layout.
    #[must_use]
    pub fn per_attr(&self) -> &[AttrBits] {
        &self.per_attr
    }

    /// Whether Gray code is used.
    #[must_use]
    pub fn is_gray(&self) -> bool {
        self.gray
    }

    /// Total number of bit attributes.
    #[must_use]
    pub fn bit_attr_count(&self) -> usize {
        self.bit_attr_count
    }

    /// Encodes an original code into its per-bit values (MSB first).
    #[must_use]
    pub fn encode_value(&self, attr: usize, code: u32) -> Vec<u32> {
        let ab = &self.per_attr[attr];
        let v = if self.gray { to_gray(code) } else { code };
        (0..ab.bits).map(|j| (v >> (ab.bits - 1 - j)) & 1).collect()
    }

    /// Decodes per-bit values (MSB first) back to an original code, clamping
    /// invalid patterns (possible once noise is involved) to the largest code.
    #[must_use]
    pub fn decode_value(&self, attr: usize, bits: &[u32]) -> u32 {
        let ab = &self.per_attr[attr];
        debug_assert_eq!(bits.len(), ab.bits);
        let mut v: u32 = 0;
        for &b in bits {
            v = (v << 1) | (b & 1);
        }
        if self.gray {
            v = from_gray(v);
        }
        v.min(ab.domain_size as u32 - 1)
    }
}

/// Binarises a dataset under the given bitwise encoding.
///
/// Every attribute with domain size `ℓ ≥ 2` becomes `⌈log₂ ℓ⌉` binary
/// attributes named `name#b{j}` (MSB first). Constant attributes (ℓ = 1)
/// contribute no bit attributes and are reconstructed as the constant 0.
///
/// # Errors
/// Propagates schema-construction errors.
///
/// # Panics
/// Panics if `kind` is not a bitwise encoding.
pub fn binarize(
    dataset: &Dataset,
    kind: EncodingKind,
) -> Result<(Dataset, BinarizationMap), DataError> {
    assert!(kind.is_bitwise(), "binarize called with non-bitwise encoding {kind:?}");
    let gray = kind == EncodingKind::Gray;
    let schema = dataset.schema();
    let mut per_attr = Vec::with_capacity(schema.len());
    let mut bit_attrs = Vec::new();
    let mut columns: Vec<Vec<u32>> = Vec::new();
    for (i, attr) in schema.attributes().iter().enumerate() {
        let size = attr.domain_size();
        let bits = bits_for(size);
        per_attr.push(AttrBits { first_bit_attr: bit_attrs.len(), bits, domain_size: size });
        let source = dataset.column(i);
        for j in 0..bits {
            bit_attrs.push(Attribute::binary(format!("{}#b{j}", attr.name())));
            let shift = bits - 1 - j;
            columns.push(
                source
                    .iter()
                    .map(|&c| {
                        let v = if gray { to_gray(c) } else { c };
                        (v >> shift) & 1
                    })
                    .collect(),
            );
        }
    }
    let map = BinarizationMap { per_attr, gray, bit_attr_count: bit_attrs.len() };
    let bin_schema = Schema::new(bit_attrs)?;
    Ok((Dataset::from_columns(bin_schema, columns)?, map))
}

/// Inverse of [`binarize`]: reconstructs a dataset over `original_schema` from
/// a binarised dataset (e.g. synthetic output), clamping out-of-domain codes.
///
/// # Errors
/// Returns [`DataError::ColumnCountMismatch`] if the binarised dataset does
/// not match `map`, plus any dataset-construction error.
pub fn debinarize(
    binarized: &Dataset,
    map: &BinarizationMap,
    original_schema: &Schema,
) -> Result<Dataset, DataError> {
    if binarized.d() != map.bit_attr_count {
        return Err(DataError::ColumnCountMismatch {
            expected: map.bit_attr_count,
            found: binarized.d(),
        });
    }
    if original_schema.len() != map.per_attr.len() {
        return Err(DataError::ColumnCountMismatch {
            expected: map.per_attr.len(),
            found: original_schema.len(),
        });
    }
    let n = binarized.n();
    let mut columns: Vec<Vec<u32>> = Vec::with_capacity(original_schema.len());
    for ab in &map.per_attr {
        let mut col = vec![0u32; n];
        if ab.bits > 0 {
            for j in 0..ab.bits {
                let bit_col = binarized.column(ab.first_bit_attr + j);
                for (v, &b) in col.iter_mut().zip(bit_col) {
                    *v = (*v << 1) | (b & 1);
                }
            }
            let max = ab.domain_size as u32 - 1;
            for v in &mut col {
                if map.gray {
                    *v = from_gray(*v);
                }
                *v = (*v).min(max);
            }
        }
        columns.push(col);
    }
    Dataset::from_columns(original_schema.clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mixed_dataset() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("flag"),
            Attribute::categorical("work", 5).unwrap(),
            Attribute::continuous("age", 0.0, 80.0, 8).unwrap(),
        ])
        .unwrap();
        Dataset::from_rows(schema, &[vec![0, 4, 7], vec![1, 0, 0], vec![1, 3, 5], vec![0, 2, 2]])
            .unwrap()
    }

    #[test]
    fn bits_for_matches_paper() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(5), 3, "⌈log₂ 5⌉ = 3");
        assert_eq!(bits_for(8), 3);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(1), 0);
    }

    #[test]
    fn gray_code_adjacent_values_differ_in_one_bit() {
        for v in 0u32..255 {
            let diff = to_gray(v) ^ to_gray(v + 1);
            assert_eq!(diff.count_ones(), 1, "gray({v}) vs gray({})", v + 1);
        }
    }

    #[test]
    fn gray_round_trip() {
        for v in 0u32..1024 {
            assert_eq!(from_gray(to_gray(v)), v);
        }
    }

    #[test]
    fn binarize_shape() {
        let ds = mixed_dataset();
        let (bin, map) = binarize(&ds, EncodingKind::Binary).unwrap();
        // 1 + 3 + 3 bits.
        assert_eq!(bin.d(), 7);
        assert_eq!(map.bit_attr_count(), 7);
        assert_eq!(bin.n(), ds.n());
        assert!(bin.schema().all_binary());
        assert_eq!(bin.schema().attribute(1).name(), "work#b0");
    }

    #[test]
    fn binarize_msb_first() {
        let ds = mixed_dataset();
        let (bin, _) = binarize(&ds, EncodingKind::Binary).unwrap();
        // Row 0: work = 4 = 100₂ -> bits (1, 0, 0) at attrs 1..4.
        assert_eq!(bin.value(0, 1), 1);
        assert_eq!(bin.value(0, 2), 0);
        assert_eq!(bin.value(0, 3), 0);
    }

    #[test]
    fn round_trip_binary_and_gray() {
        let ds = mixed_dataset();
        for kind in [EncodingKind::Binary, EncodingKind::Gray] {
            let (bin, map) = binarize(&ds, kind).unwrap();
            let back = debinarize(&bin, &map, ds.schema()).unwrap();
            assert_eq!(back, ds, "{kind:?} round trip");
        }
    }

    #[test]
    fn decode_clamps_invalid_patterns() {
        let ds = mixed_dataset();
        let (_, map) = binarize(&ds, EncodingKind::Binary).unwrap();
        // work has domain 5 (codes 0..=4); pattern 111₂ = 7 must clamp to 4.
        assert_eq!(map.decode_value(1, &[1, 1, 1]), 4);
    }

    #[test]
    fn encode_decode_value_round_trip() {
        let ds = mixed_dataset();
        for kind in [EncodingKind::Binary, EncodingKind::Gray] {
            let (_, map) = binarize(&ds, kind).unwrap();
            for code in 0..5u32 {
                let bits = map.encode_value(1, code);
                assert_eq!(map.decode_value(1, &bits), code);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-bitwise")]
    fn binarize_rejects_vanilla() {
        let ds = mixed_dataset();
        let _ = binarize(&ds, EncodingKind::Vanilla);
    }

    proptest! {
        /// Binarise→debinarise is the identity for arbitrary datasets.
        #[test]
        fn prop_round_trip(
            rows in proptest::collection::vec((0u32..2, 0u32..7, 0u32..13), 1..40),
            gray in any::<bool>(),
        ) {
            let schema = Schema::new(vec![
                Attribute::binary("a"),
                Attribute::categorical("b", 7).unwrap(),
                Attribute::categorical("c", 13).unwrap(),
            ]).unwrap();
            let rows: Vec<Vec<u32>> = rows.into_iter().map(|(a, b, c)| vec![a, b, c]).collect();
            let ds = Dataset::from_rows(schema, &rows).unwrap();
            let kind = if gray { EncodingKind::Gray } else { EncodingKind::Binary };
            let (bin, map) = binarize(&ds, kind).unwrap();
            let back = debinarize(&bin, &map, ds.schema()).unwrap();
            prop_assert_eq!(back, ds);
        }

        /// Decoding any bit pattern lands inside the original domain.
        #[test]
        fn prop_decode_in_domain(pattern in 0u32..16, gray in any::<bool>()) {
            let schema = Schema::new(vec![Attribute::categorical("x", 11).unwrap()]).unwrap();
            let ds = Dataset::from_rows(schema, &[vec![0]]).unwrap();
            let kind = if gray { EncodingKind::Gray } else { EncodingKind::Binary };
            let (_, map) = binarize(&ds, kind).unwrap();
            let bits: Vec<u32> = (0..4).map(|j| (pattern >> (3 - j)) & 1).collect();
            let code = map.decode_value(0, &bits);
            prop_assert!(code < 11);
        }
    }
}
