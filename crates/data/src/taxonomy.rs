//! Taxonomy trees for attribute generalisation (§5.1, hierarchical encoding).
//!
//! A taxonomy tree partitions an attribute's domain into progressively coarser
//! levels. Level 0 is the original domain (the leaves); level `l+1` groups the
//! nodes of level `l`. The root (a single node covering the whole domain) is
//! excluded, matching the paper's `i ∈ [0, height(X))` convention: generalising
//! to a single value carries no information.

use crate::error::DataError;

/// A generalisation hierarchy over a coded domain.
///
/// Internally stores, for each level `l`, the mapping from a level-`l` code to
/// its parent's code at level `l+1`, plus a precomputed leaf→level lookup so
/// generalising a tuple is a single indexed load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyTree {
    /// `parent[l][c]` = code at level `l+1` of node `c` at level `l`.
    parent: Vec<Vec<u32>>,
    /// `leaf_to_level[l][leaf]` = code at level `l` of `leaf` (level 0 is identity).
    leaf_to_level: Vec<Vec<u32>>,
    /// Number of nodes at each level, `level_sizes\[0\]` = leaf count.
    level_sizes: Vec<usize>,
}

impl TaxonomyTree {
    /// Builds a taxonomy from explicit parent maps.
    ///
    /// `parent_maps[l][c]` gives the parent (level `l+1`) code of node `c` at
    /// level `l`. Parent codes must be dense (`0..max+1`) and each level must be
    /// strictly smaller than the one below. Levels whose size would be 1 (the
    /// root) must not be included.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidTaxonomy`] if any map is empty, non-dense,
    /// non-monotone, or reaches a single node before the last level.
    pub fn from_parent_maps(
        leaf_count: usize,
        parent_maps: Vec<Vec<u32>>,
    ) -> Result<Self, DataError> {
        if leaf_count == 0 {
            return Err(DataError::InvalidTaxonomy("no leaves".into()));
        }
        let mut level_sizes = vec![leaf_count];
        for (l, map) in parent_maps.iter().enumerate() {
            let expected = level_sizes[l];
            if map.len() != expected {
                return Err(DataError::InvalidTaxonomy(format!(
                    "level {l} parent map has {} entries, expected {expected}",
                    map.len()
                )));
            }
            let next = match map.iter().max() {
                Some(&m) => m as usize + 1,
                None => return Err(DataError::InvalidTaxonomy(format!("level {l} is empty"))),
            };
            // Dense codes: every code in 0..next must appear.
            let mut seen = vec![false; next];
            for &p in map {
                seen[p as usize] = true;
            }
            if seen.iter().any(|s| !s) {
                return Err(DataError::InvalidTaxonomy(format!(
                    "level {} codes are not dense",
                    l + 1
                )));
            }
            if next >= expected {
                return Err(DataError::InvalidTaxonomy(format!(
                    "level {} ({next} nodes) is not coarser than level {l} ({expected} nodes)",
                    l + 1
                )));
            }
            if next < 2 {
                return Err(DataError::InvalidTaxonomy(
                    "root level (size 1) must be excluded".into(),
                ));
            }
            level_sizes.push(next);
        }

        // Precompute leaf -> level lookups.
        let height = level_sizes.len();
        let mut leaf_to_level: Vec<Vec<u32>> = Vec::with_capacity(height);
        leaf_to_level.push((0..leaf_count as u32).collect());
        for l in 1..height {
            let prev = &leaf_to_level[l - 1];
            let map = &parent_maps[l - 1];
            leaf_to_level.push(prev.iter().map(|&c| map[c as usize]).collect());
        }

        Ok(Self { parent: parent_maps, leaf_to_level, level_sizes })
    }

    /// Builds a balanced binary taxonomy over `leaf_count` leaves: level `l+1`
    /// merges adjacent pairs of level-`l` nodes. This is the tree the paper
    /// uses for discretised continuous attributes (Figure 2).
    ///
    /// # Errors
    /// Returns [`DataError::InvalidTaxonomy`] if `leaf_count < 2`.
    pub fn balanced_binary(leaf_count: usize) -> Result<Self, DataError> {
        if leaf_count < 2 {
            return Err(DataError::InvalidTaxonomy("need at least two leaves".into()));
        }
        let mut maps = Vec::new();
        let mut size = leaf_count;
        while size.div_ceil(2) >= 2 {
            let next = size.div_ceil(2);
            maps.push((0..size as u32).map(|c| c / 2).collect());
            size = next;
        }
        Self::from_parent_maps(leaf_count, maps)
    }

    /// Builds a two-level taxonomy from named groups: `groups[g]` lists the
    /// leaf codes generalising to group `g` (Figure 3's "workclass" style).
    ///
    /// # Errors
    /// Returns [`DataError::InvalidTaxonomy`] if groups do not partition the
    /// domain or there are fewer than two groups.
    pub fn from_groups(leaf_count: usize, groups: &[Vec<u32>]) -> Result<Self, DataError> {
        if groups.len() < 2 {
            return Err(DataError::InvalidTaxonomy("need at least two groups".into()));
        }
        let mut map = vec![u32::MAX; leaf_count];
        for (g, members) in groups.iter().enumerate() {
            for &leaf in members {
                let slot = map.get_mut(leaf as usize).ok_or_else(|| {
                    DataError::InvalidTaxonomy(format!("leaf {leaf} out of range"))
                })?;
                if *slot != u32::MAX {
                    return Err(DataError::InvalidTaxonomy(format!("leaf {leaf} in two groups")));
                }
                *slot = g as u32;
            }
        }
        if map.contains(&u32::MAX) {
            return Err(DataError::InvalidTaxonomy("groups do not cover the domain".into()));
        }
        Self::from_parent_maps(leaf_count, vec![map])
    }

    /// The flat taxonomy: leaves only (vanilla encoding is the special case of
    /// hierarchical encoding with this tree).
    #[must_use]
    pub fn flat(leaf_count: usize) -> Self {
        Self {
            parent: Vec::new(),
            leaf_to_level: vec![(0..leaf_count as u32).collect()],
            level_sizes: vec![leaf_count],
        }
    }

    /// Number of generalisation levels (≥ 1); valid levels are `0..height()`.
    #[must_use]
    pub fn height(&self) -> usize {
        self.level_sizes.len()
    }

    /// Number of leaves (= attribute domain size).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.level_sizes[0]
    }

    /// Number of nodes at `level`.
    ///
    /// # Panics
    /// Panics if `level >= height()`.
    #[must_use]
    pub fn level_size(&self, level: usize) -> usize {
        self.level_sizes[level]
    }

    /// Generalises a leaf code to its ancestor at `level`.
    ///
    /// # Panics
    /// Panics if `level >= height()` or `leaf` is out of range.
    #[must_use]
    pub fn generalize(&self, leaf: u32, level: usize) -> u32 {
        self.leaf_to_level[level][leaf as usize]
    }

    /// The full leaf→`level` lookup table (used for bulk generalisation).
    ///
    /// # Panics
    /// Panics if `level >= height()`.
    #[must_use]
    pub fn level_lookup(&self, level: usize) -> &[u32] {
        &self.leaf_to_level[level]
    }

    /// Leaves mapping to node `node` at `level` (inverse of [`generalize`](Self::generalize)).
    #[must_use]
    pub fn leaves_of(&self, node: u32, level: usize) -> Vec<u32> {
        self.leaf_to_level[level]
            .iter()
            .enumerate()
            .filter_map(|(leaf, &anc)| (anc == node).then_some(leaf as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn balanced_binary_16_matches_figure_2() {
        // Figure 2: 8 age bins -> 4 pairs -> 2 halves (root excluded).
        let t = TaxonomyTree::balanced_binary(8).unwrap();
        assert_eq!(t.height(), 3);
        assert_eq!(t.level_size(0), 8);
        assert_eq!(t.level_size(1), 4);
        assert_eq!(t.level_size(2), 2);
        // (30,40] is bin 3; its level-1 ancestor is (20,40] = node 1; level-2 is (0,40] = node 0.
        assert_eq!(t.generalize(3, 1), 1);
        assert_eq!(t.generalize(3, 2), 0);
        assert_eq!(t.generalize(7, 2), 1);
    }

    #[test]
    fn from_groups_matches_figure_3() {
        // workclass: 8 values into {self-employed, government, private, unemployed}.
        let t = TaxonomyTree::from_groups(8, &[vec![0, 1], vec![2, 3, 4], vec![5], vec![6, 7]])
            .unwrap();
        assert_eq!(t.height(), 2);
        assert_eq!(t.level_size(1), 4);
        assert_eq!(t.generalize(3, 1), 1, "state-gov -> government");
        assert_eq!(t.generalize(5, 1), 2, "private -> private group");
        assert_eq!(t.leaves_of(1, 1), vec![2, 3, 4]);
    }

    #[test]
    fn flat_taxonomy_has_single_level() {
        let t = TaxonomyTree::flat(5);
        assert_eq!(t.height(), 1);
        assert_eq!(t.generalize(4, 0), 4);
    }

    #[test]
    fn rejects_non_coarser_levels() {
        // Identity map: level 1 same size as level 0.
        let r = TaxonomyTree::from_parent_maps(3, vec![vec![0, 1, 2]]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_root_level() {
        let r = TaxonomyTree::from_parent_maps(3, vec![vec![0, 0, 0]]);
        assert!(r.is_err(), "a level of size 1 is the root and must be excluded");
    }

    #[test]
    fn rejects_sparse_codes() {
        // Parent codes {0, 2} skip 1.
        let r = TaxonomyTree::from_parent_maps(4, vec![vec![0, 0, 2, 2]]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_overlapping_groups() {
        assert!(TaxonomyTree::from_groups(4, &[vec![0, 1], vec![1, 2, 3]]).is_err());
        assert!(TaxonomyTree::from_groups(4, &[vec![0, 1], vec![2]]).is_err());
    }

    proptest! {
        /// Generalisation is monotone: ancestors at a coarser level are a
        /// function of ancestors at a finer level.
        #[test]
        fn generalization_is_consistent(leaves in 4usize..64, seed in any::<u64>()) {
            let t = TaxonomyTree::balanced_binary(leaves).unwrap();
            let leaf = (seed % leaves as u64) as u32;
            for l in 0..t.height() - 1 {
                let fine = t.generalize(leaf, l);
                let coarse = t.generalize(leaf, l + 1);
                // Every leaf under `fine` maps to `coarse`.
                for other in 0..leaves as u32 {
                    if t.generalize(other, l) == fine {
                        prop_assert_eq!(t.generalize(other, l + 1), coarse);
                    }
                }
            }
        }

        /// Level sizes strictly decrease and each level's codes are dense.
        #[test]
        fn levels_strictly_decrease(leaves in 4usize..64) {
            let t = TaxonomyTree::balanced_binary(leaves).unwrap();
            for l in 1..t.height() {
                prop_assert!(t.level_size(l) < t.level_size(l - 1));
                let mut seen = vec![false; t.level_size(l)];
                for leaf in 0..leaves as u32 {
                    seen[t.generalize(leaf, l) as usize] = true;
                }
                prop_assert!(seen.iter().all(|&s| s));
            }
        }
    }
}
