//! Columnar datasets of coded values.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::DataError;
use crate::schema::Schema;

/// A table of `u32` codes stored column-major.
///
/// Column-major storage makes joint-distribution materialisation over small
/// attribute subsets cache-friendly: only the touched columns are read.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Box<[u32]>>,
    n: usize,
}

impl Dataset {
    /// Creates a dataset from columns, validating shapes and domains.
    ///
    /// # Errors
    /// Returns [`DataError::ColumnCountMismatch`], [`DataError::RaggedColumns`],
    /// or [`DataError::CodeOutOfDomain`] on invalid input.
    pub fn from_columns(schema: Schema, columns: Vec<Vec<u32>>) -> Result<Self, DataError> {
        if columns.len() != schema.len() {
            return Err(DataError::ColumnCountMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let n = columns.first().map_or(0, Vec::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != n {
                return Err(DataError::RaggedColumns { expected: n, found: col.len(), column: i });
            }
            let domain = schema.attribute(i).domain();
            if let Some(&bad) = col.iter().find(|&&c| !domain.contains(c)) {
                return Err(DataError::CodeOutOfDomain {
                    attribute: schema.attribute(i).name().to_string(),
                    code: bad,
                    domain_size: domain.size(),
                });
            }
        }
        Ok(Self { schema, columns: columns.into_iter().map(Vec::into_boxed_slice).collect(), n })
    }

    /// Creates a dataset from row tuples.
    ///
    /// # Errors
    /// Same as [`Dataset::from_columns`].
    pub fn from_rows(schema: Schema, rows: &[Vec<u32>]) -> Result<Self, DataError> {
        let d = schema.len();
        let mut columns: Vec<Vec<u32>> = vec![Vec::with_capacity(rows.len()); d];
        for row in rows {
            if row.len() != d {
                return Err(DataError::ColumnCountMismatch { expected: d, found: row.len() });
            }
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Self::from_columns(schema, columns)
    }

    /// An empty dataset over `schema`.
    #[must_use]
    pub fn empty(schema: Schema) -> Self {
        let d = schema.len();
        Self { schema, columns: vec![Vec::new().into_boxed_slice(); d], n: 0 }
    }

    /// Number of tuples (the paper's `n`).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of attributes (the paper's `d`).
    #[must_use]
    pub fn d(&self) -> usize {
        self.schema.len()
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Column of attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    #[must_use]
    pub fn column(&self, attr: usize) -> &[u32] {
        &self.columns[attr]
    }

    /// Value of attribute `attr` in row `row`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn value(&self, row: usize, attr: usize) -> u32 {
        self.columns[attr][row]
    }

    /// Materialises row `row` as a tuple of codes.
    #[must_use]
    pub fn row(&self, row: usize) -> Vec<u32> {
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// Returns a new dataset containing the rows at `indices` (in order).
    ///
    /// # Panics
    /// Panics if an index is out of range.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let columns: Vec<Box<[u32]>> =
            self.columns.iter().map(|col| indices.iter().map(|&i| col[i]).collect()).collect();
        Self { schema: self.schema.clone(), columns, n: indices.len() }
    }

    /// Splits into (train, test) with `train_fraction` of rows in train,
    /// shuffled by `rng`. The paper's classification task uses 80/20.
    pub fn split_train_test<R: Rng + ?Sized>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> (Self, Self) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must lie in [0, 1], got {train_fraction}"
        );
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.shuffle(rng);
        let cut = ((self.n as f64) * train_fraction).round() as usize;
        (self.select_rows(&idx[..cut]), self.select_rows(&idx[cut..]))
    }

    /// Uniform random subsample of `m` rows without replacement.
    ///
    /// # Panics
    /// Panics if `m > n`.
    pub fn subsample<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Self {
        assert!(m <= self.n, "cannot sample {m} rows from {}", self.n);
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.shuffle(rng);
        idx.truncate(m);
        self.select_rows(&idx)
    }

    /// Projects onto a subset of attributes (columns), preserving order.
    ///
    /// # Errors
    /// Returns [`DataError::UnknownAttribute`] if an index is out of range.
    pub fn project(&self, attrs: &[usize]) -> Result<Self, DataError> {
        for &a in attrs {
            if a >= self.d() {
                return Err(DataError::UnknownAttribute(format!("attribute index {a}")));
            }
        }
        let schema =
            Schema::new(attrs.iter().map(|&a| self.schema.attribute(a).clone()).collect())?;
        let columns: Vec<Box<[u32]>> = attrs.iter().map(|&a| self.columns[a].clone()).collect();
        Ok(Self { schema, columns, n: self.n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema3() -> Schema {
        Schema::new(vec![
            Attribute::binary("a"),
            Attribute::categorical("b", 3).unwrap(),
            Attribute::binary("c"),
        ])
        .unwrap()
    }

    fn sample() -> Dataset {
        Dataset::from_rows(
            schema3(),
            &[vec![0, 0, 1], vec![1, 2, 0], vec![0, 1, 1], vec![1, 1, 0], vec![0, 2, 0]],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_rows_and_columns() {
        let ds = sample();
        assert_eq!(ds.n(), 5);
        assert_eq!(ds.d(), 3);
        assert_eq!(ds.row(1), vec![1, 2, 0]);
        assert_eq!(ds.column(1), &[0, 2, 1, 1, 2]);
        assert_eq!(ds.value(4, 1), 2);
    }

    #[test]
    fn from_columns_validates_domains() {
        let r = Dataset::from_columns(schema3(), vec![vec![0, 2], vec![0, 0], vec![0, 0]]);
        assert!(matches!(r, Err(DataError::CodeOutOfDomain { .. })));
    }

    #[test]
    fn from_columns_validates_shapes() {
        let r = Dataset::from_columns(schema3(), vec![vec![0], vec![0, 0], vec![0]]);
        assert!(matches!(r, Err(DataError::RaggedColumns { .. })));
        let r = Dataset::from_columns(schema3(), vec![vec![0], vec![0]]);
        assert!(matches!(r, Err(DataError::ColumnCountMismatch { .. })));
    }

    #[test]
    fn split_preserves_rows() {
        let ds = sample();
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = ds.split_train_test(0.8, &mut rng);
        assert_eq!(train.n(), 4);
        assert_eq!(test.n(), 1);
        // Every original row appears exactly once across the split.
        let mut rows: Vec<Vec<u32>> = (0..train.n())
            .map(|i| train.row(i))
            .chain((0..test.n()).map(|i| test.row(i)))
            .collect();
        rows.sort();
        let mut orig: Vec<Vec<u32>> = (0..ds.n()).map(|i| ds.row(i)).collect();
        orig.sort();
        assert_eq!(rows, orig);
    }

    #[test]
    fn project_keeps_selected_columns() {
        let ds = sample();
        let p = ds.project(&[2, 0]).unwrap();
        assert_eq!(p.d(), 2);
        assert_eq!(p.schema().attribute(0).name(), "c");
        assert_eq!(p.column(0), ds.column(2));
        assert!(ds.project(&[9]).is_err());
    }

    #[test]
    fn subsample_size() {
        let ds = sample();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(ds.subsample(3, &mut rng).n(), 3);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::empty(schema3());
        assert_eq!(ds.n(), 0);
        assert_eq!(ds.d(), 3);
    }
}
