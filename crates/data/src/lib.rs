//! Tabular data model for the PrivBayes reproduction.
//!
//! The paper operates on relational tables whose attributes are binary,
//! categorical, or continuous. This crate provides:
//!
//! * [`Attribute`] / [`Schema`] — typed attribute metadata with finite coded
//!   domains (continuous attributes are equi-width discretised, §5.1),
//! * [`Dataset`] — a columnar table of `u32` codes,
//! * [`taxonomy::TaxonomyTree`] — generalisation hierarchies used by the
//!   hierarchical encoding (§5.1, Figures 2–3),
//! * [`encoding`] — the four attribute encodings evaluated in §6.3
//!   (binary, Gray, vanilla, hierarchical),
//! * [`csv`] — plain-text import/export used by the examples.
//!
//! Values are stored as dense codes in `0..domain_size`, which keeps joint
//! distribution materialisation O(n·k) per attribute subset and independent of
//! the total domain size — the property that lets PrivBayes sidestep the
//! output-scalability problem described in the paper's introduction.

pub mod attribute;
pub mod csv;
pub mod dataset;
pub mod discretize;
pub mod domain;
pub mod encoding;
pub mod error;
pub mod schema;
pub mod taxonomy;

pub use attribute::{Attribute, AttributeKind};
pub use dataset::Dataset;
pub use domain::Domain;
pub use error::DataError;
pub use schema::Schema;
pub use taxonomy::TaxonomyTree;
