//! Finite, coded attribute domains.

use crate::error::DataError;

/// A finite domain of attribute values.
///
/// Values are referred to by dense codes `0..size`. Labels are optional and
/// only used for display / CSV round-trips; all algorithms operate on codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    size: usize,
    labels: Option<Vec<String>>,
}

impl Domain {
    /// Creates an unlabelled domain with `size` values.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidDomain`] if `size == 0`.
    pub fn new(size: usize) -> Result<Self, DataError> {
        if size == 0 {
            return Err(DataError::InvalidDomain("domain must contain at least one value".into()));
        }
        Ok(Self { size, labels: None })
    }

    /// Creates a labelled domain; the domain size is the number of labels.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidDomain`] if `labels` is empty or contains
    /// duplicates.
    pub fn with_labels<I, S>(labels: I) -> Result<Self, DataError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        if labels.is_empty() {
            return Err(DataError::InvalidDomain("label list is empty".into()));
        }
        for (i, a) in labels.iter().enumerate() {
            if labels[..i].contains(a) {
                return Err(DataError::InvalidDomain(format!("duplicate label `{a}`")));
            }
        }
        Ok(Self { size: labels.len(), labels: Some(labels) })
    }

    /// A binary domain `{0, 1}`.
    #[must_use]
    pub fn binary() -> Self {
        Self { size: 2, labels: None }
    }

    /// Number of values in the domain.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the domain is binary.
    #[must_use]
    pub fn is_binary(&self) -> bool {
        self.size == 2
    }

    /// Label of `code`, or a synthesised `"v{code}"` if unlabelled.
    ///
    /// # Panics
    /// Panics if `code` is out of the domain.
    #[must_use]
    pub fn label(&self, code: u32) -> String {
        assert!((code as usize) < self.size, "code {code} out of domain of size {}", self.size);
        match &self.labels {
            Some(labels) => labels[code as usize].clone(),
            None => format!("v{code}"),
        }
    }

    /// Looks up the code of a label (only for labelled domains).
    #[must_use]
    pub fn code_of(&self, label: &str) -> Option<u32> {
        self.labels.as_ref().and_then(|ls| ls.iter().position(|l| l == label)).map(|i| i as u32)
    }

    /// The explicit labels, if the domain was built with [`Domain::with_labels`].
    ///
    /// Unlabelled domains return `None` (their display labels are synthesised
    /// on the fly by [`Domain::label`]).
    #[must_use]
    pub fn labels(&self) -> Option<&[String]> {
        self.labels.as_deref()
    }

    /// Checks that `code` lies in the domain.
    #[must_use]
    pub fn contains(&self, code: u32) -> bool {
        (code as usize) < self.size
    }

    /// Iterator over all codes in the domain.
    pub fn codes(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.size as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty() {
        assert!(Domain::new(0).is_err());
        assert!(Domain::new(1).is_ok());
    }

    #[test]
    fn binary_domain() {
        let d = Domain::binary();
        assert_eq!(d.size(), 2);
        assert!(d.is_binary());
        assert!(d.contains(1));
        assert!(!d.contains(2));
    }

    #[test]
    fn labels_round_trip() {
        let d = Domain::with_labels(["private", "government", "self-employed"]).unwrap();
        assert_eq!(d.size(), 3);
        assert_eq!(d.label(1), "government");
        assert_eq!(d.code_of("self-employed"), Some(2));
        assert_eq!(d.code_of("nope"), None);
    }

    #[test]
    fn duplicate_labels_rejected() {
        assert!(Domain::with_labels(["a", "b", "a"]).is_err());
    }

    #[test]
    fn unlabelled_labels_synthesised() {
        let d = Domain::new(4).unwrap();
        assert_eq!(d.label(3), "v3");
        assert_eq!(d.code_of("v3"), None, "unlabelled domains do not reverse-lookup");
    }

    #[test]
    fn codes_iterates_whole_domain() {
        let d = Domain::new(5).unwrap();
        let codes: Vec<u32> = d.codes().collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn label_panics_out_of_domain() {
        let _ = Domain::new(2).unwrap().label(5);
    }
}
