//! Minimal CSV import/export for datasets (used by the examples).
//!
//! The format is deliberately simple: a header of attribute names followed by
//! one comma-separated row per tuple. Labelled categorical values are written
//! as labels; everything else as numeric codes. No quoting/escaping is
//! supported — attribute labels in this suite contain no commas.

use std::io::{BufRead, Write};

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::Schema;

/// Writes `dataset` as CSV.
///
/// # Errors
/// Propagates I/O errors as [`DataError::Parse`].
pub fn write_csv<W: Write>(dataset: &Dataset, out: &mut W) -> Result<(), DataError> {
    let io = |e: std::io::Error| DataError::Parse(e.to_string());
    let schema = dataset.schema();
    let header: Vec<&str> = schema.attributes().iter().map(|a| a.name()).collect();
    writeln!(out, "{}", header.join(",")).map_err(io)?;
    for row in 0..dataset.n() {
        let mut cells = Vec::with_capacity(dataset.d());
        for attr in 0..dataset.d() {
            let code = dataset.value(row, attr);
            cells.push(schema.attribute(attr).domain().label(code));
        }
        writeln!(out, "{}", cells.join(",")).map_err(io)?;
    }
    Ok(())
}

/// Reads a CSV produced by [`write_csv`] back into a dataset over `schema`.
///
/// Cells are resolved first as domain labels, then as `v{code}` synthesised
/// labels, then as bare integer codes.
///
/// # Errors
/// Returns [`DataError::Parse`] on malformed input and domain violations.
pub fn read_csv<R: BufRead>(schema: &Schema, input: R) -> Result<Dataset, DataError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| DataError::Parse("missing header".into()))?
        .map_err(|e| DataError::Parse(e.to_string()))?;
    let names: Vec<&str> = header.split(',').collect();
    if names.len() != schema.len() {
        return Err(DataError::Parse(format!(
            "header has {} columns, schema has {}",
            names.len(),
            schema.len()
        )));
    }
    for (i, name) in names.iter().enumerate() {
        if schema.attribute(i).name() != *name {
            return Err(DataError::Parse(format!(
                "column {i} is `{name}`, expected `{}`",
                schema.attribute(i).name()
            )));
        }
    }

    let mut columns: Vec<Vec<u32>> = vec![Vec::new(); schema.len()];
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| DataError::Parse(e.to_string()))?;
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != schema.len() {
            return Err(DataError::Parse(format!(
                "row {} has {} cells, expected {}",
                lineno + 2,
                cells.len(),
                schema.len()
            )));
        }
        for (i, cell) in cells.iter().enumerate() {
            let domain = schema.attribute(i).domain();
            let code = domain
                .code_of(cell)
                .or_else(|| cell.strip_prefix('v').and_then(|c| c.parse().ok()))
                .or_else(|| cell.parse().ok())
                .ok_or_else(|| {
                    DataError::Parse(format!("row {}: unparseable cell `{cell}`", lineno + 2))
                })?;
            if !domain.contains(code) {
                return Err(DataError::Parse(format!(
                    "row {}: code {code} out of domain for `{}`",
                    lineno + 2,
                    schema.attribute(i).name()
                )));
            }
            columns[i].push(code);
        }
    }
    Dataset::from_columns(schema.clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_labelled("work", ["private", "gov"]).unwrap(),
            Attribute::binary("flag"),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let ds = Dataset::from_rows(schema(), &[vec![0, 1], vec![1, 0]]).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("work,flag\nprivate,v1\n"));
        let back = read_csv(&schema(), &buf[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn read_accepts_bare_codes() {
        let input = b"work,flag\n1,0\n" as &[u8];
        let ds = read_csv(&schema(), input).unwrap();
        assert_eq!(ds.value(0, 0), 1);
    }

    #[test]
    fn read_rejects_bad_header() {
        let input = b"wrong,flag\n0,0\n" as &[u8];
        assert!(read_csv(&schema(), input).is_err());
    }

    #[test]
    fn read_rejects_out_of_domain() {
        let input = b"work,flag\n9,0\n" as &[u8];
        assert!(read_csv(&schema(), input).is_err());
    }

    #[test]
    fn read_rejects_ragged_rows() {
        let input = b"work,flag\n0\n" as &[u8];
        assert!(read_csv(&schema(), input).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let input = b"work,flag\n0,0\n\n1,1\n" as &[u8];
        let ds = read_csv(&schema(), input).unwrap();
        assert_eq!(ds.n(), 2);
    }
}
