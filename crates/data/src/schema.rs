//! Schemas: ordered collections of attributes.

use crate::attribute::Attribute;
use crate::error::DataError;

/// An ordered set of attributes describing one relational table.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from a list of attributes.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidDomain`] if empty, or
    /// [`DataError::UnknownAttribute`] (reused) if two attributes share a name.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, DataError> {
        if attributes.is_empty() {
            return Err(DataError::InvalidDomain("schema has no attributes".into()));
        }
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name() == a.name()) {
                return Err(DataError::UnknownAttribute(format!(
                    "duplicate attribute name `{}`",
                    a.name()
                )));
            }
        }
        Ok(Self { attributes })
    }

    /// Number of attributes (the paper's `d`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Always false: schemas are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Attribute at `index`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn attribute(&self, index: usize) -> &Attribute {
        &self.attributes[index]
    }

    /// All attributes in order.
    #[must_use]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Index of the attribute named `name`.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// Domain sizes in attribute order.
    #[must_use]
    pub fn domain_sizes(&self) -> Vec<usize> {
        self.attributes.iter().map(Attribute::domain_size).collect()
    }

    /// log2 of the total domain size (Table 5's "Domain size" column).
    #[must_use]
    pub fn total_domain_log2(&self) -> f64 {
        self.attributes.iter().map(|a| (a.domain_size() as f64).log2()).sum()
    }

    /// Whether every attribute is binary.
    #[must_use]
    pub fn all_binary(&self) -> bool {
        self.attributes.iter().all(Attribute::is_binary)
    }

    /// Product of the domain sizes of `subset` (saturating).
    ///
    /// # Panics
    /// Panics if an index is out of range.
    #[must_use]
    pub fn subset_domain_size(&self, subset: &[usize]) -> usize {
        subset.iter().map(|&i| self.attributes[i].domain_size()).fold(1usize, usize::saturating_mul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_schema() -> Schema {
        Schema::new(vec![
            Attribute::binary("a"),
            Attribute::categorical("b", 3).unwrap(),
            Attribute::continuous("c", 0.0, 1.0, 4).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn len_and_lookup() {
        let s = small_schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zzz"), None);
        assert_eq!(s.attribute(2).name(), "c");
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![Attribute::binary("x"), Attribute::binary("x")]);
        assert!(r.is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn domain_math() {
        let s = small_schema();
        assert_eq!(s.domain_sizes(), vec![2, 3, 4]);
        assert!((s.total_domain_log2() - (24f64).log2()).abs() < 1e-12);
        assert_eq!(s.subset_domain_size(&[0, 2]), 8);
        assert!(!s.all_binary());
    }

    #[test]
    fn all_binary_detection() {
        let s = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
        assert!(s.all_binary());
    }
}
