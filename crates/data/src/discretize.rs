//! Equi-width discretisation of continuous attributes (§5.1, footnote 3).

/// An equi-width binning of `[min, max]` into `bins` bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    min: f64,
    max: f64,
    bins: usize,
}

impl Discretizer {
    /// Creates a discretiser.
    ///
    /// # Panics
    /// Panics if `min >= max` or `bins == 0`.
    #[must_use]
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(min < max, "empty range [{min}, {max}]");
        assert!(bins > 0, "need at least one bin");
        Self { min, max, bins }
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Bin code of a raw value; values outside the range clamp to the
    /// first/last bin.
    #[must_use]
    pub fn bin_of(&self, value: f64) -> u32 {
        let w = (self.max - self.min) / self.bins as f64;
        let raw = ((value - self.min) / w).floor();
        raw.clamp(0.0, (self.bins - 1) as f64) as u32
    }

    /// Midpoint of a bin (used when exporting synthetic data as raw values).
    ///
    /// # Panics
    /// Panics if `bin` is out of range.
    #[must_use]
    pub fn midpoint(&self, bin: u32) -> f64 {
        assert!((bin as usize) < self.bins, "bin {bin} out of range");
        let w = (self.max - self.min) / self.bins as f64;
        self.min + (bin as f64 + 0.5) * w
    }

    /// `[lo, hi)` edges of a bin (the last bin is closed on the right).
    ///
    /// # Panics
    /// Panics if `bin` is out of range.
    #[must_use]
    pub fn edges(&self, bin: u32) -> (f64, f64) {
        assert!((bin as usize) < self.bins, "bin {bin} out of range");
        let w = (self.max - self.min) / self.bins as f64;
        (self.min + bin as f64 * w, self.min + (bin as f64 + 1.0) * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn figure_2_age_bins() {
        // Figure 2: age in (0, 80] split into 8 bins of 10 years.
        let d = Discretizer::new(0.0, 80.0, 8);
        assert_eq!(d.bin_of(5.0), 0);
        assert_eq!(d.bin_of(35.0), 3);
        assert_eq!(d.bin_of(79.9), 7);
        assert_eq!(d.bin_of(80.0), 7, "right edge clamps into last bin");
    }

    #[test]
    fn out_of_range_clamps() {
        let d = Discretizer::new(0.0, 10.0, 5);
        assert_eq!(d.bin_of(-3.0), 0);
        assert_eq!(d.bin_of(42.0), 4);
    }

    #[test]
    fn midpoint_lies_in_bin() {
        let d = Discretizer::new(0.0, 80.0, 8);
        let (lo, hi) = d.edges(3);
        let m = d.midpoint(3);
        assert!(lo < m && m < hi);
        assert_eq!(lo, 30.0);
        assert_eq!(hi, 40.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn rejects_empty_range() {
        let _ = Discretizer::new(1.0, 1.0, 4);
    }

    proptest! {
        /// bin_of is monotone and always lands in range.
        #[test]
        fn prop_monotone(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let d = Discretizer::new(-50.0, 50.0, 16);
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            let (bx, by) = (d.bin_of(x), d.bin_of(y));
            prop_assert!(bx <= by);
            prop_assert!(by < 16);
        }

        /// Midpoints invert to their own bin.
        #[test]
        fn prop_midpoint_round_trip(bin in 0u32..16) {
            let d = Discretizer::new(-1.0, 3.0, 16);
            prop_assert_eq!(d.bin_of(d.midpoint(bin)), bin);
        }
    }
}
