//! Request-scoped stage timing over the monotonic clock.

use std::time::{Duration, Instant};

/// A request-scoped timer that splits wall time into named stages. Each
/// [`Span::mark`] closes the stage that started at the previous mark (or at
/// [`Span::start`]) — so a handler can record `parse → ledger → lookup →
/// sample → write` with one `Instant::now()` per boundary and no
/// allocation beyond the stage vector.
#[derive(Debug)]
pub struct Span {
    started: Instant,
    last: Instant,
    stages: Vec<(&'static str, Duration)>,
}

impl Default for Span {
    fn default() -> Self {
        Self::start()
    }
}

impl Span {
    /// Starts the span now.
    #[must_use]
    pub fn start() -> Self {
        let now = Instant::now();
        Self { started: now, last: now, stages: Vec::new() }
    }

    /// Closes the current stage under `name`, returning its duration; the
    /// next stage starts immediately.
    pub fn mark(&mut self, name: &'static str) -> Duration {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last);
        self.last = now;
        self.stages.push((name, elapsed));
        elapsed
    }

    /// The recorded stages in order.
    #[must_use]
    pub fn stages(&self) -> &[(&'static str, Duration)] {
        &self.stages
    }

    /// Total wall time since the span started.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_partition_the_elapsed_time() {
        let mut span = Span::start();
        std::thread::sleep(Duration::from_millis(2));
        let a = span.mark("first");
        let b = span.mark("second"); // immediate: near-zero
        assert!(a >= Duration::from_millis(1), "first stage covers the sleep: {a:?}");
        assert!(b < a, "second stage is the gap between marks");
        assert_eq!(span.stages().len(), 2);
        assert_eq!(span.stages()[0].0, "first");
        let summed: Duration = span.stages().iter().map(|&(_, d)| d).sum();
        assert!(span.total() >= summed, "stages never exceed the total");
    }
}
