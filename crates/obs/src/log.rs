//! A bounded ring buffer of structured (JSON-line) events.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-capacity ring of event lines: appends past the capacity evict
/// the oldest entry, so memory stays bounded however long the process runs.
/// One short mutex hold per append — this sits at request *completion*, not
/// on the per-chunk streaming path.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<VecDeque<String>>,
}

impl EventLog {
    /// A ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, inner: Mutex::new(VecDeque::with_capacity(capacity)) }
    }

    /// Appends one event line, evicting the oldest when full.
    pub fn append(&self, line: String) {
        let mut ring = self.inner.lock().expect("event log lock poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(line);
    }

    /// The buffered events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<String> {
        self.inner.lock().expect("event log lock poisoned").iter().cloned().collect()
    }

    /// How many events are currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log lock poisoned").len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
#[must_use]
pub fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let log = EventLog::new(3);
        assert!(log.is_empty());
        for i in 0..5 {
            log.append(format!("event-{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.snapshot(), vec!["event-2", "event-3", "event-4"]);
    }

    #[test]
    fn escaping_covers_json_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
