//! Counters, gauges, log-bucketed histograms, and the named registry that
//! renders (and parses) Prometheus text exposition format v0.0.4.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A monotonically increasing event count. Incrementing is a single relaxed
/// `fetch_add`; reads are single atomic loads, so concurrent scrapes are
/// never torn.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depth, active streams).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Finite bucket upper bounds: `2^i` microseconds for `i in 0..28`, i.e.
/// 1 µs up to ~134 s (past the default 120 s handler deadline); slower
/// observations land in the implicit `+Inf` bucket.
const FINITE_BUCKETS: usize = 28;

/// A log-bucketed latency histogram. Buckets are powers of two over
/// microseconds, so one observation costs one leading-zeros computation and
/// three relaxed atomic adds — no locks, no allocation, no online
/// percentile state. Quantiles are derived from the buckets at read time
/// (upper-bound estimate: the true quantile is ≤ the reported one, within
/// one 2× bucket).
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts observations in `(2^(i-1), 2^i]` µs (bucket 0 is
    /// `(0, 1]` µs); the last slot is the `+Inf` overflow.
    buckets: [AtomicU64; FINITE_BUCKETS + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one duration given in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = Self::bucket_index(ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The first bucket whose upper bound (in ns) is ≥ `ns`.
    fn bucket_index(ns: u64) -> usize {
        let us = ns.div_ceil(1000).max(1);
        // ceil(log2(us)): the smallest i with us <= 2^i.
        let idx = (64 - (us - 1).leading_zeros()) as usize;
        idx.min(FINITE_BUCKETS) // overflow slot
    }

    /// Upper bound of finite bucket `i`, in seconds.
    fn bound_secs(i: usize) -> f64 {
        (1u64 << i) as f64 * 1e-6
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    #[must_use]
    pub fn sum_secs(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// An upper-bound estimate of quantile `q` (0..=1) in seconds: the
    /// upper edge of the bucket holding the q-th observation. Returns
    /// `None` when empty, `f64::INFINITY` when the quantile falls in the
    /// overflow bucket.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return Some(if i < FINITE_BUCKETS { Self::bound_secs(i) } else { f64::INFINITY });
            }
        }
        Some(f64::INFINITY)
    }

    /// Per-bucket counts including the overflow slot (test/debug aid).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

/// What a metric family measures — drives the `# TYPE` line and the sample
/// layout (histograms expand to `_bucket`/`_sum`/`_count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One named family: a kind, optional help text, and one metric per label
/// set. Label sets are kept sorted so exposition output is stable.
#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    metrics: BTreeMap<Vec<(String, String)>, Handle>,
}

/// A process-wide named metric store. Registration (first use of a
/// `(name, labels)` pair) takes the write lock once; every later lookup is
/// an uncontended read-lock clone of the `Arc` handle, and the increments
/// themselves are pure atomics. Families render in name order, label sets
/// in sorted order — byte-stable output for a fixed state.
#[derive(Debug, Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches help text to `name` (rendered as `# HELP`). Creates the
    /// family lazily if no metric was registered yet.
    ///
    /// # Panics
    /// Panics if `name` is not a valid metric name.
    pub fn describe(&self, name: &str, kind: MetricKind, help: &str) {
        assert!(valid_name(name), "invalid metric name `{name}`");
        let mut families = self.families.write().expect("registry lock poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: String::new(),
            metrics: BTreeMap::new(),
        });
        assert!(family.kind == kind, "metric `{name}` re-described with a different kind");
        family.help = help.to_string();
    }

    /// The counter for `(name, labels)`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is invalid or already registered as another kind.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.handle(name, labels, MetricKind::Counter) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in handle()"),
        }
    }

    /// The gauge for `(name, labels)`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is invalid or already registered as another kind.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.handle(name, labels, MetricKind::Gauge) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in handle()"),
        }
    }

    /// The histogram for `(name, labels)`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is invalid or already registered as another kind.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.handle(name, labels, MetricKind::Histogram) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in handle()"),
        }
    }

    fn handle(&self, name: &str, labels: &[(&str, &str)], kind: MetricKind) -> Handle {
        let key: Vec<(String, String)> = {
            let mut key: Vec<(String, String)> =
                labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
            key.sort();
            key
        };
        // Fast path: the metric already exists.
        {
            let families = self.families.read().expect("registry lock poisoned");
            if let Some(family) = families.get(name) {
                assert!(
                    family.kind == kind,
                    "metric `{name}` registered as {:?}, requested as {kind:?}",
                    family.kind
                );
                if let Some(handle) = family.metrics.get(&key) {
                    return handle.clone();
                }
            }
        }
        assert!(valid_name(name), "invalid metric name `{name}`");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name `{k}`");
        }
        let mut families = self.families.write().expect("registry lock poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: String::new(),
            metrics: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {:?}, requested as {kind:?}",
            family.kind
        );
        family
            .metrics
            .entry(key)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Handle::Counter(Arc::new(Counter::default())),
                MetricKind::Gauge => Handle::Gauge(Arc::new(Gauge::default())),
                MetricKind::Histogram => Handle::Histogram(Arc::new(Histogram::default())),
            })
            .clone()
    }

    /// Sums a counter family across all label sets (0 when absent).
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        let families = self.families.read().expect("registry lock poisoned");
        families.get(name).map_or(0, |family| {
            family
                .metrics
                .values()
                .map(|h| match h {
                    Handle::Counter(c) => c.get(),
                    _ => 0,
                })
                .sum()
        })
    }

    /// Renders every family in Prometheus text exposition format v0.0.4:
    /// `# HELP`/`# TYPE` per family, samples sorted by name then labels,
    /// histograms expanded to cumulative `_bucket{le=…}`, `_sum`, `_count`.
    #[must_use]
    pub fn render(&self) -> String {
        let families = self.families.read().expect("registry lock poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            if !family.help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            }
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, handle) in &family.metrics {
                match handle {
                    Handle::Counter(c) => {
                        out.push_str(&sample_line(name, labels, None, &c.get().to_string()));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&sample_line(name, labels, None, &g.get().to_string()));
                    }
                    Handle::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (i, &n) in counts.iter().enumerate().take(FINITE_BUCKETS) {
                            cumulative += n;
                            let le = format!("{:?}", Histogram::bound_secs(i));
                            out.push_str(&sample_line(
                                &format!("{name}_bucket"),
                                labels,
                                Some(("le", &le)),
                                &cumulative.to_string(),
                            ));
                        }
                        out.push_str(&sample_line(
                            &format!("{name}_bucket"),
                            labels,
                            Some(("le", "+Inf")),
                            &h.count().to_string(),
                        ));
                        out.push_str(&sample_line(
                            &format!("{name}_sum"),
                            labels,
                            None,
                            &format!("{:?}", h.sum_secs()),
                        ));
                        out.push_str(&sample_line(
                            &format!("{name}_count"),
                            labels,
                            None,
                            &h.count().to_string(),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// One rendered sample line.
fn sample_line(
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) -> String {
    let mut rendered: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        rendered.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if rendered.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{}}} {value}\n", rendered.join(","))
    }
}

/// Valid metric/label name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(value: &str) -> String {
    value.replace('\\', "\\\\").replace('\n', "\\n")
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (for histograms this includes the `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed scrape: every sample plus the declared `# TYPE` per family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All samples, in document order.
    pub samples: Vec<Sample>,
    /// Family name → declared type.
    pub types: BTreeMap<String, String>,
}

impl Snapshot {
    /// The value of the sample matching `name` and exactly `labels`
    /// (order-insensitive).
    #[must_use]
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(String, String)> =
            labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        want.sort();
        self.samples.iter().find(|s| s.name == name && s.labels == want).map(|s| s.value)
    }

    /// Sums every sample named `name`, whatever its labels.
    #[must_use]
    pub fn sum(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// Whether any sample with this exact name exists.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.samples.iter().any(|s| s.name == name)
    }
}

/// Parses Prometheus text exposition format (the subset [`Registry::render`]
/// emits: `# HELP`/`# TYPE` comments and `name{labels} value` samples).
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn parse_text(text: &str) -> Result<Snapshot, String> {
    let mut snapshot = Snapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().ok_or(format!("line {}: bare # TYPE", lineno + 1))?;
                let kind =
                    parts.next().ok_or(format!("line {}: # TYPE without kind", lineno + 1))?;
                snapshot.types.insert(name.to_string(), kind.to_string());
            }
            continue; // HELP and other comments
        }
        let (name, labels, value_text) = split_sample(line, lineno + 1)?;
        let value: f64 = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse().map_err(|_| format!("line {}: bad value `{v}`", lineno + 1))?,
        };
        snapshot.samples.push(Sample { name, labels, value });
    }
    Ok(snapshot)
}

/// One split sample line: `(name, sorted labels, value text)`.
type SplitSample<'a> = (String, Vec<(String, String)>, &'a str);

/// Splits one sample line into its name, sorted labels, and value text.
fn split_sample(line: &str, lineno: usize) -> Result<SplitSample<'_>, String> {
    let bad = |what: &str| format!("line {lineno}: {what} in `{line}`");
    if let Some(brace) = line.find('{') {
        let name = line[..brace].to_string();
        let close = line.rfind('}').ok_or_else(|| bad("unterminated label set"))?;
        if close < brace {
            return Err(bad("unterminated label set"));
        }
        let mut labels = parse_labels(&line[brace + 1..close]).map_err(|e| bad(&e))?;
        labels.sort();
        let value_text = line[close + 1..].trim();
        if value_text.is_empty() {
            return Err(bad("sample without value"));
        }
        Ok((name, labels, value_text))
    } else {
        let (name, value_text) =
            line.split_once(char::is_whitespace).ok_or_else(|| bad("sample without value"))?;
        Ok((name.to_string(), Vec::new(), value_text.trim()))
    }
}

/// Parses `k="v",k2="v2"` with `\\`, `\"`, `\n` escapes.
fn parse_labels(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = raw.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label `{key}` value is not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape `\\{other:?}`")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err("unterminated label value".into()),
            }
        }
        labels.push((key.trim().to_string(), value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(10);
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn histogram_buckets_are_log_spaced_and_cumulative() {
        let h = Histogram::default();
        h.observe_ns(500); // ≤ 1µs → bucket 0
        h.observe_ns(1_000); // exactly 1µs → bucket 0
        h.observe_ns(1_001); // just over → bucket 1 (≤ 2µs)
        h.observe_ns(1_000_000); // 1ms → bucket 10 (1024µs)
        h.observe(Duration::from_secs(500)); // past the last bound → +Inf
        assert_eq!(h.count(), 5);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[10], 1);
        assert_eq!(counts[FINITE_BUCKETS], 1, "overflow goes to +Inf");
        assert!((h.sum_secs() - 500.001_002_501).abs() < 1e-6);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for _ in 0..90 {
            h.observe_ns(900); // bucket 0: ≤ 1µs
        }
        for _ in 0..10 {
            h.observe_ns(1_000_000_000); // 1s
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 1e-6).abs() < 1e-12, "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 1.0, "p99 must cover the slow tail, got {p99}");
        assert!(p99 < 3.0, "p99 stays within one 2x bucket, got {p99}");
    }

    #[test]
    fn registry_round_trips_through_the_parser() {
        let reg = Registry::new();
        reg.describe("test_requests_total", MetricKind::Counter, "Requests by endpoint/status");
        reg.counter("test_requests_total", &[("endpoint", "synth"), ("status", "200")]).add(7);
        reg.counter("test_requests_total", &[("endpoint", "fit"), ("status", "402")]).inc();
        reg.gauge("test_queue_depth", &[]).set(3);
        reg.histogram("test_stage_seconds", &[("stage", "parse")]).observe_ns(2_000_000);

        let text = reg.render();
        assert!(text.contains("# TYPE test_requests_total counter"));
        assert!(text.contains("# HELP test_requests_total Requests by endpoint/status"));
        assert!(text.contains("# TYPE test_queue_depth gauge"));
        assert!(text.contains("# TYPE test_stage_seconds histogram"));

        let snap = parse_text(&text).expect("own output must parse");
        assert_eq!(
            snap.value("test_requests_total", &[("endpoint", "synth"), ("status", "200")]),
            Some(7.0)
        );
        assert_eq!(snap.sum("test_requests_total"), 8.0);
        assert_eq!(snap.value("test_queue_depth", &[]), Some(3.0));
        assert_eq!(snap.value("test_stage_seconds_count", &[("stage", "parse")]), Some(1.0));
        assert_eq!(
            snap.value("test_stage_seconds_bucket", &[("stage", "parse"), ("le", "+Inf")]),
            Some(1.0)
        );
        assert_eq!(snap.types.get("test_queue_depth").map(String::as_str), Some("gauge"));
        // Cumulative buckets: each le count ≥ the previous one.
        let buckets: Vec<f64> = snap
            .samples
            .iter()
            .filter(|s| s.name == "test_stage_seconds_bucket")
            .map(|s| s.value)
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets must be cumulative");
    }

    #[test]
    fn rendering_is_stable_and_label_escaped() {
        let reg = Registry::new();
        reg.counter("weird_total", &[("msg", "a\"b\\c\nd")]).inc();
        let a = reg.render();
        let b = reg.render();
        assert_eq!(a, b, "render is deterministic for a fixed state");
        let snap = parse_text(&a).unwrap();
        assert_eq!(snap.value("weird_total", &[("msg", "a\"b\\c\nd")]), Some(1.0));
    }

    #[test]
    fn counter_total_sums_families() {
        let reg = Registry::new();
        reg.counter("x_total", &[("a", "1")]).add(2);
        reg.counter("x_total", &[("a", "2")]).add(3);
        assert_eq!(reg.counter_total("x_total"), 5);
        assert_eq!(reg.counter_total("missing_total"), 0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        let _ = reg.counter("dual", &[]);
        let _ = reg.gauge("dual", &[]);
    }

    #[test]
    fn handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("shared_total", &[("x", "1")]);
        let b = reg.counter("shared_total", &[("x", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same (name, labels) returns the same counter");
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("privbayes_requests_total"));
        assert!(valid_name("_hidden"));
        assert!(!valid_name("9starts_with_digit"));
        assert!(!valid_name("has-dash"));
        assert!(!valid_name(""));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("name{unclosed 1").is_err());
        assert!(parse_text("name{k=unquoted} 1").is_err());
        assert!(parse_text("name_without_value").is_err());
        assert!(parse_text("name notanumber").is_err());
        assert!(parse_text("ok 1\n# arbitrary comment\n").is_ok());
    }
}
