//! Std-only observability primitives for the PrivBayes serving stack.
//!
//! The build environment is offline, so this crate hand-rolls the three
//! things a production DP-release service must be able to answer at any
//! moment — *how many, how long, and what just happened* — without pulling
//! in a metrics framework:
//!
//! - [`Counter`] / [`Gauge`]: single atomics. Recording an event is one
//!   `fetch_add` with relaxed ordering; there is no lock anywhere on the
//!   increment path.
//! - [`Histogram`]: log-bucketed latencies (powers of two over
//!   microseconds). One observation is one atomic bucket increment plus an
//!   atomic sum/count update; p50/p95/p99 are derived from the buckets at
//!   read time, never tracked online.
//! - [`Registry`]: a named, label-aware family store rendering
//!   [Prometheus text exposition format v0.0.4][prom]. Handle lookup takes
//!   an uncontended `RwLock` read; hot loops clone the `Arc` handle once
//!   and then touch only atomics.
//! - [`Span`]: request-scoped stage timing over [`std::time::Instant`]
//!   (monotonic, cheap), feeding per-stage histograms.
//! - [`EventLog`]: a bounded ring buffer of structured (JSON-line) events,
//!   so the most recent activity is inspectable without unbounded memory.
//! - [`parse_text`] / [`Snapshot`]: the matching exposition parser, used by
//!   the bundled client (`Client::metrics`) and the perf harness to assert
//!   on counter deltas.
//!
//! Scrapes are coherent per metric (each sample is one atomic load) and
//! monotone for counters: a scrape concurrent with writers can only observe
//! values between the start and end of the scrape, never torn ones.
//!
//! [prom]: https://prometheus.io/docs/instrumenting/exposition_formats/

mod log;
mod metrics;
mod span;

pub use log::{json_escape, EventLog};
pub use metrics::{parse_text, Counter, Gauge, Histogram, MetricKind, Registry, Sample, Snapshot};
pub use span::Span;
