//! Count-query baselines from the PrivBayes evaluation (§6.1, §6.5):
//!
//! * [`laplace_marginals()`] — Laplace noise straight into every workload
//!   marginal \[19\], plus its count-scale twin [`geometric_marginals()`];
//! * [`fourier`] — the Barak et al. Fourier/contingency approach \[2\] on
//!   binary domains (non-binary data is binarised first);
//! * [`contingency`] — materialise the full-domain contingency table, add
//!   noise, project (only feasible for NLTCS/ACS-scale domains);
//! * [`mwem`] — the multiplicative-weights exponential-mechanism data-release
//!   algorithm \[26\];
//! * [`uniform`] — the trivial uniform-distribution baseline.
//!
//! All baselines answer an [`privbayes_marginals::AlphaWayWorkload`] by
//! returning one noisy [`privbayes_marginals::ContingencyTable`] per subset
//! (consistency post-processing applied), so they share the accuracy metric
//! with PrivBayes.
//!
//! Since PR 4, every baseline draws its **exact** marginals through the
//! shared [`privbayes_marginals::MarginalSource`] abstraction (normally a
//! [`privbayes_marginals::CountEngine`]) instead of re-scanning the dataset
//! per marginal; Fourier, which works in the binarised domain, builds its
//! own engine over the binarised table. Engine joints are bit-identical to
//! `ContingencyTable::from_dataset`, so outputs are unchanged for a fixed
//! seed — `tests/synthesizer_equivalence.rs` pins this against the
//! pre-refactor references in `privbayes_bench::reference`.

pub mod contingency;
pub mod fourier;
pub mod geometric_marginals;
pub mod laplace_marginals;
pub mod mwem;
pub mod uniform;

pub use contingency::contingency_marginals;
pub use fourier::fourier_marginals;
pub use geometric_marginals::geometric_marginals;
pub use laplace_marginals::laplace_marginals;
pub use mwem::{mwem_fit, mwem_marginals, MwemFit, MwemOptions};
pub use uniform::uniform_marginals;
