//! The Fourier baseline (Barak et al. \[2\]): release noisy Fourier (Walsh–
//! Hadamard) coefficients for the downward closure of the workload's
//! marginals, then reconstruct each marginal from its coefficients.
//!
//! The method operates on binary domains; non-binary datasets are binarised
//! with the natural binary encoding first (as the paper does), and the
//! reconstructed bit-level marginals are folded back onto the original
//! domains. Coefficients shared between marginals are released once — this
//! is the consistency advantage of the Fourier representation.
//!
//! Privacy: a coefficient `c_T = (1/n)·Σ_rows χ_T(row)` with `χ_T ∈ {±1}`
//! changes by at most `2/n` per tuple; releasing `|C|` coefficients therefore
//! uses per-coefficient noise `Lap(2|C|/(n·ε))`.

use std::collections::HashMap;

use privbayes_data::encoding::{binarize, EncodingKind};
use privbayes_data::Dataset;
use privbayes_dp::laplace::sample_laplace;
use privbayes_marginals::{
    clamp_and_normalize, AlphaWayWorkload, Axis, ContingencyTable, CountEngine,
};
use rand::Rng;

/// In-place Walsh–Hadamard transform: `out[T] = Σ_v in[v]·(−1)^{|T∩v|}`.
/// Self-inverse up to a factor `2^b`.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn walsh_hadamard(values: &mut [f64]) {
    let len = values.len();
    assert!(len.is_power_of_two(), "WHT needs a power-of-two length");
    let mut h = 1;
    while h < len {
        for block in (0..len).step_by(h * 2) {
            for i in block..block + h {
                let (x, y) = (values[i], values[i + h]);
                values[i] = x + y;
                values[i + h] = x - y;
            }
        }
        h *= 2;
    }
}

/// Releases all workload marginals via noisy Fourier coefficients under ε-DP.
///
/// Fourier operates on the *binarised* domain, so it cannot share the
/// caller's engine over the original schema; instead it routes every
/// bit-level joint through its own [`CountEngine`] over the binarised data
/// (whose popcount backend is exactly the right tool for all-binary axes).
/// Counts are bit-identical to a direct row scan of the binarised table.
///
/// # Panics
/// Panics if `epsilon <= 0`, the data is empty, or a binarised marginal
/// exceeds 2²⁰ cells.
#[must_use]
pub fn fourier_marginals<R: Rng + ?Sized>(
    data: &Dataset,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
    assert!(data.n() > 0, "empty dataset");
    let n = data.n() as f64;

    // Binarise (identity layout when already binary).
    let (bin_data, map) = binarize(data, EncodingKind::Binary).expect("binarisation");
    let bit_engine = CountEngine::new(&bin_data);

    // Bit positions of each workload subset.
    let bit_sets: Vec<Vec<usize>> = workload
        .subsets()
        .iter()
        .map(|subset| {
            let mut bits = Vec::new();
            for &attr in subset {
                let ab = &map.per_attr()[attr];
                bits.extend(ab.first_bit_attr..ab.first_bit_attr + ab.bits);
            }
            assert!(bits.len() <= 20, "binarised marginal too wide: {} bits", bits.len());
            bits
        })
        .collect();

    // Pass 1: count the distinct coefficients in the downward closure.
    let mut coefficient_count = std::collections::HashSet::new();
    for bits in &bit_sets {
        let b = bits.len();
        for mask in 0u64..(1 << b) {
            coefficient_count.insert(global_key(mask, bits));
        }
    }
    let scale = 2.0 * coefficient_count.len() as f64 / (n * epsilon);

    // Pass 2: per subset, exact joint → WHT → noise new coefficients /
    // reuse released ones → inverse WHT → consistency → fold to original
    // domains.
    let mut released: HashMap<u64, f64> = HashMap::with_capacity(coefficient_count.len());
    workload
        .subsets()
        .iter()
        .zip(&bit_sets)
        .map(|(subset, bits)| {
            let axes: Vec<Axis> = bits.iter().map(|&i| Axis::raw(i)).collect();
            let table = bit_engine.joint_table(&axes);
            let mut coeffs = table.values().to_vec();
            walsh_hadamard(&mut coeffs);
            for (local_mask, c) in coeffs.iter_mut().enumerate() {
                let key = global_key(local_mask as u64, bits);
                let noisy = *released.entry(key).or_insert_with(|| *c + sample_laplace(scale, rng));
                *c = noisy;
            }
            // Inverse WHT (self-inverse / 2^b).
            walsh_hadamard(&mut coeffs);
            let cells = coeffs.len() as f64;
            for v in &mut coeffs {
                *v /= cells;
            }
            clamp_and_normalize(&mut coeffs, 1.0);
            fold_to_original(data, subset, &map, bits, &coeffs)
        })
        .collect()
}

/// Maps a local coefficient mask (in table-axis bit order) to a global
/// bit-attribute key.
fn global_key(local_mask: u64, bits: &[usize]) -> u64 {
    let b = bits.len();
    let mut key = 0u64;
    for (j, &bit_attr) in bits.iter().enumerate() {
        // Axis j is the (b-1-j)-th bit of the flat cell index.
        if local_mask >> (b - 1 - j) & 1 == 1 {
            key |= 1 << bit_attr;
        }
    }
    key
}

/// Folds a bit-level joint back onto the original attribute domains
/// (clamping invalid codes like the encoding's decoder).
fn fold_to_original(
    data: &Dataset,
    subset: &[usize],
    map: &privbayes_data::encoding::BinarizationMap,
    bits: &[usize],
    bit_values: &[f64],
) -> ContingencyTable {
    let schema = data.schema();
    let out_axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
    let out_dims: Vec<usize> = subset.iter().map(|&a| schema.attribute(a).domain_size()).collect();
    let out_cells: usize = out_dims.iter().product();
    let mut out = vec![0.0f64; out_cells];

    let b = bits.len();
    for (cell, &v) in bit_values.iter().enumerate() {
        // Decode each attribute's bit group from the flat bit-cell index.
        let mut out_idx = 0usize;
        let mut offset = 0usize;
        for (&attr, &dim) in subset.iter().zip(&out_dims) {
            let ab = &map.per_attr()[attr];
            let mut code = 0u32;
            for j in 0..ab.bits {
                let pos = b - 1 - (offset + j);
                code = (code << 1) | ((cell >> pos) & 1) as u32;
            }
            if map.is_gray() {
                code = privbayes_data::encoding::from_gray(code);
            }
            let code = code.min(dim as u32 - 1);
            out_idx = out_idx * dim + code as usize;
            offset += ab.bits;
        }
        out[out_idx] += v;
    }
    ContingencyTable::from_parts(out_axes, out_dims, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Schema};
    use privbayes_marginals::metrics::average_workload_tvd_tables;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn wht_is_self_inverse() {
        let original = vec![0.1, 0.3, 0.2, 0.4];
        let mut v = original.clone();
        walsh_hadamard(&mut v);
        walsh_hadamard(&mut v);
        for (a, b) in v.iter().zip(&original) {
            assert!((a / 4.0 - b).abs() < 1e-12);
        }
    }

    #[test]
    fn wht_of_uniform_is_delta() {
        let mut v = vec![0.25; 4];
        walsh_hadamard(&mut v);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!(v[1..].iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn wht_matches_direct_character_sum() {
        let p = [0.1, 0.2, 0.3, 0.4, 0.05, 0.15, 0.1, 0.1];
        let mut v = p.to_vec();
        walsh_hadamard(&mut v);
        for (t, &coeff) in v.iter().enumerate() {
            let direct: f64 = p
                .iter()
                .enumerate()
                .map(|(u, &x)| if (t & u).count_ones() % 2 == 0 { x } else { -x })
                .sum();
            assert!((coeff - direct).abs() < 1e-12, "coefficient {t}");
        }
    }

    fn binary_data(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                vec![a, a, rng.random_range(0..2u32)]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn high_epsilon_recovers_exact_marginals() {
        let ds = binary_data(1000, 1);
        let w = AlphaWayWorkload::new(3, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let tables = fourier_marginals(&ds, &w, 1e7, &mut rng);
        let err = average_workload_tvd_tables(&ds, &tables, &w);
        assert!(err < 1e-3, "err = {err}");
    }

    #[test]
    fn outputs_are_valid_distributions() {
        let ds = binary_data(200, 3);
        let w = AlphaWayWorkload::new(3, 2);
        let mut rng = StdRng::seed_from_u64(4);
        for t in fourier_marginals(&ds, &w, 0.1, &mut rng) {
            assert!((t.total() - 1.0).abs() < 1e-9);
            assert!(t.values().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn works_on_non_binary_domains() {
        let schema = Schema::new(vec![
            Attribute::categorical("x", 3).unwrap(),
            Attribute::categorical("y", 5).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<u32>> =
            (0..500).map(|_| vec![rng.random_range(0..3u32), rng.random_range(0..5u32)]).collect();
        let ds = Dataset::from_rows(schema, &rows).unwrap();
        let w = AlphaWayWorkload::new(2, 2);
        let tables = fourier_marginals(&ds, &w, 1e7, &mut rng);
        assert_eq!(tables[0].dims(), &[3, 5]);
        let err = average_workload_tvd_tables(&ds, &tables, &w);
        assert!(err < 1e-3, "non-binary reconstruction err = {err}");
    }

    #[test]
    fn shared_coefficients_are_consistent() {
        // The one-way marginal of `a` reconstructed from the (a,b) and (a,c)
        // tables must agree: both use the same released coefficient for {a}.
        let ds = binary_data(400, 6);
        let w = AlphaWayWorkload::new(3, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let tables = fourier_marginals(&ds, &w, 0.5, &mut rng);
        // Workload order: [a,b], [a,c], [b,c].
        let from_ab = tables[0].project(&[0]);
        let from_ac = tables[1].project(&[0]);
        // Both derive from identical noisy coefficients (before clamping);
        // clamping can perturb slightly, so allow a loose tolerance.
        let d = privbayes_marginals::total_variation(from_ab.values(), from_ac.values());
        assert!(d < 0.12, "shared-coefficient marginals disagree by {d}");
    }
}
