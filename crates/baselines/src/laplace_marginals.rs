//! The Laplace baseline \[19\]: materialise every α-way marginal of the
//! workload and perturb each cell directly.
//!
//! One tuple contributes to every marginal, so releasing all `|Q_α|`
//! marginals has L1 sensitivity `2·|Q_α|/n` in probability scale — the reason
//! this baseline degrades as α (and hence the workload size) grows (§6.5).

use privbayes_dp::laplace::sample_laplace;
use privbayes_marginals::{
    clamp_and_normalize, AlphaWayWorkload, Axis, ContingencyTable, MarginalSource,
};
use rand::Rng;

/// Releases every workload marginal under ε-DP with per-cell Laplace noise
/// `Lap(2|W|/(n·ε))`, then applies the consistency post-processing. The
/// exact marginals come from `source` (normally a shared
/// [`privbayes_marginals::CountEngine`]) and are bit-identical to a direct
/// row scan; only the noise consumes `rng`.
///
/// # Panics
/// Panics if `epsilon <= 0` or the dataset is empty.
#[must_use]
pub fn laplace_marginals<S: MarginalSource + ?Sized, R: Rng + ?Sized>(
    source: &S,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
    assert!(source.n() > 0, "empty dataset");
    let scale = 2.0 * workload.len() as f64 / (source.n() as f64 * epsilon);
    workload
        .subsets()
        .iter()
        .map(|subset| {
            let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
            let mut table = source.joint_table(&axes);
            for v in table.values_mut() {
                *v += sample_laplace(scale, rng);
            }
            clamp_and_normalize(table.values_mut(), 1.0);
            table
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Dataset, Schema};
    use privbayes_marginals::metrics::average_workload_tvd_tables;
    use privbayes_marginals::CountEngine;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn data(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
            Attribute::binary("d"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                vec![a, a, rng.random_range(0..2u32), a]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn outputs_valid_distributions() {
        let ds = data(500, 1);
        let w = AlphaWayWorkload::new(4, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let tables = laplace_marginals(&CountEngine::new(&ds), &w, 0.5, &mut rng);
        assert_eq!(tables.len(), w.len());
        for t in &tables {
            assert!((t.total() - 1.0).abs() < 1e-9);
            assert!(t.values().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn error_decreases_with_epsilon() {
        let ds = data(2000, 3);
        let w = AlphaWayWorkload::new(4, 3);
        let avg = |eps: f64| {
            let reps = 10;
            (0..reps)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(100 + s);
                    let tables = laplace_marginals(&CountEngine::new(&ds), &w, eps, &mut rng);
                    average_workload_tvd_tables(&ds, &tables, &w)
                })
                .sum::<f64>()
                / reps as f64
        };
        assert!(avg(10.0) < avg(0.05), "more budget must reduce error");
    }

    #[test]
    fn high_epsilon_is_nearly_exact() {
        let ds = data(1000, 4);
        let w = AlphaWayWorkload::new(4, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let tables = laplace_marginals(&CountEngine::new(&ds), &w, 1e6, &mut rng);
        let err = average_workload_tvd_tables(&ds, &tables, &w);
        assert!(err < 1e-3, "huge ε should be near-exact, err = {err}");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_zero_epsilon() {
        let ds = data(10, 6);
        let w = AlphaWayWorkload::new(4, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = laplace_marginals(&CountEngine::new(&ds), &w, 0.0, &mut rng);
    }
}
