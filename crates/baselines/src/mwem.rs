//! MWEM (Hardt, Ligett & McSherry \[26\]): maintain an approximating
//! distribution over the full domain; per round, privately select the
//! worst-answered linear query — here a single marginal *cell*, as in the
//! original experiments — with the exponential mechanism, measure it with
//! the Laplace mechanism, and apply multiplicative-weights updates over the
//! measurement history.
//!
//! Like Contingency, MWEM materialises the full domain, so it only applies
//! to NLTCS/ACS-scale data (§6.5). For large workloads, scoring every
//! candidate marginal each round dominates the cost;
//! [`MwemOptions::max_candidates`] optionally subsamples the candidate
//! marginals per round (a documented deviation used for ACS-scale workloads
//! — see DESIGN.md §1).

use privbayes_dp::exponential::exponential_mechanism;
use privbayes_dp::laplace::sample_laplace;
use privbayes_marginals::{
    clamp_and_normalize, AlphaWayWorkload, Axis, ContingencyTable, MarginalSource,
};
use rand::seq::SliceRandom;
use rand::Rng;

/// MWEM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MwemOptions {
    /// Rounds `T`; each consumes ε/T (half selection, half measurement).
    pub iterations: usize,
    /// If set, score only a random subset of candidates per round.
    pub max_candidates: Option<usize>,
    /// Multiplicative-weights passes over the measurement history per round
    /// (the "improved MWEM" of Hardt et al.'s implementation; pure
    /// single-update MWEM corresponds to 1).
    pub update_passes: usize,
}

impl Default for MwemOptions {
    fn default() -> Self {
        Self { iterations: 10, max_candidates: None, update_passes: 8 }
    }
}

/// Hard cap on the materialised domain.
pub const MAX_CELLS: usize = 1 << 26;

struct Projector {
    /// Per-attribute stride in the full-domain index.
    full_strides: Vec<usize>,
    dims: Vec<usize>,
}

impl Projector {
    fn new(dims: &[usize]) -> Self {
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        Self { full_strides: strides, dims: dims.to_vec() }
    }

    /// Projects full-domain weights onto `subset`'s marginal.
    fn project(&self, weights: &[f64], subset: &[usize]) -> Vec<f64> {
        let out_cells: usize = subset.iter().map(|&a| self.dims[a]).product();
        let mut out = vec![0.0f64; out_cells];
        for (idx, &w) in weights.iter().enumerate() {
            out[self.cell_of(idx, subset)] += w;
        }
        out
    }

    /// Marginal cell of a full-domain index.
    #[inline]
    fn cell_of(&self, idx: usize, subset: &[usize]) -> usize {
        let mut cell = 0usize;
        for &a in subset {
            cell = cell * self.dims[a] + (idx / self.full_strides[a]) % self.dims[a];
        }
        cell
    }
}

/// The full state of a finished MWEM run: the final full-domain weights plus
/// the domain shape — everything needed to answer arbitrary marginals or to
/// compile a sampling artifact from the learned distribution.
#[derive(Debug, Clone)]
pub struct MwemFit {
    /// Final approximating distribution over the full domain (row-major,
    /// last attribute fastest; sums to 1).
    pub weights: Vec<f64>,
    /// Per-attribute domain sizes.
    pub dims: Vec<usize>,
}

impl MwemFit {
    /// The marginal of `subset` (attribute indices, ascending or not) under
    /// the final weights, clamped and normalised.
    #[must_use]
    pub fn marginal(&self, subset: &[usize]) -> ContingencyTable {
        let projector = Projector::new(&self.dims);
        let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
        let out_dims: Vec<usize> = subset.iter().map(|&a| self.dims[a]).collect();
        let mut vals = projector.project(&self.weights, subset);
        clamp_and_normalize(&mut vals, 1.0);
        ContingencyTable::from_parts(axes, out_dims, vals)
    }
}

/// Runs MWEM and returns the final full-domain weights (see
/// [`mwem_marginals`] for the workload-answer wrapper).
///
/// The exact workload answers ("truths") come from `source`: when the full
/// domain is small enough for the source's cache, the full-domain joint is
/// counted **once** and every workload truth is served by exact integer
/// projection instead of a fresh row scan — the superset-projection fast
/// path that makes engine-backed MWEM faster than the scan baseline while
/// staying bit-identical to it.
///
/// # Panics
/// Panics if the domain exceeds [`MAX_CELLS`], `epsilon <= 0`,
/// `iterations == 0`, or the data is empty.
#[must_use]
pub fn mwem_fit<S: MarginalSource + ?Sized, R: Rng + ?Sized>(
    source: &S,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    options: MwemOptions,
    rng: &mut R,
) -> MwemFit {
    assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
    assert!(options.iterations > 0, "need at least one round");
    assert!(source.n() > 0, "empty dataset");
    let dims = source.schema().domain_sizes();
    let cells: usize = dims.iter().product();
    assert!(cells <= MAX_CELLS, "domain has {cells} cells; MWEM needs a small domain");

    let n = source.n() as f64;
    let projector = Projector::new(&dims);

    // Warm the source with the full-domain joint when its cache would retain
    // it: every workload truth below then comes from one integer projection
    // rather than a row scan. Skipped when the table would not be retained
    // (projection would cost more than re-counting; the source already
    // optimises that trade-off per request).
    if source.retains(cells) {
        let all_axes: Vec<Axis> = (0..dims.len()).map(Axis::raw).collect();
        let _ = source.joint_table(&all_axes);
    }

    // Exact workload answers (probability scale).
    let truths: Vec<Vec<f64>> = workload
        .subsets()
        .iter()
        .map(|subset| {
            let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
            source.joint_table(&axes).values().to_vec()
        })
        .collect();

    // Approximation: uniform, mass 1.
    let mut weights = vec![1.0 / cells as f64; cells];

    let eps_round = epsilon / options.iterations as f64;
    let eps_select = eps_round / 2.0;
    let eps_measure = eps_round / 2.0;

    let mut candidate_pool: Vec<usize> = (0..workload.len()).collect();
    // Measurement history: (marginal index, cell index, noisy value).
    let mut measurements: Vec<(usize, usize, f64)> = Vec::with_capacity(options.iterations);
    for _ in 0..options.iterations {
        // Candidate marginals for this round.
        let candidates: &[usize] = match options.max_candidates {
            Some(m) if m < candidate_pool.len() => {
                candidate_pool.shuffle(rng);
                &candidate_pool[..m]
            }
            _ => &candidate_pool,
        };
        // One candidate query per cell of each candidate marginal; score =
        // |error| of the current approximation. A cell count has sensitivity
        // 1/n in probability scale.
        let mut cell_ids: Vec<(usize, usize)> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        for &q in candidates {
            let approx = projector.project(&weights, &workload.subsets()[q]);
            for (cell, (a, t)) in approx.iter().zip(&truths[q]).enumerate() {
                cell_ids.push((q, cell));
                scores.push((a - t).abs());
            }
        }
        let chosen =
            exponential_mechanism(&scores, 1.0 / n, eps_select, rng).expect("valid scores");
        let (q, cell) = cell_ids[chosen];

        // Measure the chosen cell (sensitivity 1/n).
        let measured = truths[q][cell] + sample_laplace(1.0 / (n * eps_measure), rng);
        measurements.push((q, cell, measured));

        // Multiplicative-weights passes over the measurement history.
        for _ in 0..options.update_passes.max(1) {
            for &(q, cell, measured) in &measurements {
                let subset = &workload.subsets()[q];
                let approx_cell: f64 = weights
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| projector.cell_of(*idx, subset) == cell)
                    .map(|(_, &w)| w)
                    .sum();
                let factor = ((measured - approx_cell) / 2.0).exp();
                for (idx, w) in weights.iter_mut().enumerate() {
                    if projector.cell_of(idx, subset) == cell {
                        *w *= factor;
                    }
                }
                let total: f64 = weights.iter().sum();
                for w in &mut weights {
                    *w /= total;
                }
            }
        }
    }

    MwemFit { weights, dims }
}

/// Runs MWEM and answers every workload marginal from the final weights.
///
/// # Panics
/// As [`mwem_fit`].
#[must_use]
pub fn mwem_marginals<S: MarginalSource + ?Sized, R: Rng + ?Sized>(
    source: &S,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    options: MwemOptions,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    let fit = mwem_fit(source, workload, epsilon, options, rng);
    workload.subsets().iter().map(|subset| fit.marginal(subset)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::uniform_marginals;
    use privbayes_data::{Attribute, Dataset, Schema};
    use privbayes_marginals::metrics::average_workload_tvd_tables;
    use privbayes_marginals::CountEngine;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn correlated(n: usize, d: usize, seed: u64) -> Dataset {
        let schema =
            Schema::new((0..d).map(|i| Attribute::binary(format!("x{i}"))).collect()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                (0..d).map(|j| if j % 2 == 0 { a } else { 1 - a }).collect()
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn projector_matches_table_projection() {
        let ds = correlated(100, 4, 1);
        let dims = ds.schema().domain_sizes();
        let axes: Vec<Axis> = (0..4).map(Axis::raw).collect();
        let full = ContingencyTable::from_dataset(&ds, &axes);
        let p = Projector::new(&dims);
        let direct = ContingencyTable::from_dataset(&ds, &[Axis::raw(1), Axis::raw(3)]);
        let projected = p.project(full.values(), &[1, 3]);
        for (a, b) in projected.iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn beats_uniform_with_generous_budget() {
        let ds = correlated(2000, 5, 2);
        let w = AlphaWayWorkload::new(5, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let tables = mwem_marginals(
            &CountEngine::new(&ds),
            &w,
            50.0,
            MwemOptions { iterations: 12, ..MwemOptions::default() },
            &mut rng,
        );
        let mwem_err = average_workload_tvd_tables(&ds, &tables, &w);
        let uni_err = average_workload_tvd_tables(&ds, &uniform_marginals(ds.schema(), &w), &w);
        assert!(
            mwem_err < uni_err * 0.5,
            "MWEM ({mwem_err}) should beat uniform ({uni_err}) at ε=50"
        );
    }

    #[test]
    fn tiny_budget_stays_near_uniform() {
        // §6.5: MWEM does not significantly surpass Uniform when ε < 0.2.
        let ds = correlated(500, 5, 4);
        let w = AlphaWayWorkload::new(5, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let tables =
            mwem_marginals(&CountEngine::new(&ds), &w, 0.001, MwemOptions::default(), &mut rng);
        let mwem_err = average_workload_tvd_tables(&ds, &tables, &w);
        let uni_err = average_workload_tvd_tables(&ds, &uniform_marginals(ds.schema(), &w), &w);
        // The paper's observation (§6.5): at tiny ε MWEM does not surpass
        // Uniform (it may be substantially worse, drowned in noise).
        assert!(mwem_err > uni_err - 0.05, "mwem {mwem_err} vs uniform {uni_err}");
    }

    #[test]
    fn outputs_valid_distributions() {
        let ds = correlated(300, 4, 6);
        let w = AlphaWayWorkload::new(4, 3);
        let mut rng = StdRng::seed_from_u64(7);
        for t in mwem_marginals(&CountEngine::new(&ds), &w, 1.0, MwemOptions::default(), &mut rng) {
            assert!((t.total() - 1.0).abs() < 1e-9);
            assert!(t.values().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn candidate_subsampling_path_works() {
        let ds = correlated(300, 5, 8);
        let w = AlphaWayWorkload::new(5, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let opts = MwemOptions { iterations: 5, max_candidates: Some(3), update_passes: 4 };
        let tables = mwem_marginals(&CountEngine::new(&ds), &w, 1.0, opts, &mut rng);
        assert_eq!(tables.len(), w.len());
    }

    #[test]
    fn works_on_non_binary_domains() {
        let schema = Schema::new(vec![
            Attribute::categorical("x", 3).unwrap(),
            Attribute::categorical("y", 4).unwrap(),
            Attribute::binary("z"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let rows: Vec<Vec<u32>> = (0..400)
            .map(|_| {
                let x = rng.random_range(0..3u32);
                vec![x, x + 1, rng.random_range(0..2u32)]
            })
            .collect();
        let ds = Dataset::from_rows(schema, &rows).unwrap();
        let w = AlphaWayWorkload::new(3, 2);
        let tables =
            mwem_marginals(&CountEngine::new(&ds), &w, 20.0, MwemOptions::default(), &mut rng);
        assert_eq!(tables[0].dims(), &[3, 4]);
    }
}
