//! Geometric-mechanism variant of the Laplace baseline: every workload
//! marginal is released on the **count scale** with two-sided geometric
//! (discrete Laplace) noise, then normalised back to a distribution.
//!
//! The paper uses continuous Laplace noise throughout; the geometric
//! mechanism is its integer-valued analogue with slightly lower variance at
//! the same ε. The `abl03_noise` ablation compares the two.

use privbayes_dp::geometric::sample_two_sided_geometric;
use privbayes_marginals::{
    clamp_and_normalize, AlphaWayWorkload, Axis, ContingencyTable, MarginalSource,
};
use rand::Rng;

/// Releases every workload marginal under ε-DP with per-cell two-sided
/// geometric noise at count scale, then applies the consistency
/// post-processing and renormalisation back to probability scale. The exact
/// marginals come from `source` (normally a shared
/// [`privbayes_marginals::CountEngine`]); only the noise consumes `rng`.
///
/// One tuple contributes one count to every marginal, so releasing all
/// `|Q_α|` count-scale marginals has L1 sensitivity `2·|Q_α|`; each marginal
/// runs the geometric mechanism with `α = exp(−ε / (2·|Q_α|))`.
///
/// # Panics
/// Panics if `epsilon <= 0` or the dataset is empty.
#[must_use]
pub fn geometric_marginals<S: MarginalSource + ?Sized, R: Rng + ?Sized>(
    source: &S,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
    let n = source.n();
    assert!(n > 0, "empty dataset");
    let alpha = (-epsilon / (2.0 * workload.len() as f64)).exp();
    workload
        .subsets()
        .iter()
        .map(|subset| {
            let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
            let mut table = source.joint_table(&axes);
            for v in table.values_mut() {
                // Probability-scale cells are exact multiples of 1/n; recover
                // the integer count, perturb, and return to probability scale.
                let count = (*v * n as f64).round();
                let noisy = count + sample_two_sided_geometric(alpha, rng) as f64;
                *v = noisy / n as f64;
            }
            clamp_and_normalize(table.values_mut(), 1.0);
            table
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Dataset, Schema};
    use privbayes_marginals::metrics::average_workload_tvd_tables;
    use privbayes_marginals::CountEngine;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn data(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::categorical("b", 3).unwrap(),
            Attribute::binary("c"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                vec![a, a + rng.random_range(0..2u32), rng.random_range(0..2u32)]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn outputs_valid_distributions() {
        let ds = data(500, 1);
        let w = AlphaWayWorkload::new(3, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let tables = geometric_marginals(&CountEngine::new(&ds), &w, 0.5, &mut rng);
        assert_eq!(tables.len(), w.len());
        for t in &tables {
            assert!((t.total() - 1.0).abs() < 1e-9);
            assert!(t.values().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn error_decreases_with_epsilon() {
        let ds = data(2000, 3);
        let w = AlphaWayWorkload::new(3, 2);
        let avg = |eps: f64| {
            let reps = 10;
            (0..reps)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(100 + s);
                    let tables = geometric_marginals(&CountEngine::new(&ds), &w, eps, &mut rng);
                    average_workload_tvd_tables(&ds, &tables, &w)
                })
                .sum::<f64>()
                / reps as f64
        };
        assert!(avg(10.0) < avg(0.05), "more budget must reduce error");
    }

    #[test]
    fn high_epsilon_is_exact_by_integrality() {
        // Unlike Laplace, the geometric mechanism adds *integer* noise, so at
        // huge ε the sampled noise is exactly 0 with overwhelming probability
        // and the release matches the truth up to renormalisation round-off.
        let ds = data(1000, 4);
        let w = AlphaWayWorkload::new(3, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let tables = geometric_marginals(&CountEngine::new(&ds), &w, 1e3, &mut rng);
        let err = average_workload_tvd_tables(&ds, &tables, &w);
        assert!(err < 1e-12, "integer noise at huge ε must vanish, err = {err}");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_zero_epsilon() {
        let ds = data(10, 6);
        let w = AlphaWayWorkload::new(3, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = geometric_marginals(&CountEngine::new(&ds), &w, 0.0, &mut rng);
    }
}
