//! The Contingency baseline (§6.1): materialise the noisy full-domain
//! contingency table once, then project every workload marginal from it.
//!
//! Feasible only when the total domain fits in memory (NLTCS's 2¹⁶, ACS's
//! 2²³) — exactly the scalability wall the paper's introduction describes.

use privbayes_dp::laplace::sample_laplace;
use privbayes_marginals::{
    clamp_and_normalize, AlphaWayWorkload, Axis, ContingencyTable, MarginalSource,
};
use rand::Rng;

/// Hard cap on the materialised domain (2²⁶ cells ≈ 0.5 GiB of f64).
pub const MAX_CELLS: usize = 1 << 26;

/// Releases the full contingency table under ε-DP (per-cell noise
/// `Lap(2/(n·ε))`, sensitivity 2/n) and projects every workload marginal.
/// The exact full-domain table comes from `source` (normally a shared
/// [`privbayes_marginals::CountEngine`]); only the noise consumes `rng`.
///
/// # Panics
/// Panics if the domain exceeds [`MAX_CELLS`], `epsilon <= 0`, or the data
/// is empty.
#[must_use]
pub fn contingency_marginals<S: MarginalSource + ?Sized, R: Rng + ?Sized>(
    source: &S,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
    assert!(source.n() > 0, "empty dataset");
    let cells: usize = source.schema().domain_sizes().iter().product();
    assert!(
        cells <= MAX_CELLS,
        "domain has {cells} cells; the Contingency baseline is only applicable to small domains"
    );

    let axes: Vec<Axis> = (0..source.schema().len()).map(Axis::raw).collect();
    let mut full = source.joint_table(&axes);
    let scale = 2.0 / (source.n() as f64 * epsilon);
    for v in full.values_mut() {
        *v += sample_laplace(scale, rng);
    }
    clamp_and_normalize(full.values_mut(), 1.0);

    workload.subsets().iter().map(|subset| full.project(subset)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Dataset, Schema};
    use privbayes_marginals::metrics::average_workload_tvd_tables;
    use privbayes_marginals::CountEngine;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn data(n: usize, d: usize, seed: u64) -> Dataset {
        let schema =
            Schema::new((0..d).map(|i| Attribute::binary(format!("x{i}"))).collect()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                (0..d).map(|j| if j < 2 { a } else { rng.random_range(0..2u32) }).collect()
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn projections_are_valid_and_consistent() {
        let ds = data(300, 5, 1);
        let w = AlphaWayWorkload::new(5, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let tables = contingency_marginals(&CountEngine::new(&ds), &w, 0.5, &mut rng);
        assert_eq!(tables.len(), w.len());
        for t in &tables {
            assert!((t.total() - 1.0).abs() < 1e-9, "projections of one table share its mass");
            assert!(t.values().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn high_epsilon_is_accurate() {
        let ds = data(1000, 6, 3);
        let w = AlphaWayWorkload::new(6, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let tables = contingency_marginals(&CountEngine::new(&ds), &w, 1e7, &mut rng);
        let err = average_workload_tvd_tables(&ds, &tables, &w);
        assert!(err < 1e-3, "err = {err}");
    }

    #[test]
    fn small_epsilon_drowns_in_noise() {
        // Signal-to-noise collapse: with n/m small and tiny ε the projected
        // marginals approach uniform — the paper's motivating failure mode.
        let ds = data(200, 10, 5);
        let w = AlphaWayWorkload::new(10, 2);
        let mut rng = StdRng::seed_from_u64(6);
        let tables = contingency_marginals(&CountEngine::new(&ds), &w, 0.01, &mut rng);
        // The (x0,x1) marginal is strongly diagonal in the data but should be
        // nearly uniform in the noisy release.
        let t01 = &tables[0];
        let max_cell = t01.values().iter().copied().fold(0.0, f64::max);
        assert!(max_cell < 0.45, "noise should flatten the marginal, got {max_cell}");
    }

    #[test]
    #[should_panic(expected = "only applicable to small domains")]
    fn rejects_huge_domains() {
        let schema = Schema::new(
            (0..3).map(|i| Attribute::categorical(format!("c{i}"), 1 << 10).unwrap()).collect(),
        )
        .unwrap();
        let ds = Dataset::from_rows(schema, &[vec![0, 0, 0]]).unwrap();
        let w = AlphaWayWorkload::new(3, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = contingency_marginals(&CountEngine::new(&ds), &w, 1.0, &mut rng);
    }
}
