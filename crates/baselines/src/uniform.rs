//! The trivial Uniform baseline (§6.1): answer every marginal query with the
//! uniform distribution. Consumes no privacy budget; its error is the floor
//! that heavily-noised mechanisms degrade towards (Figures 12–13).

use privbayes_data::Schema;
use privbayes_marginals::{AlphaWayWorkload, Axis, ContingencyTable};

/// Uniform answers for every subset of the workload.
#[must_use]
pub fn uniform_marginals(schema: &Schema, workload: &AlphaWayWorkload) -> Vec<ContingencyTable> {
    workload
        .subsets()
        .iter()
        .map(|subset| {
            let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
            let dims: Vec<usize> =
                subset.iter().map(|&a| schema.attribute(a).domain_size()).collect();
            ContingencyTable::uniform(axes, dims)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Dataset, Schema};
    use privbayes_marginals::metrics::average_workload_tvd_tables;

    #[test]
    fn answers_have_right_shape_and_mass() {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::categorical("b", 3).unwrap(),
            Attribute::binary("c"),
        ])
        .unwrap();
        let w = AlphaWayWorkload::new(3, 2);
        let tables = uniform_marginals(&schema, &w);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].dims(), &[2, 3]);
        for t in &tables {
            assert!((t.total() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn error_is_zero_on_uniform_data() {
        let schema = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
        let rows: Vec<Vec<u32>> = (0..4u32).map(|i| vec![i % 2, i / 2]).collect();
        let ds = Dataset::from_rows(schema, &rows).unwrap();
        let w = AlphaWayWorkload::new(2, 2);
        let tables = uniform_marginals(ds.schema(), &w);
        let err = average_workload_tvd_tables(&ds, &tables, &w);
        assert!(err < 1e-12);
    }
}
