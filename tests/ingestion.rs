//! The ingestion tier: continuous data arrival as a first-class, exactly
//! accounted workflow.
//!
//! 1. **Bit-identity** — an incrementally appended [`CountEngine`] answers
//!    every marginal, fits every method, and (loaded into a server) streams
//!    every synthesis byte *identically* to a cold fit over the
//!    concatenated data. Appends and delta merges are the same operation.
//! 2. **Hot swap** — `POST /v1/tenants/{t}/ingest` journals batches,
//!    triggers ledger-accounted background refits, and swaps new model
//!    generations in atomically; in-flight streams pin their generation via
//!    the `pbc2` cursor and resume byte-identically across the swap, while
//!    unpinned requests see the new generation. Aged-out generations answer
//!    a structured `410`.
//! 3. **Accounting** — every refit debits ε through the striped ledger
//!    exactly like `POST /fit`: success spends exactly the spec's ε,
//!    failure refunds it, and an exhausted tenant is refused with no state
//!    change.
//! 4. **Durability** — the dataset journal survives a crash at every step
//!    of its write-temp → fsync → rename → fsync-dir sequence: non-durable
//!    failures roll the append back (the live engine and the on-disk
//!    journal both still show the pre-append rows), while a crash after
//!    the rename is durable and the batch is recovered on reopen.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use privbayes_suite::core::CHUNK_ROWS;
use privbayes_suite::data::csv::write_csv;
use privbayes_suite::data::{Attribute, Dataset, Schema};
use privbayes_suite::marginals::{Axis, ContingencyTable, CountEngine, EngineDelta};
use privbayes_suite::model::{Json, ReleasedModel};
use privbayes_suite::server::{
    BudgetLedger, Client, Cursor, DatasetStore, Fault, FaultPlan, FaultSite, LedgerStep,
    ModelRegistry, RefitPolicy, RefitSpec, Server, ServerConfig, ServerError, ServerHandle,
    SynthSpec, RETAINED_GENERATIONS,
};
use privbayes_suite::synth::{fit_method, fit_method_with_engine, FitSettings, Method, SynthError};

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// The 3-attribute fixture schema used across the serving tiers.
fn schema() -> Schema {
    Schema::new(vec![
        Attribute::binary("smoker"),
        Attribute::categorical("region", 3).unwrap(),
        Attribute::binary("disease"),
    ])
    .unwrap()
}

/// Deterministic correlated rows for `range` (arrival order matters for
/// the bit-identity tests, so the generator is a pure function of the
/// index).
fn rows(range: std::ops::Range<u32>) -> Vec<Vec<u32>> {
    range
        .map(|i| {
            let smoker = (i * 7 + 3) % 5 < 2;
            let region = (i * 11 + smoker as u32) % 3;
            let disease = (smoker && region != 1) || i % 13 == 0;
            vec![u32::from(smoker), region, u32::from(disease)]
        })
        .collect()
}

fn dataset(rows: &[Vec<u32>]) -> Dataset {
    Dataset::from_rows(schema(), rows).unwrap()
}

/// The headered coded-CSV body `POST /v1/tenants/{t}/ingest` accepts.
fn csv_body(rows: &[Vec<u32>]) -> String {
    let mut out = Vec::new();
    write_csv(&dataset(rows), &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

fn refit_spec(model_id: &str, epsilon: f64, seed: u64) -> RefitSpec {
    RefitSpec { model_id: model_id.to_string(), method: Method::PrivBayes, epsilon, seed }
}

/// A release artifact fit over `rows` — the cold-fit oracle.
fn cold_artifact(rows_: &[Vec<u32>], epsilon: f64, seed: u64) -> ReleasedModel {
    fit_method(Method::PrivBayes, &dataset(rows_), epsilon, seed, &FitSettings::default())
        .unwrap()
        .artifact
}

/// A fresh per-test journal directory (recreated empty each run).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("privbayes-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Binds a server over the given stores; returns the pieces tests poke at.
fn start_server(
    config: ServerConfig,
    registry: Arc<ModelRegistry>,
    ledger: Arc<BudgetLedger>,
) -> (ServerHandle, Client) {
    let server = Server::bind("127.0.0.1:0", config, registry, ledger).unwrap();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());
    (handle, client)
}

/// Polls `cond` for up to ten seconds (background refits run on a 20 ms
/// janitor cadence and include a full model fit).
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    for _ in 0..2000 {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

// ---------------------------------------------------------------------------
// 1. Bit-identity: appended engine ≡ cold scan, for counts, fits, and bytes
// ---------------------------------------------------------------------------

/// Appending batches to a tenant's live engine leaves every joint count
/// and every fitted artifact (all six methods) bit-identical to a cold fit
/// over the concatenated data, and a shard-merged [`EngineDelta`] is
/// indistinguishable from row-order appends.
#[test]
fn appends_and_merges_are_bit_identical_to_a_cold_fit() {
    let store = DatasetStore::in_memory();
    let spec = refit_spec("acme-model", 1.0, 7);
    let batches = [rows(0..300), rows(300..500), rows(500..650)];
    for batch in &batches {
        store.append("acme", &dataset(batch), Some(&spec)).unwrap();
    }
    let all = rows(0..650);
    let cold_data = dataset(&all);

    // Every joint marginal is exactly the cold contingency table.
    let axis_sets: &[&[usize]] = &[&[0], &[1], &[2], &[0, 1], &[1, 2], &[0, 2], &[0, 1, 2]];
    for attrs in axis_sets {
        let axes: Vec<Axis> = attrs.iter().map(|&a| Axis::raw(a)).collect();
        let live = store.with_engine("acme", |e| e.joint(&axes)).unwrap();
        let cold = ContingencyTable::from_dataset(&cold_data, &axes).values().to_vec();
        assert_eq!(live, cold, "joint over {attrs:?} must match a cold scan exactly");
    }

    // Every method fits the identical artifact through the appended engine.
    let settings = FitSettings::default();
    for method in Method::ALL {
        let live = store
            .with_engine("acme", |e| fit_method_with_engine(method, e, 1.0, 7, &settings))
            .unwrap()
            .unwrap();
        let cold = fit_method(method, &cold_data, 1.0, 7, &settings).unwrap();
        assert_eq!(
            live.artifact.to_json_string().unwrap(),
            cold.artifact.to_json_string().unwrap(),
            "{method}: refit over appends must serialise bit-identically to a cold fit"
        );
        assert_eq!(live.epsilon_spent, cold.epsilon_spent, "{method}");
    }

    // Shard deltas merged in a different grouping reach the same engine.
    let mut merged = CountEngine::new(&dataset(&rows(0..300)));
    let mut tail = EngineDelta::from_dataset(&dataset(&rows(300..500)));
    tail.merge(EngineDelta::from_dataset(&dataset(&rows(500..650))));
    merged.merge(tail);
    assert_eq!(merged.n(), 650);
    let axes = [Axis::raw(0), Axis::raw(1), Axis::raw(2)];
    assert_eq!(
        merged.joint(&axes),
        ContingencyTable::from_dataset(&cold_data, &axes).values().to_vec(),
        "merge(delta) must equal append-per-batch exactly"
    );
}

/// The whole pipeline end to end: a model refit over an appended engine,
/// loaded into a live server, streams the same synthesis bytes as the
/// cold-fit artifact for the same seed.
#[test]
fn a_refit_model_streams_the_same_bytes_as_a_cold_fit() {
    let store = DatasetStore::in_memory();
    let spec = refit_spec("m-live", 1.0, 11);
    store.append("t", &dataset(&rows(0..400)), Some(&spec)).unwrap();
    store.append("t", &dataset(&rows(400..640)), None).unwrap();
    let live = store
        .with_engine("t", |e| {
            fit_method_with_engine(Method::PrivBayes, e, 1.0, 11, &FitSettings::default())
        })
        .unwrap()
        .unwrap()
        .artifact;
    let cold = cold_artifact(&rows(0..640), 1.0, 11);

    let registry = Arc::new(ModelRegistry::new());
    registry.load("m-live", live).unwrap();
    registry.load("m-cold", cold).unwrap();
    let (handle, client) = start_server(
        ServerConfig { workers: 2, ..ServerConfig::default() },
        registry,
        Arc::new(BudgetLedger::in_memory()),
    );
    for format in ["csv", "ndjson"] {
        assert_eq!(
            client.synth("m-live", CHUNK_ROWS + 321, 9, format).unwrap(),
            client.synth("m-cold", CHUNK_ROWS + 321, 9, format).unwrap(),
            "{format}: streamed bytes must not depend on which fit path built the model"
        );
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// 2. Ingest → journal → ledger-accounted refit → generations
// ---------------------------------------------------------------------------

/// `POST /v1/tenants/{t}/ingest` accepts schema-validated batches, the
/// background refit debits exactly the spec's ε per generation, the
/// generation list grows newest-first, the new model serves the cold-fit
/// bytes over all rows so far, and the journal survives a restart.
#[test]
fn ingest_triggers_ledger_accounted_refits_and_new_generations() {
    let dir = temp_dir("refit");
    let registry = Arc::new(ModelRegistry::new());
    let ledger = Arc::new(BudgetLedger::in_memory());
    ledger.register("acme", 2.0).unwrap();
    let config = ServerConfig {
        workers: 2,
        fit_threads: Some(1),
        data_dir: Some(dir.clone()),
        refit: RefitPolicy { min_rows: 1, max_staleness: None },
        ..ServerConfig::default()
    };
    let (handle, client) = start_server(config, Arc::clone(&registry), Arc::clone(&ledger));

    // First batch must carry the schema and the refit target.
    let first = Json::object(vec![
        ("schema", schema_json()),
        ("model_id", Json::String("acme-model".into())),
        ("epsilon", Json::Number(0.5)),
        ("method", Json::String("privbayes".into())),
        ("seed", Json::Number(9.0)),
        ("csv", Json::String(csv_body(&rows(0..40)))),
    ]);
    let response = client.ingest("acme", &first).unwrap();
    assert_eq!(response.code, 200, "{}", response.text());
    let receipt = Json::parse(&response.text()).unwrap();
    assert_eq!(receipt.get("batch_rows").and_then(Json::as_usize), Some(40));
    assert_eq!(receipt.get("total_rows").and_then(Json::as_usize), Some(40));
    assert_eq!(receipt.get("pending_rows").and_then(Json::as_usize), Some(40));

    // The janitor refits in the background; the charge is exactly ε.
    assert!(eventually(|| registry.get("acme-model").is_some()), "first refit never landed");
    let tenant = client.tenant("acme").unwrap();
    assert_eq!(tenant.get("spent").and_then(Json::as_f64), Some(0.5));
    let gens = client.generations("acme-model").unwrap();
    assert_eq!(gens.get("retained").and_then(Json::as_usize), Some(1));
    let gen1 = generation_of(&gens, 0);

    // Later batches need neither schema nor spec; each refit is a new,
    // strictly newer generation and another exact ε debit.
    let second = Json::object(vec![("csv", Json::String(csv_body(&rows(40..70))))]);
    let response = client.ingest("acme", &second).unwrap();
    assert_eq!(response.code, 200, "{}", response.text());
    let receipt = Json::parse(&response.text()).unwrap();
    assert_eq!(receipt.get("total_rows").and_then(Json::as_usize), Some(70));
    assert_eq!(receipt.get("pending_rows").and_then(Json::as_usize), Some(30));
    assert!(
        eventually(|| {
            client
                .generations("acme-model")
                .ok()
                .and_then(|g| g.get("retained").and_then(Json::as_usize))
                == Some(2)
        }),
        "second refit never landed"
    );
    let tenant = client.tenant("acme").unwrap();
    assert_eq!(tenant.get("spent").and_then(Json::as_f64), Some(1.0));
    let gens = client.generations("acme-model").unwrap();
    assert!(generation_of(&gens, 0) > gen1, "generations must be strictly increasing");

    // The served model covers all 70 rows and is bit-identical to a cold
    // fit of the concatenated data at the spec's (ε, seed).
    let entry = registry.get("acme-model").unwrap();
    assert_eq!(entry.artifact.metadata.source_rows, 70);
    client.load_model("oracle", &cold_artifact(&rows(0..70), 0.5, 9)).unwrap();
    assert_eq!(
        client.synth("acme-model", 500, 3, "csv").unwrap(),
        client.synth("oracle", 500, 3, "csv").unwrap(),
        "the refit generation must serve the cold-fit bytes"
    );

    // The ingest metric families are exact.
    let snapshot = client.metrics().unwrap();
    assert_eq!(snapshot.value("privbayes_ingest_rows_total", &[("tenant", "acme")]), Some(70.0));
    assert_eq!(snapshot.value("privbayes_refits_total", &[("status", "ok")]), Some(2.0));
    assert_eq!(
        snapshot.value("privbayes_model_generation", &[("model", "acme-model")]),
        Some(generation_of(&gens, 0) as f64)
    );

    client.shutdown().unwrap();
    handle.join().unwrap();

    // The journal recovered by a fresh process covers everything: all 70
    // rows, all fitted, the refit target intact, and the engine answers
    // the cold counts.
    let reopened = DatasetStore::open(&dir).unwrap();
    let tenants = reopened.snapshot();
    assert_eq!(tenants.len(), 1);
    assert_eq!(tenants[0].tenant, "acme");
    assert_eq!(tenants[0].total_rows, 70);
    assert_eq!(tenants[0].fitted_rows, 70);
    assert_eq!(tenants[0].refit, refit_spec("acme-model", 0.5, 9));
    let axes = [Axis::raw(0), Axis::raw(1), Axis::raw(2)];
    assert_eq!(
        reopened.with_engine("acme", |e| e.joint(&axes)).unwrap(),
        ContingencyTable::from_dataset(&dataset(&rows(0..70)), &axes).values().to_vec()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fixture schema as the JSON the ingest endpoint accepts.
fn schema_json() -> Json {
    privbayes_suite::model::schema_to_json(&schema())
}

fn generation_of(gens: &Json, index: usize) -> u64 {
    let list = match gens.get("generations") {
        Some(Json::Array(items)) => items,
        other => panic!("generations must be an array, got {other:?}"),
    };
    list[index].get("generation").and_then(Json::as_usize).unwrap() as u64
}

// ---------------------------------------------------------------------------
// 3. Hot swap: pinned cursors, unpinned requests, aged-out generations
// ---------------------------------------------------------------------------

/// A stream interrupted mid-chunk resumes byte-identically *across a hot
/// swap* because its cursor pins the generation it started on; an unpinned
/// request sees the new generation immediately; a cursor whose generation
/// has aged out of the retained window answers a structured `410`.
#[test]
fn pinned_cursors_survive_hot_swap_and_aged_out_generations_answer_410() {
    let registry = Arc::new(ModelRegistry::new());
    registry.load("m", cold_artifact(&rows(0..400), 1.0, 1)).unwrap();
    let (handle, client) = start_server(
        ServerConfig { workers: 2, ..ServerConfig::default() },
        Arc::clone(&registry),
        Arc::new(BudgetLedger::in_memory()),
    );

    let total = 2 * CHUNK_ROWS + 137;
    let spec = SynthSpec::new().with_rows(total).with_seed(9);
    let full = client.synth_with("m", &spec).unwrap();
    let token = full.header("x-privbayes-cursor").expect("v1 streams carry a cursor").to_string();
    let gen1 = Cursor::decode(&token)
        .expect("cursor must decode")
        .generation
        .expect("v1 cursors pin the serving generation (pbc2)");
    let full_text = full.text();

    // Hot swap: a different fit becomes the new generation. Unpinned
    // requests serve it at once.
    registry.load("m", cold_artifact(&rows(0..400), 1.0, 2)).unwrap();
    let swapped = client.synth_with("m", &spec).unwrap();
    assert_ne!(swapped.text(), full_text, "the swap must change unpinned streams");
    let gen2 =
        Cursor::decode(swapped.header("x-privbayes-cursor").unwrap()).unwrap().generation.unwrap();
    assert!(gen2 > gen1);

    // A resume pinned to the old generation reproduces the original bytes
    // even though the registry now serves a different model.
    let resume_at = CHUNK_ROWS + 211;
    let resumed = client
        .synth_with(
            "m",
            &SynthSpec::new().with_rows(total).with_cursor(Cursor {
                seed: 9,
                row: resume_at as u64,
                generation: Some(gen1),
            }),
        )
        .unwrap();
    let prefix: String = full_text.lines().take(1 + resume_at).map(|l| format!("{l}\n")).collect();
    assert_eq!(
        format!("{prefix}{}", resumed.text()),
        full_text,
        "prefix + pinned resume must equal the uninterrupted pre-swap stream"
    );

    // Push gen1 out of the retained window; the pinned resume now gets a
    // structured 410 telling the client to restart.
    for seed in 0..RETAINED_GENERATIONS as u64 {
        registry.load("m", cold_artifact(&rows(0..400), 1.0, 10 + seed)).unwrap();
    }
    let err = client
        .synth_with(
            "m",
            &SynthSpec::new().with_rows(total).with_cursor(Cursor {
                seed: 9,
                row: resume_at as u64,
                generation: Some(gen1),
            }),
        )
        .unwrap_err();
    match err {
        ServerError::Status { code: 410, body } => {
            assert!(body.contains("generation-evicted"), "{body}");
        }
        other => panic!("expected 410 generation-evicted, got {other}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// 4. Refit accounting: refusal without charge, refund on failure
// ---------------------------------------------------------------------------

/// A tenant whose remaining budget cannot cover the refit ε is refused
/// with no ledger movement and no model — exactly the `POST /fit`
/// discipline, applied by the janitor.
#[test]
fn an_exhausted_tenant_is_refused_without_any_ledger_movement() {
    let registry = Arc::new(ModelRegistry::new());
    let ledger = Arc::new(BudgetLedger::in_memory());
    ledger.register("poor", 0.25).unwrap();
    let config = ServerConfig {
        workers: 2,
        fit_threads: Some(1),
        refit: RefitPolicy { min_rows: 1, max_staleness: None },
        ..ServerConfig::default()
    };
    let (handle, client) = start_server(config, Arc::clone(&registry), Arc::clone(&ledger));

    let body = Json::object(vec![
        ("schema", schema_json()),
        ("model_id", Json::String("poor-model".into())),
        ("epsilon", Json::Number(0.5)),
        ("csv", Json::String(csv_body(&rows(0..30)))),
    ]);
    assert_eq!(client.ingest("poor", &body).unwrap().code, 200);
    assert!(
        eventually(|| {
            client
                .metrics()
                .ok()
                .and_then(|s| s.value("privbayes_refits_total", &[("status", "exhausted")]))
                .is_some_and(|v| v >= 1.0)
        }),
        "the exhausted refit attempt was never recorded"
    );
    assert!(registry.get("poor-model").is_none(), "no model may appear");

    client.shutdown().unwrap();
    handle.join().unwrap();
    // After the janitor has stopped, the ledger shows zero movement.
    let budgets = ledger.snapshot();
    assert_eq!(budgets.len(), 1);
    assert_eq!(budgets[0].spent, 0.0, "a refused charge must not move the ledger");
}

/// A refit whose *fit* fails (here: a one-attribute schema, which no
/// method accepts) refunds its charge in full.
#[test]
fn a_failed_refit_refunds_its_charge() {
    // The store accepts the batch — schema validation is per-row, and a
    // one-column dataset is well-formed; only the fit rejects it.
    let one_col = Schema::new(vec![Attribute::binary("smoker")]).unwrap();
    let narrow =
        Dataset::from_rows(one_col, &(0..20).map(|i| vec![i % 2]).collect::<Vec<_>>()).unwrap();
    assert!(matches!(
        fit_method(Method::PrivBayes, &narrow, 0.5, 9, &FitSettings::default()),
        Err(SynthError::InvalidConfig(_))
    ));
    let mut csv = Vec::new();
    write_csv(&narrow, &mut csv).unwrap();

    let registry = Arc::new(ModelRegistry::new());
    let ledger = Arc::new(BudgetLedger::in_memory());
    ledger.register("acme", 2.0).unwrap();
    let config = ServerConfig {
        workers: 2,
        fit_threads: Some(1),
        refit: RefitPolicy { min_rows: 1, max_staleness: None },
        ..ServerConfig::default()
    };
    let (handle, client) = start_server(config, Arc::clone(&registry), Arc::clone(&ledger));

    let body = Json::object(vec![
        ("schema", privbayes_suite::model::schema_to_json(narrow.schema())),
        ("model_id", Json::String("narrow-model".into())),
        ("epsilon", Json::Number(0.5)),
        ("csv", Json::String(String::from_utf8(csv).unwrap())),
    ]);
    assert_eq!(client.ingest("acme", &body).unwrap().code, 200);
    assert!(
        eventually(|| {
            client
                .metrics()
                .ok()
                .and_then(|s| s.value("privbayes_refits_total", &[("status", "failed")]))
                .is_some_and(|v| v >= 1.0)
        }),
        "the failed refit was never recorded"
    );
    assert!(registry.get("narrow-model").is_none());

    client.shutdown().unwrap();
    handle.join().unwrap();
    // Charged, fit failed, refunded: net zero once the janitor stops.
    let budgets = ledger.snapshot();
    assert_eq!(budgets[0].spent, 0.0, "a failed refit must refund its charge in full");
}

// ---------------------------------------------------------------------------
// 5. Journal durability: a crash at every persist step
// ---------------------------------------------------------------------------

/// The dataset journal inherits the ledger's crash contract: a fault at
/// any point up to (and including the instant before) the rename rolls the
/// append back — live engine untouched, a reopened store sees only the
/// first batch — while a crash before the final directory fsync is already
/// durable. A retried append always lands, and the recovered engine
/// answers the exact cold counts either way.
#[test]
fn the_dataset_journal_survives_a_crash_at_every_persist_step() {
    let spec = refit_spec("acme-model", 1.0, 7);
    let cases: &[(&str, Fault, bool)] = &[
        ("fail", Fault::Fail, false),
        ("torn", Fault::ShortWrite, false),
        ("crash-write", Fault::CrashAt(LedgerStep::WriteTmp), false),
        ("crash-sync", Fault::CrashAt(LedgerStep::SyncTmp), false),
        ("crash-rename", Fault::CrashAt(LedgerStep::Rename), false),
        ("crash-syncdir", Fault::CrashAt(LedgerStep::SyncDir), true),
    ];
    for &(tag, fault, durable) in cases {
        let dir = temp_dir(&format!("crash-{tag}"));
        let store = DatasetStore::open(&dir).unwrap();
        store.append("acme", &dataset(&rows(0..5)), Some(&spec)).unwrap();

        store.set_fault_plan(Some(Arc::new(FaultPlan::new().inject(
            FaultSite::DatasetPersist,
            0,
            fault,
        ))));
        let outcome = store.append("acme", &dataset(&rows(5..8)), None);
        store.set_fault_plan(None);

        if durable {
            // The rename happened: the batch is on disk and in the engine
            // even though the process "died" before the directory fsync.
            let receipt = outcome.unwrap_or_else(|e| panic!("{tag}: {e}"));
            assert_eq!(receipt.total_rows, 8, "{tag}");
        } else {
            // The journal is the commit point: no journal, no append.
            assert!(outcome.is_err(), "{tag}: a non-durable fault must fail the append");
            assert_eq!(
                store.with_engine("acme", CountEngine::n),
                Some(5),
                "{tag}: the live engine must be untouched after rollback"
            );
            let midway = DatasetStore::open(&dir).unwrap();
            assert_eq!(
                midway.snapshot()[0].total_rows,
                5,
                "{tag}: a reopened store must see only the committed batch"
            );
            // The client retries the rejected batch; it lands cleanly.
            let receipt = store.append("acme", &dataset(&rows(5..8)), None).unwrap();
            assert_eq!(receipt.total_rows, 8, "{tag}");
        }

        // Either way the journal now holds all 8 rows, bit-exact.
        let recovered = DatasetStore::open(&dir).unwrap();
        let tenants = recovered.snapshot();
        assert_eq!(tenants[0].total_rows, 8, "{tag}");
        assert_eq!(tenants[0].refit, spec, "{tag}");
        let axes = [Axis::raw(0), Axis::raw(1), Axis::raw(2)];
        assert_eq!(
            recovered.with_engine("acme", |e| e.joint(&axes)).unwrap(),
            ContingencyTable::from_dataset(&dataset(&rows(0..8)), &axes).values().to_vec(),
            "{tag}: the recovered engine must answer the exact cold counts"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
