//! Synthesizer-equivalence tier (PR 4).
//!
//! Two families of guarantees behind the unified `Synthesizer` layer:
//!
//! 1. **Engine/reference bit-identity.** Every engine-routed baseline
//!    (Laplace, geometric, Contingency, Fourier, MWEM) produces tables
//!    **bit-identical** to its pre-refactor `ContingencyTable::from_dataset`
//!    reference (`privbayes_bench::reference`) for a fixed seed — the count
//!    engine changed how marginals are *computed*, never what they *are*.
//! 2. **Fit → serve → stream round-trips.** Every `Method` fits to a
//!    `privbayes-model/1` artifact that survives a JSON round-trip, loads
//!    into the server registry, and streams rows byte-identical to the batch
//!    sampling path — one serving core for the whole method family.

use std::sync::Arc;

use privbayes_bench::reference::{
    reference_contingency_marginals, reference_fourier_marginals, reference_geometric_marginals,
    reference_laplace_marginals, reference_mwem_marginals,
};
use privbayes_suite::baselines::{
    contingency_marginals, fourier_marginals, geometric_marginals, laplace_marginals,
    mwem_marginals, MwemOptions,
};
use privbayes_suite::data::csv::write_csv;
use privbayes_suite::data::{Attribute, Dataset, Schema};
use privbayes_suite::marginals::{AlphaWayWorkload, ContingencyTable, CountEngine};
use privbayes_suite::model::{Json, ReleasedModel};
use privbayes_suite::server::{BudgetLedger, Client, ModelRegistry, Server, ServerConfig};
use privbayes_suite::synth::{fit_method, FitSettings, Method};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A mixed-domain dataset with genuine pairwise structure.
fn mixed_data(n: usize, seed: u64) -> Dataset {
    let schema = Schema::new(vec![
        Attribute::binary("a"),
        Attribute::categorical("b", 3).unwrap(),
        Attribute::binary("c"),
        Attribute::categorical("d", 4).unwrap(),
    ])
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            let a = rng.random_range(0..2u32);
            vec![a, a + rng.random_range(0..2u32), a, a * 2 + rng.random_range(0..2u32)]
        })
        .collect();
    Dataset::from_rows(schema, &rows).unwrap()
}

fn assert_bit_identical(name: &str, engine: &[ContingencyTable], reference: &[ContingencyTable]) {
    assert_eq!(engine.len(), reference.len(), "{name}: table count");
    for (i, (e, r)) in engine.iter().zip(reference).enumerate() {
        assert_eq!(e.axes(), r.axes(), "{name}[{i}]: axes");
        assert_eq!(e.dims(), r.dims(), "{name}[{i}]: dims");
        for (j, (a, b)) in e.values().iter().zip(r.values()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{name}[{i}] cell {j}: engine {a} vs reference {b}"
            );
        }
    }
}

#[test]
fn laplace_engine_is_bit_identical_to_scan_reference() {
    let data = mixed_data(700, 1);
    let workload = AlphaWayWorkload::new(data.d(), 2);
    for seed in [3u64, 17, 91] {
        let engine = laplace_marginals(
            &CountEngine::new(&data),
            &workload,
            0.4,
            &mut StdRng::seed_from_u64(seed),
        );
        let reference =
            reference_laplace_marginals(&data, &workload, 0.4, &mut StdRng::seed_from_u64(seed));
        assert_bit_identical("laplace", &engine, &reference);
    }
}

#[test]
fn geometric_engine_is_bit_identical_to_scan_reference() {
    let data = mixed_data(700, 2);
    let workload = AlphaWayWorkload::new(data.d(), 3);
    for seed in [5u64, 23] {
        let engine = geometric_marginals(
            &CountEngine::new(&data),
            &workload,
            0.7,
            &mut StdRng::seed_from_u64(seed),
        );
        let reference =
            reference_geometric_marginals(&data, &workload, 0.7, &mut StdRng::seed_from_u64(seed));
        assert_bit_identical("geometric", &engine, &reference);
    }
}

#[test]
fn contingency_engine_is_bit_identical_to_scan_reference() {
    let data = mixed_data(500, 3);
    let workload = AlphaWayWorkload::new(data.d(), 2);
    let engine = contingency_marginals(
        &CountEngine::new(&data),
        &workload,
        0.5,
        &mut StdRng::seed_from_u64(8),
    );
    let reference =
        reference_contingency_marginals(&data, &workload, 0.5, &mut StdRng::seed_from_u64(8));
    assert_bit_identical("contingency", &engine, &reference);
}

#[test]
fn fourier_engine_is_bit_identical_to_scan_reference() {
    let data = mixed_data(400, 4);
    let workload = AlphaWayWorkload::new(data.d(), 2);
    let engine = fourier_marginals(&data, &workload, 0.6, &mut StdRng::seed_from_u64(12));
    let reference =
        reference_fourier_marginals(&data, &workload, 0.6, &mut StdRng::seed_from_u64(12));
    assert_bit_identical("fourier", &engine, &reference);
}

#[test]
fn mwem_engine_is_bit_identical_to_scan_reference() {
    let data = mixed_data(600, 5);
    let workload = AlphaWayWorkload::new(data.d(), 2);
    for opts in [
        MwemOptions { iterations: 3, ..MwemOptions::default() },
        MwemOptions { iterations: 5, max_candidates: Some(3), update_passes: 2 },
    ] {
        let engine = mwem_marginals(
            &CountEngine::new(&data),
            &workload,
            0.9,
            opts,
            &mut StdRng::seed_from_u64(31),
        );
        let reference =
            reference_mwem_marginals(&data, &workload, 0.9, opts, &mut StdRng::seed_from_u64(31));
        assert_bit_identical("mwem", &engine, &reference);
    }
}

#[test]
fn mwem_truths_are_served_by_projection_not_rescans() {
    // The speedup mechanism the bench measures: one full-domain count, every
    // workload truth an integer projection.
    let data = mixed_data(600, 6);
    let workload = AlphaWayWorkload::new(data.d(), 2);
    let engine = CountEngine::new(&data);
    let _ = mwem_marginals(
        &engine,
        &workload,
        1.0,
        MwemOptions::default(),
        &mut StdRng::seed_from_u64(1),
    );
    let stats = engine.stats();
    assert_eq!(stats.scans, 1, "exactly the full-domain joint is counted: {stats:?}");
    assert_eq!(stats.projections, workload.len(), "one projection per truth: {stats:?}");
}

/// Every method: fit → JSON round-trip → register → stream, with the
/// streamed CSV byte-identical to the batch sampler.
#[test]
fn every_method_fits_serves_and_streams_round_trip() {
    let data = mixed_data(500, 7);
    let registry = Arc::new(ModelRegistry::new());
    let settings = FitSettings::default();
    for method in Method::ALL {
        let fitted = fit_method(method, &data, 1.2, 42, &settings)
            .unwrap_or_else(|e| panic!("{method}: {e}"));
        // Serialise → parse → identical artifact with the method recorded.
        let text = fitted.artifact.to_json_string().unwrap();
        let back = ReleasedModel::from_json_string(&text).unwrap();
        assert_eq!(back, fitted.artifact, "{method}: JSON round-trip");
        assert_eq!(back.metadata.method, method.name());
        registry.load(method.name(), back).unwrap();
    }

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 4, ..ServerConfig::default() },
        Arc::clone(&registry),
        Arc::new(BudgetLedger::in_memory()),
    )
    .unwrap();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());
    for method in Method::ALL {
        let streamed = client.synth(method.name(), 300, 9, "csv").unwrap();
        let entry = registry.get(method.name()).unwrap();
        let direct = entry
            .sampler()
            .unwrap()
            .sample_dataset(300, None, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let mut expected = Vec::new();
        write_csv(&direct, &mut expected).unwrap();
        assert_eq!(
            streamed.as_bytes(),
            &expected[..],
            "{method}: streamed CSV must match the batch sampler byte-for-byte"
        );
        let jsonl = client.synth(method.name(), 64, 9, "jsonl").unwrap();
        assert_eq!(jsonl.lines().count(), 64, "{method}: one JSONL object per row");
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// `POST /fit` accepts a `method` field and the registry serves the result
/// through the existing streaming path.
#[test]
fn server_fit_endpoint_dispatches_methods() {
    let schema_json = r#"[{"name": "x", "kind": "binary"},
                          {"name": "y", "kind": "binary"},
                          {"name": "z", "kind": "binary"}]"#;
    let mut csv = String::from("x,y,z\n");
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..300 {
        let x = rng.random_range(0..2u32);
        csv.push_str(&format!("v{x},v{x},v{}\n", rng.random_range(0..2u32)));
    }

    let registry = Arc::new(ModelRegistry::new());
    let ledger = BudgetLedger::in_memory();
    ledger.register("acme", 10.0).unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&registry),
        Arc::new(ledger),
    )
    .unwrap();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());

    for (method, expect_spend) in [("mwem", true), ("laplace", true), ("uniform", false)] {
        let before = client.tenant("acme").unwrap().get("spent").and_then(Json::as_f64).unwrap();
        let body = format!(
            r#"{{"tenant": "acme", "model_id": "m-{method}", "method": "{method}",
                 "epsilon": 1.0, "seed": 5, "schema": {schema_json}, "csv": {csv:?}}}"#,
        );
        let response = client.fit_raw(&Json::parse(&body).unwrap()).unwrap();
        assert_eq!(response.code, 201, "{method}: {}", response.text());
        let response = Json::parse(&response.text()).unwrap();
        assert_eq!(
            response.get("method").and_then(Json::as_str),
            Some(method),
            "fit response carries the method"
        );
        let after = client.tenant("acme").unwrap().get("spent").and_then(Json::as_f64).unwrap();
        if expect_spend {
            assert!((after - before - 1.0).abs() < 1e-9, "{method} debits ε");
        } else {
            assert_eq!(after, before, "{method} spends no budget");
        }
        let streamed = client.synth(&format!("m-{method}"), 50, 2, "csv").unwrap();
        assert_eq!(streamed.lines().count(), 51, "{method}: header + 50 rows");
    }

    // Unknown methods are rejected before any budget is charged.
    let before = client.tenant("acme").unwrap().get("spent").and_then(Json::as_f64).unwrap();
    let body = format!(
        r#"{{"tenant": "acme", "model_id": "bad", "method": "frequentist",
             "epsilon": 1.0, "schema": {schema_json}, "csv": {csv:?}}}"#,
    );
    let response = client.fit_raw(&Json::parse(&body).unwrap()).unwrap();
    assert_eq!(response.code, 400, "unknown method is a bad request");
    assert!(response.text().contains("frequentist"), "{}", response.text());
    let after = client.tenant("acme").unwrap().get("spent").and_then(Json::as_f64).unwrap();
    assert_eq!(after, before, "rejected request must not charge");

    client.shutdown().unwrap();
    handle.join().unwrap();
}
