//! Integration tests: the count-query baselines against the shared marginal
//! engine, reproducing the qualitative orderings of §6.5.

use privbayes_suite::baselines::{
    contingency_marginals, fourier_marginals, laplace_marginals, mwem_marginals, uniform_marginals,
    MwemOptions,
};
use privbayes_suite::core::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_suite::datasets::{adult, nltcs};
use privbayes_suite::marginals::metrics::average_workload_tvd_tables;
use privbayes_suite::marginals::{average_workload_tvd, AlphaWayWorkload, CountEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_baselines_produce_one_table_per_query() {
    let data = nltcs::nltcs_sized(1, 800).data;
    let workload = AlphaWayWorkload::new(data.d(), 3);
    let mut rng = StdRng::seed_from_u64(2);
    let mwem = MwemOptions { iterations: 4, max_candidates: Some(20), update_passes: 2 };

    let all = [
        laplace_marginals(&CountEngine::new(&data), &workload, 0.4, &mut rng),
        fourier_marginals(&data, &workload, 0.4, &mut rng),
        contingency_marginals(&CountEngine::new(&data), &workload, 0.4, &mut rng),
        mwem_marginals(&CountEngine::new(&data), &workload, 0.4, mwem, &mut rng),
        uniform_marginals(data.schema(), &workload),
    ];
    for tables in &all {
        assert_eq!(tables.len(), workload.len());
        for (t, subset) in tables.iter().zip(workload.subsets()) {
            let dims: Vec<usize> =
                subset.iter().map(|&a| data.schema().attribute(a).domain_size()).collect();
            assert_eq!(t.dims(), &dims[..]);
            assert!((t.total() - 1.0).abs() < 1e-6);
        }
    }
}

#[test]
fn privbayes_beats_laplace_at_small_epsilon() {
    // The paper's headline (Fig. 12): at small ε on a 3-way workload,
    // PrivBayes' low-dimensional model beats per-marginal Laplace noise.
    let data = nltcs::nltcs_sized(3, 4000).data;
    let workload = AlphaWayWorkload::new(data.d(), 3);
    let eps = 0.05;
    let reps = 4;

    let pb: f64 = (0..reps)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(10 + s);
            let r = PrivBayes::new(PrivBayesOptions::new(eps))
                .synthesize(&data, &mut rng)
                .expect("synthesis");
            average_workload_tvd(&data, &r.synthetic, 3)
        })
        .sum::<f64>()
        / reps as f64;
    let lap: f64 = (0..reps)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(20 + s);
            let tables = laplace_marginals(&CountEngine::new(&data), &workload, eps, &mut rng);
            average_workload_tvd_tables(&data, &tables, &workload)
        })
        .sum::<f64>()
        / reps as f64;
    assert!(pb < lap, "PrivBayes ({pb:.4}) should beat Laplace ({lap:.4}) at ε = {eps}");
}

#[test]
fn laplace_converges_to_truth_at_large_epsilon() {
    let data = nltcs::nltcs_sized(4, 2000).data;
    let workload = AlphaWayWorkload::new(data.d(), 2);
    let mut rng = StdRng::seed_from_u64(5);
    let tables = laplace_marginals(&CountEngine::new(&data), &workload, 1e5, &mut rng);
    let err = average_workload_tvd_tables(&data, &tables, &workload);
    assert!(err < 1e-2, "Laplace at huge ε is near-exact, err = {err}");
}

#[test]
fn fourier_handles_mixed_domains_via_binarisation() {
    let data = adult::adult_sized(6, 600).data;
    let workload = AlphaWayWorkload::new(data.d(), 2);
    let mut rng = StdRng::seed_from_u64(7);
    let tables = fourier_marginals(&data, &workload, 1.0, &mut rng);
    assert_eq!(tables.len(), workload.len());
    let err = average_workload_tvd_tables(&data, &tables, &workload);
    assert!((0.0..=1.0).contains(&err));
}

#[test]
fn uniform_is_the_epsilon_free_floor() {
    let data = nltcs::nltcs_sized(8, 1000).data;
    let workload = AlphaWayWorkload::new(data.d(), 3);
    let uni = uniform_marginals(data.schema(), &workload);
    let uni_err = average_workload_tvd_tables(&data, &uni, &workload);
    // Heavily-noised Laplace degrades to (or beyond) the Uniform floor.
    let mut rng = StdRng::seed_from_u64(9);
    let lap = laplace_marginals(&CountEngine::new(&data), &workload, 0.005, &mut rng);
    let lap_err = average_workload_tvd_tables(&data, &lap, &workload);
    assert!(lap_err > uni_err * 0.8, "tiny-ε Laplace ({lap_err}) ≳ uniform floor ({uni_err})");
}
