//! Cross-crate integration: fit (core) → release (model) → reload → consume
//! (sampler + §7 inference). Verifies the full "publish the model, not just
//! one sample" workflow end to end, including bit-exactness of the text
//! round-trip and agreement between the restored model's answers and the
//! original's.

use privbayes::inference::{model_marginal, DEFAULT_CELL_CAP};
use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_data::encoding::EncodingKind;
use privbayes_data::{Attribute, Dataset, Schema, TaxonomyTree};
use privbayes_marginals::total_variation;
use privbayes_model::{ModelMetadata, ReleasedModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn census_like(n: usize, seed: u64) -> Dataset {
    let schema = Schema::new(vec![
        Attribute::binary("retired"),
        Attribute::continuous("age", 0.0, 80.0, 16)
            .unwrap()
            .with_taxonomy(TaxonomyTree::balanced_binary(16).unwrap())
            .unwrap(),
        Attribute::categorical_labelled("work", ["gov", "private", "self", "none"])
            .unwrap()
            .with_taxonomy(TaxonomyTree::from_groups(4, &[vec![0, 1], vec![2, 3]]).unwrap())
            .unwrap(),
    ])
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            let age = rng.random_range(0..16u32);
            let retired = u32::from(age >= 12);
            let work = if retired == 1 { 3 } else { rng.random_range(0..3u32) };
            vec![retired, age, work]
        })
        .collect();
    Dataset::from_rows(schema, &rows).unwrap()
}

fn release(data: &Dataset, epsilon: f64, encoding: EncodingKind, seed: u64) -> ReleasedModel {
    let options = PrivBayesOptions::new(epsilon).with_encoding(encoding);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = PrivBayes::new(options.clone()).synthesize(data, &mut rng).unwrap();
    ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon,
            beta: options.beta,
            theta: options.theta,
            score: options.effective_score().name().to_string(),
            encoding: options.encoding.name().to_string(),
            source_rows: data.n(),
            comment: "integration test".into(),
        },
        data.schema().clone(),
        result.model,
    )
    .unwrap()
}

#[test]
fn text_round_trip_is_bit_exact_for_both_general_encodings() {
    let data = census_like(600, 1);
    for encoding in [EncodingKind::Vanilla, EncodingKind::Hierarchical] {
        let artifact = release(&data, 1.0, encoding, 2);
        let text = artifact.to_json_string().unwrap();
        let restored = ReleasedModel::from_json_string(&text).unwrap();
        assert_eq!(restored, artifact, "{encoding:?} artifact must survive the text round-trip");
        // And a second serialisation is byte-identical (deterministic output).
        assert_eq!(restored.to_json_string().unwrap(), text);
    }
}

#[test]
fn restored_model_answers_queries_identically() {
    let data = census_like(800, 3);
    let artifact = release(&data, 2.0, EncodingKind::Hierarchical, 4);
    let restored = ReleasedModel::from_json_string(&artifact.to_json_string().unwrap()).unwrap();
    for attrs in [vec![0usize], vec![1], vec![0, 2], vec![2, 1], vec![0, 1, 2]] {
        let a =
            model_marginal(&artifact.model, &artifact.schema, &attrs, DEFAULT_CELL_CAP).unwrap();
        let b =
            model_marginal(&restored.model, &restored.schema, &attrs, DEFAULT_CELL_CAP).unwrap();
        assert_eq!(a, b, "attrs {attrs:?}");
    }
}

#[test]
fn sampling_and_inference_agree_on_the_released_artifact() {
    // Inference gives the model's exact marginal; a large synthetic sample
    // from the same artifact must converge to it.
    let data = census_like(700, 5);
    let artifact = release(&data, 5.0, EncodingKind::Vanilla, 6);
    let mut rng = StdRng::seed_from_u64(7);
    let sample = artifact.sample(120_000, &mut rng).unwrap();
    let exact =
        model_marginal(&artifact.model, &artifact.schema, &[0, 2], DEFAULT_CELL_CAP).unwrap();
    let empirical = privbayes_marginals::ContingencyTable::from_dataset(
        &sample,
        &[privbayes_marginals::Axis::raw(0), privbayes_marginals::Axis::raw(2)],
    );
    let tvd = total_variation(exact.values(), empirical.values());
    assert!(tvd < 0.01, "sample must converge to the exact model marginal, tvd = {tvd}");
}

#[test]
fn tampered_artifacts_are_rejected_on_load() {
    let data = census_like(300, 8);
    let artifact = release(&data, 1.0, EncodingKind::Vanilla, 9);
    let text = artifact.to_json_string().unwrap();

    // Flip a domain size: the stored conditionals no longer fit the schema.
    let tampered = text.replacen("\"bins\": 16", "\"bins\": 8", 1);
    assert!(
        ReleasedModel::from_json_string(&tampered).is_err(),
        "shrunken domain must fail validation"
    );

    // Truncate the document.
    let truncated = &text[..text.len() / 2];
    assert!(ReleasedModel::from_json_string(truncated).is_err());
}

#[test]
fn release_file_workflow_with_fresh_consumer() {
    // Save to disk, load in a "different process" (fresh value), sample with
    // the same seed: outputs must be identical row for row.
    let data = census_like(400, 10);
    let artifact = release(&data, 1.5, EncodingKind::Vanilla, 11);
    let dir = std::env::temp_dir().join(format!("privbayes-release-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("census-model.json");
    artifact.save(&path).unwrap();

    let consumer = ReleasedModel::load(&path).unwrap();
    let mut rng_a = StdRng::seed_from_u64(12);
    let mut rng_b = StdRng::seed_from_u64(12);
    let a = artifact.sample(500, &mut rng_a).unwrap();
    let b = consumer.sample(500, &mut rng_b).unwrap();
    for attr in 0..a.d() {
        assert_eq!(a.column(attr), b.column(attr));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
