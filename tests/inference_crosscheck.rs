//! Differential testing of §7 model inference: [`model_marginal`]'s variable
//! elimination must agree, to floating-point accuracy, with brute-force
//! enumeration of the full joint `∏ᵢ Pr*[Xᵢ | Πᵢ]` on randomly generated
//! models — networks, domain sizes, CPTs, and queries all drawn by proptest.

use privbayes::conditionals::{Conditional, NoisyModel};
use privbayes::inference::{model_marginal, DEFAULT_CELL_CAP};
use privbayes::network::{ApPair, BayesianNetwork};
use privbayes_data::{Attribute, Schema};
use privbayes_marginals::{total_variation, Axis, ContingencyTable};
use proptest::prelude::*;

/// A randomly parameterised model over `dims.len()` attributes: each
/// attribute picks up to two earlier parents; CPT entries come from the
/// `raw` pool, normalised per parent slice.
fn build_model(dims: &[usize], parent_picks: &[usize], raw: &[f64]) -> (Schema, NoisyModel) {
    let schema = Schema::new(
        dims.iter()
            .enumerate()
            .map(|(i, &s)| Attribute::categorical(format!("a{i}"), s).unwrap())
            .collect(),
    )
    .unwrap();
    let mut pairs = Vec::new();
    let mut conditionals = Vec::new();
    let mut raw_iter = raw.iter().copied().cycle();
    for (i, &dim) in dims.iter().enumerate() {
        // Deterministically derive up to two distinct earlier parents.
        let mut parents: Vec<usize> = Vec::new();
        if i > 0 {
            let p1 = parent_picks[(2 * i) % parent_picks.len()] % i;
            parents.push(p1);
            if i > 1 {
                let p2 = parent_picks[(2 * i + 1) % parent_picks.len()] % i;
                if p2 != p1 {
                    parents.push(p2);
                }
            }
        }
        let parent_dims: Vec<usize> = parents.iter().map(|&p| dims[p]).collect();
        let parent_cells: usize = parent_dims.iter().product();
        let mut probs = Vec::with_capacity(parent_cells * dim);
        for _ in 0..parent_cells {
            let mut slice: Vec<f64> = (0..dim).map(|_| raw_iter.next().unwrap() + 0.05).collect();
            let total: f64 = slice.iter().sum();
            for v in &mut slice {
                *v /= total;
            }
            probs.extend(slice);
        }
        pairs.push(ApPair::new(i, parents.clone()));
        conditionals.push(Conditional {
            child: i,
            parents: parents.into_iter().map(Axis::raw).collect(),
            parent_dims,
            child_dim: dim,
            probs,
        });
    }
    let network = BayesianNetwork::new(pairs, &schema).unwrap();
    (schema, NoisyModel { network, conditionals })
}

/// Brute force: enumerate every tuple of the full domain, accumulate
/// `∏ᵢ Pr*[xᵢ | πᵢ]` into the queried marginal.
fn brute_force_marginal(model: &NoisyModel, dims: &[usize], attrs: &[usize]) -> Vec<f64> {
    let q_dims: Vec<usize> = attrs.iter().map(|&a| dims[a]).collect();
    let q_cells: usize = q_dims.iter().product();
    let mut out = vec![0.0f64; q_cells];
    let total: usize = dims.iter().product();
    let mut tuple = vec![0usize; dims.len()];
    for flat in 0..total {
        // Decode `flat` into a tuple (last attribute fastest).
        let mut rest = flat;
        for i in (0..dims.len()).rev() {
            tuple[i] = rest % dims[i];
            rest /= dims[i];
        }
        let mut mass = 1.0;
        for cond in &model.conditionals {
            let codes: Vec<usize> = cond.parents.iter().map(|ax| tuple[ax.attr]).collect();
            mass *= cond.child_distribution(cond.parent_index(&codes))[tuple[cond.child]];
        }
        let mut q = 0usize;
        for (&a, &qd) in attrs.iter().zip(&q_dims) {
            q = q * qd + tuple[a];
        }
        out[q] += mass;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// VE equals brute-force enumeration on arbitrary small models/queries.
    #[test]
    fn variable_elimination_matches_brute_force(
        dims in proptest::collection::vec(2usize..4, 2..6),
        parent_picks in proptest::collection::vec(0usize..8, 12),
        raw in proptest::collection::vec(0.0f64..1.0, 24),
        query_seed in 0usize..1000,
    ) {
        let (schema, model) = build_model(&dims, &parent_picks, &raw);
        let d = dims.len();
        // Derive a nonempty query subset from the seed.
        let mut attrs: Vec<usize> = (0..d).filter(|i| (query_seed >> i) & 1 == 1).collect();
        if attrs.is_empty() {
            attrs.push(query_seed % d);
        }
        let got = model_marginal(&model, &schema, &attrs, DEFAULT_CELL_CAP).unwrap();
        let want = brute_force_marginal(&model, &dims, &attrs);
        prop_assert_eq!(got.values().len(), want.len());
        let tvd = total_variation(got.values(), &want);
        prop_assert!(tvd < 1e-10, "attrs {:?}: tvd {}", attrs, tvd);
    }

    /// Inference output is always a valid distribution in query order.
    #[test]
    fn inference_output_is_distribution(
        dims in proptest::collection::vec(2usize..5, 2..5),
        parent_picks in proptest::collection::vec(0usize..8, 12),
        raw in proptest::collection::vec(0.0f64..1.0, 24),
    ) {
        let (schema, model) = build_model(&dims, &parent_picks, &raw);
        let attrs: Vec<usize> = (0..dims.len()).rev().collect(); // reversed order
        let t = model_marginal(&model, &schema, &attrs, DEFAULT_CELL_CAP).unwrap();
        prop_assert!((t.total() - 1.0).abs() < 1e-9);
        prop_assert!(t.values().iter().all(|&v| v >= -1e-12));
        for (axis, &a) in t.axes().iter().zip(&attrs) {
            prop_assert_eq!(axis.attr, a);
        }
    }
}

#[test]
fn ve_agrees_with_brute_force_on_a_collider() {
    // Deterministic spot-check: X0 → X2 ← X1 (a v-structure), queried on the
    // two roots — marginalising the collider must restore independence.
    let dims = vec![2usize, 3, 2];
    let schema = Schema::new(vec![
        Attribute::binary("x0"),
        Attribute::categorical("x1", 3).unwrap(),
        Attribute::binary("x2"),
    ])
    .unwrap();
    let pairs = vec![ApPair::new(0, vec![]), ApPair::new(1, vec![]), ApPair::new(2, vec![0, 1])];
    let network = BayesianNetwork::new(pairs, &schema).unwrap();
    // CPT of the collider: Pr[x2=1 | x0, x1] varies with both parents.
    let mut probs = Vec::new();
    for x0 in 0..2 {
        for x1 in 0..3 {
            let p1 = 0.1 + 0.3 * x0 as f64 + 0.15 * x1 as f64;
            probs.extend([1.0 - p1, p1]);
        }
    }
    let model = NoisyModel {
        network,
        conditionals: vec![
            Conditional {
                child: 0,
                parents: vec![],
                parent_dims: vec![],
                child_dim: 2,
                probs: vec![0.7, 0.3],
            },
            Conditional {
                child: 1,
                parents: vec![],
                parent_dims: vec![],
                child_dim: 3,
                probs: vec![0.5, 0.2, 0.3],
            },
            Conditional {
                child: 2,
                parents: vec![Axis::raw(0), Axis::raw(1)],
                parent_dims: vec![2, 3],
                child_dim: 2,
                probs,
            },
        ],
    };
    let got = model_marginal(&model, &schema, &[0, 1], DEFAULT_CELL_CAP).unwrap();
    let want = brute_force_marginal(&model, &dims, &[0, 1]);
    assert!(total_variation(got.values(), &want) < 1e-12);
    // Roots are independent in the model: joint = product of marginals.
    let p0 = model_marginal(&model, &schema, &[0], DEFAULT_CELL_CAP).unwrap();
    let p1 = model_marginal(&model, &schema, &[1], DEFAULT_CELL_CAP).unwrap();
    let table = ContingencyTable::from_parts(
        vec![Axis::raw(0), Axis::raw(1)],
        vec![2, 3],
        (0..2)
            .flat_map(|x| (0..3).map(move |y| (x, y)))
            .map(|(x, y)| p0.values()[x] * p1.values()[y])
            .collect(),
    );
    assert!(total_variation(got.values(), table.values()) < 1e-12);
}
