//! The privacy-audit tier: the membership-inference harness of
//! `privbayes_bench::audit` exercised end to end, including the failure
//! injection that proves the bound gate has teeth.
//!
//! 1. **Null calibration** — `uniform` never reads the data, so with shared
//!    per-repetition seeds both neighbour worlds produce identical models
//!    and the calibrated attack must measure an advantage of (exactly)
//!    zero, well inside the seeded confidence slack.
//! 2. **Monotonicity smoke** — more budget means more leakage headroom:
//!    for `privbayes` on the Adult-shaped dataset, the measured advantage
//!    at ε = 8 is at least the advantage at ε = 0.1 (everything is seeded,
//!    so this is a deterministic regression check, not a flaky one). Adult's
//!    2⁵² domain also forces the scorer down its conditional-product path.
//! 3. **Gate trip on a broken fit** — a deliberately non-private fitter
//!    (noise scale forced to 0 via `noisy_conditionals_general`'s
//!    `epsilon2 = None` hook) claiming a small ε must breach
//!    `bound + slack` and fail [`AuditOutcome::passes_gate`]. This is the
//!    audit's reason to exist: a privacy bug the type system cannot see,
//!    caught empirically.

use privbayes_bench::audit::{
    advantage_bound, audit_method, hoeffding_slack, log_model_prob, neighbor_worlds, run_audit,
    AuditConfig, AuditOutcome,
};
use privbayes_suite::core::conditionals::noisy_conditionals_general;
use privbayes_suite::core::inference::DEFAULT_CELL_CAP;
use privbayes_suite::core::network::{ApPair, BayesianNetwork};
use privbayes_suite::data::{Attribute, Dataset, Schema};
use privbayes_suite::datasets::adult::adult_sized;
use privbayes_suite::datasets::GroundTruthNetwork;
use privbayes_suite::model::{ModelMetadata, ReleasedModel};
use privbayes_suite::synth::{FitSettings, Method};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small correlated binary dataset for the fast audits.
fn audit_base(n: usize) -> Dataset {
    let schema =
        Schema::new((0..5).map(|i| Attribute::binary(format!("x{i}"))).collect::<Vec<_>>())
            .unwrap();
    let mut rng = StdRng::seed_from_u64(21);
    let net = GroundTruthNetwork::random(&schema, 2, 0.6, &mut rng);
    net.sample(n, &mut rng)
}

#[test]
fn uniform_audit_measures_exactly_zero_advantage() {
    let base = audit_base(200);
    let cfg = AuditConfig { reps: 12, ..AuditConfig::default() };
    let out = audit_method(Method::Uniform, &base, 1.0, &FitSettings::default(), &cfg).unwrap();
    assert_eq!(out.epsilon_spent, 0.0, "uniform must record zero spend");
    assert_eq!(out.bound, 0.0, "zero spend means a zero analytic ceiling");
    // The null control is *exact*: identical models on both worlds give the
    // attack zero signal at any threshold, so the advantage is 0 up to
    // floating noise — far inside the Hoeffding slack the gate allows.
    assert!(out.advantage.abs() < 1e-12, "null advantage was {}", out.advantage);
    assert!(out.advantage.abs() <= out.slack);
    assert!(out.passes_gate());
}

#[test]
fn privbayes_leakage_is_monotone_in_epsilon_on_adult() {
    // Small n amplifies one tuple's influence (the conditionals move by
    // O(1/n) when the target swaps in), keeping the high-ε signal visible
    // at test-sized repetition counts.
    let base = adult_sized(3, 60).data;
    // Low degree keeps the 15-attribute GreedyBayes enumeration fast; the
    // comparison is between budgets, not against the paper's structure.
    let settings = FitSettings { max_degree: 2, ..FitSettings::default() };
    let cfg = AuditConfig { reps: 24, ..AuditConfig::default() };
    let lo = audit_method(Method::PrivBayes, &base, 0.1, &settings, &cfg).unwrap();
    let hi = audit_method(Method::PrivBayes, &base, 8.0, &settings, &cfg).unwrap();
    assert!(lo.passes_gate(), "ε = 0.1 must sit under its bound");
    assert!(hi.passes_gate(), "ε = 8 must sit under its bound");
    assert!(
        hi.advantage >= lo.advantage,
        "advantage must not shrink as the budget grows: ε=8 gave {}, ε=0.1 gave {}",
        hi.advantage,
        lo.advantage
    );
    // And the audit is a real probe at ε = 8: the attacker does read signal.
    assert!(hi.advantage > 0.0, "ε = 8 advantage was {}, expected visible leakage", hi.advantage);
}

/// A deliberately broken "private" fit: real structure, exact (noise-free)
/// conditionals via the `epsilon2 = None` test hook — the model memorises
/// its input while claiming `claimed_epsilon`.
fn broken_fit(data: &Dataset, claimed_epsilon: f64, seed: u64) -> ReleasedModel {
    let d = data.d();
    let pairs: Vec<ApPair> =
        (0..d).map(|a| ApPair::new(a, if a == 0 { vec![] } else { vec![a - 1] })).collect();
    let net = BayesianNetwork::new(pairs, data.schema()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = noisy_conditionals_general(data, &net, None, &mut rng).unwrap();
    ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon: claimed_epsilon,
            beta: 0.3,
            theta: 4.0,
            score: "R".into(),
            encoding: "vanilla".into(),
            source_rows: data.n(),
            comment: "test-only broken fit (noise scale 0)".into(),
        },
        data.schema().clone(),
        model,
    )
    .unwrap()
}

#[test]
fn bound_gate_trips_on_a_noiseless_fit() {
    let base = audit_base(300);
    let claimed = 0.1;
    let cfg = AuditConfig { reps: 40, ..AuditConfig::default() };
    let out: AuditOutcome = run_audit(
        "broken-privbayes",
        claimed,
        |data, seed| Ok((broken_fit(data, claimed, seed), claimed)),
        &base,
        &cfg,
    )
    .unwrap();
    // Exact conditionals separate the worlds perfectly: the target tuple is
    // strictly more probable under every include-world model.
    assert!(
        (out.advantage - 1.0).abs() < 1e-12,
        "noiseless fit should give a perfect attack, got {}",
        out.advantage
    );
    assert!(
        !out.passes_gate(),
        "gate must trip: advantage {} vs bound {} + slack {}",
        out.advantage,
        out.bound,
        out.slack
    );
}

#[test]
fn scorer_agrees_across_paths_and_bound_slack_are_sane() {
    // Cross-path scorer check on a released artifact plus the two analytic
    // helpers the gate is built from, so a regression in any of the three
    // shows up at this tier too (not only inside the bench crate's units).
    let base = audit_base(250);
    let worlds = neighbor_worlds(&base);
    assert_eq!(worlds.include.row(0), worlds.target);
    assert_eq!(worlds.exclude.row(0), base.row(0));

    let model = broken_fit(&base, 1.0, 5);
    let full = log_model_prob(&model, &worlds.target, DEFAULT_CELL_CAP).unwrap();
    let product = log_model_prob(&model, &worlds.target, 1).unwrap();
    assert!((full - product).abs() < 1e-9, "θ-projection {full} vs product {product}");

    assert!(advantage_bound(0.0).abs() < 1e-15);
    assert!(advantage_bound(1.0) > 0.0 && advantage_bound(1.0) < 1.0);
    assert!(hoeffding_slack(80, 1e-2) < hoeffding_slack(20, 1e-2));
}
