//! Stochastic verification of the ε-DP guarantee of the two mechanisms the
//! paper builds on (§2.1) — and failure injection showing the test harness
//! *would* catch a privacy bug.
//!
//! Method: run the mechanism many times on two neighboring inputs, histogram
//! the outputs into coarse buckets, and check the empirical probability
//! ratio of every well-populated bucket against `e^ε` (plus sampling slack).
//! This is a black-box distinguisher in the spirit of DP testing tools; it
//! cannot *prove* privacy, but it reliably flags mechanisms whose noise is
//! under-scaled.
//!
//! # How the trial counts are derived
//!
//! Rather than hand-tuning the number of trials until the tests stop
//! flaking, every count is computed from a stated false-failure budget by
//! the multiplicative Chernoff bound. For `N` i.i.d. Bernoulli(p) trials:
//!
//! ```text
//!     P( |p̂ − p| ≥ η·p )  ≤  2·exp(−η²·N·p / 3)        for 0 < η ≤ 1.
//! ```
//!
//! If *both* bucket estimates entering a ratio are within relative error η
//! of their true values, the empirical ratio is off the true ratio (≤ e^ε
//! for an ε-DP mechanism) by at most a factor `(1+η)/(1−η)`. We therefore
//! pick the slack factor first and solve for the relative error it absorbs:
//!
//! ```text
//!     SLACK = (1+η)/(1−η)   ⇒   η = (SLACK − 1)/(SLACK + 1).
//! ```
//!
//! Inverting the tail bound for a per-estimate failure probability δ_per
//! (the per-test budget [`DELTA`] split evenly over every bucket estimate
//! in the test, 2 histograms × buckets) gives the trial count:
//!
//! ```text
//!     N  ≥  3·ln(2/δ_per) / (η² · p_min).
//! ```
//!
//! `p_min` is the smallest true bucket mass the guarantee must cover. The
//! ratio test only inspects buckets whose *empirical* mass is at least
//! [`P_MIN`], so it suffices to take `p_min = P_MIN/2`: on the good event,
//! every bucket with true mass ≥ P_MIN/2 is η-accurate, and a bucket with
//! true mass below P_MIN/2 reaching empirical mass P_MIN would require a
//! relative deviation ≥ 1, whose probability exp(−N·p/3) is astronomically
//! smaller than δ_per at these N. Union-bounding, each `#[test]` fails
//! spuriously with probability at most [`DELTA`] = 1e-3.
//!
//! With SLACK = 1.15 ⇒ η ≈ 0.0698, P_MIN = 5e-3, and ~80 estimates, this
//! lands near 3.0 million trials per histogram — a few hundred ms of
//! release-mode sampling, and a *derived* number the next person can
//! re-solve instead of re-guessing.

use privbayes_dp::exponential::exponential_mechanism;
use privbayes_dp::geometric::sample_two_sided_geometric;
use privbayes_dp::laplace::sample_laplace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Multiplicative headroom allowed over `e^ε` before a ratio counts as a
/// violation. Fixing SLACK fixes the relative accuracy η the estimates
/// must reach (see the module docs).
const SLACK: f64 = 1.15;

/// Buckets below this empirical mass are skipped by the ratio test — their
/// ratio estimate would be dominated by noise, not by the mechanism.
const P_MIN: f64 = 5e-3;

/// Per-`#[test]` false-failure budget, split over all bucket estimates.
const DELTA: f64 = 1e-3;

/// Solves the Chernoff bound in the module docs for the trial count: the
/// smallest `N` such that all `estimates` bucket probabilities of true mass
/// at least `p_min` are within relative error `η = (slack−1)/(slack+1)` of
/// their estimates, except with probability [`DELTA`].
fn chernoff_trials(p_min: f64, slack: f64, estimates: usize) -> usize {
    let eta = (slack - 1.0) / (slack + 1.0);
    let delta_per = DELTA / estimates as f64;
    (3.0 * (2.0 / delta_per).ln() / (eta * eta * p_min)).ceil() as usize
}

/// Buckets the outputs of `mechanism(input)` over `trials` runs.
fn histogram<F>(trials: usize, buckets: usize, lo: f64, hi: f64, mut mechanism: F) -> Vec<f64>
where
    F: FnMut() -> f64,
{
    let mut counts = vec![0usize; buckets];
    for _ in 0..trials {
        let x = mechanism();
        let t = ((x - lo) / (hi - lo)).clamp(0.0, 1.0 - 1e-12);
        counts[(t * buckets as f64) as usize] += 1;
    }
    counts.iter().map(|&c| c as f64 / trials as f64).collect()
}

/// Asserts the pointwise ratio bound `p1/p2 ≤ e^ε · slack` over buckets with
/// enough mass for the empirical ratio to be meaningful.
fn assert_dp_ratio(p1: &[f64], p2: &[f64], epsilon: f64, slack: f64, label: &str) {
    let bound = epsilon.exp() * slack;
    for (i, (&a, &b)) in p1.iter().zip(p2).enumerate() {
        if a < P_MIN || b < P_MIN {
            continue; // too little mass for a stable ratio estimate
        }
        let ratio = a / b;
        assert!(
            ratio < bound && 1.0 / ratio < bound,
            "{label}: bucket {i} ratio {ratio:.3} breaches e^ε·slack = {bound:.3}"
        );
    }
}

/// Returns true if some well-populated bucket breaches the ε ratio bound.
fn dp_ratio_violated(p1: &[f64], p2: &[f64], epsilon: f64, slack: f64) -> bool {
    let bound = epsilon.exp() * slack;
    p1.iter().zip(p2).any(|(&a, &b)| a >= P_MIN && b >= P_MIN && (a / b > bound || b / a > bound))
}

#[test]
fn laplace_mechanism_satisfies_epsilon_dp_empirically() {
    // A counting query: neighboring datasets give counts 100 and 101, the
    // sensitivity is 1, ε = 1. 40 buckets × 2 histograms = 80 estimates;
    // p_min = P_MIN/2 per the module docs ⇒ N ≈ 3.0M trials per histogram.
    let epsilon = 1.0;
    let buckets = 40;
    let trials = chernoff_trials(P_MIN / 2.0, SLACK, 2 * buckets);
    let mut rng = StdRng::seed_from_u64(1);
    let p1 =
        histogram(trials, buckets, 90.0, 111.0, || 100.0 + sample_laplace(1.0 / epsilon, &mut rng));
    let mut rng = StdRng::seed_from_u64(2);
    let p2 =
        histogram(trials, buckets, 90.0, 111.0, || 101.0 + sample_laplace(1.0 / epsilon, &mut rng));
    assert_dp_ratio(&p1, &p2, epsilon, SLACK, "Laplace ε=1");
}

#[test]
fn geometric_mechanism_satisfies_epsilon_dp_empirically() {
    // Integer support: one bucket per outcome in [−15, 15], so 31 buckets
    // × 2 histograms = 62 estimates ⇒ N ≈ 2.9M trials per histogram.
    let epsilon: f64 = 0.8;
    let alpha = (-epsilon).exp();
    let buckets = 31;
    let trials = chernoff_trials(P_MIN / 2.0, SLACK, 2 * buckets);
    let mut rng = StdRng::seed_from_u64(3);
    let p1 = histogram(trials, buckets, -15.0, 16.0, || {
        (100 + sample_two_sided_geometric(alpha, &mut rng) - 100) as f64
    });
    let mut rng = StdRng::seed_from_u64(4);
    let p2 = histogram(trials, buckets, -15.0, 16.0, || {
        (101 + sample_two_sided_geometric(alpha, &mut rng) - 100) as f64
    });
    assert_dp_ratio(&p1, &p2, epsilon, SLACK, "Geometric ε=0.8");
}

#[test]
fn broken_laplace_scale_is_detected() {
    // Failure injection: noise calibrated to ε' = 3ε (scale three times too
    // small) must visibly violate the ε ratio bound — demonstrating that the
    // distinguisher above has teeth. The trial count is reused from the
    // honest Laplace test; detection needs *power*, not validity, and at a
    // 3× under-scale the worst tested bucket ratio sits near e^{3ε}·e^{-ε}
    // ≈ e^2 ≈ 7.4, far beyond the e^ε·SLACK ≈ 3.1 bound — so the same N
    // detects it with overwhelming probability.
    let epsilon = 1.0;
    let broken_scale = 1.0 / (3.0 * epsilon);
    let buckets = 40;
    let trials = chernoff_trials(P_MIN / 2.0, SLACK, 2 * buckets);
    let mut rng = StdRng::seed_from_u64(5);
    let p1 =
        histogram(trials, buckets, 95.0, 107.0, || 100.0 + sample_laplace(broken_scale, &mut rng));
    let mut rng = StdRng::seed_from_u64(6);
    let p2 =
        histogram(trials, buckets, 95.0, 107.0, || 101.0 + sample_laplace(broken_scale, &mut rng));
    assert!(
        dp_ratio_violated(&p1, &p2, epsilon, SLACK),
        "an under-scaled mechanism must be flagged by the ratio test"
    );
}

#[test]
fn exponential_mechanism_selection_respects_epsilon() {
    // Neighboring score vectors differ by the sensitivity in one coordinate;
    // the selection probability of any candidate may change by at most e^ε
    // (the mechanism's Δ = S/ε parameterisation gives e^{ε} via the 2Δ
    // denominator and the one-sided score shift).
    //
    // Unlike the histogram tests, every candidate probability is known to
    // be large: weights exp(ε·s/(2Δ)) = exp(s) for scores {1.0, 0.4, 0.2}
    // give a smallest selection probability ≈ e^0.2/(e^1+e^0.4+e^0.2) ≈
    // 0.225 (≈ 0.28 on the neighbor), so p_min = 0.2 is a safe floor and no
    // empirical-mass filter is needed. A tighter slack of 1.1 with 2 × 3
    // estimates ⇒ N ≈ 63k trials per tally.
    let epsilon = 1.0;
    let sensitivity = 0.5;
    let scores_1 = [1.0, 0.4, 0.2];
    let scores_2 = [1.0 - sensitivity, 0.4, 0.2]; // one tuple's removal
    let slack = 1.1;
    let trials = chernoff_trials(0.2, slack, 2 * 3);
    let tally = |scores: &[f64], seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[exponential_mechanism(scores, sensitivity, epsilon, &mut rng).unwrap()] += 1;
        }
        counts.map(|c| c as f64 / trials as f64)
    };
    let p1 = tally(&scores_1, 7);
    let p2 = tally(&scores_2, 8);
    for i in 0..3 {
        let ratio = p1[i] / p2[i];
        assert!(
            ratio < epsilon.exp() * slack && 1.0 / ratio < epsilon.exp() * slack,
            "candidate {i}: ratio {ratio:.3} vs bound {:.3}",
            epsilon.exp() * slack
        );
    }
}

#[test]
fn privbayes_end_to_end_output_distributions_overlap() {
    // A coarse end-to-end sanity distinguisher on the whole pipeline: run
    // PrivBayes on neighboring datasets and check that a 1-way synthetic
    // marginal's distribution over repetitions does not let us tell the two
    // inputs apart with confidence wildly exceeding the budget. This is a
    // smoke-level check (full end-to-end DP verification is impractical in a
    // unit test — `tests/privacy_audit.rs` covers the fitted-model side with
    // a membership-inference attacker), but it exercises the composition
    // path with real data.
    use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
    use privbayes_data::{Attribute, Dataset, Schema};

    let schema = Schema::new(vec![Attribute::binary("x"), Attribute::binary("y")]).unwrap();
    let mut rows: Vec<Vec<u32>> = (0..300).map(|i| vec![u32::from(i % 3 == 0), i % 2]).collect();
    let d1 = Dataset::from_rows(schema.clone(), &rows).unwrap();
    rows[0] = vec![1 - rows[0][0], 1 - rows[0][1]]; // change one tuple
    let d2 = Dataset::from_rows(schema, &rows).unwrap();

    let epsilon = 0.5;
    let reps = 300;
    let frac_of = |data: &Dataset, base: u64| {
        let mut one_frac = Vec::with_capacity(reps);
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(base + r as u64);
            let out = PrivBayes::new(PrivBayesOptions::new(epsilon))
                .synthesize(data, &mut rng)
                .unwrap()
                .synthetic;
            let ones = out.column(0).iter().filter(|&&v| v == 1).count();
            one_frac.push(ones as f64 / out.n() as f64);
        }
        one_frac.iter().sum::<f64>() / reps as f64
    };
    let m1 = frac_of(&d1, 10_000);
    let m2 = frac_of(&d2, 20_000);
    // One tuple in 300 moved; the mean synthetic marginal may shift by at
    // most a small amount (tuple influence 1/300 ≈ 0.003 plus noise). A gap
    // of 0.05 would indicate a catastrophic privacy/implementation bug.
    assert!(
        (m1 - m2).abs() < 0.05,
        "neighboring inputs produced distinguishable synthetic marginals: {m1} vs {m2}"
    );
}
