//! Equivalence tier: the shared `CountEngine` + parallel hot paths must be
//! indistinguishable from the pre-engine reference semantics.
//!
//! Four contracts (see `crates/marginals/src/lib.rs` module docs):
//!
//! 1. engine joints match `ContingencyTable::from_dataset` **cell-for-cell**
//!    (bit-identical floats) on mixed and taxonomy schemas;
//! 2. parallel candidate scoring learns networks **bit-identical** to the
//!    sequential path — and to the pre-engine reference implementation —
//!    for all three score functions under a fixed seed;
//! 3. parallel synthesis output is **invariant to the worker count** given a
//!    seed, end-to-end through the pipeline;
//! 4. alias-table sampling matches the linear-scan `sample_discrete`
//!    frequencies statistically.

use privbayes::conditionals::noisy_conditionals_general;
use privbayes::greedy::{greedy_bayes_adaptive, greedy_bayes_fixed_k, GreedySettings};
use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes::ScoreKind;
use privbayes_bench::reference::{reference_greedy_adaptive, reference_greedy_fixed_k};
use privbayes_data::encoding::EncodingKind;
use privbayes_data::Dataset;
use privbayes_dp::stats::sample_discrete;
use privbayes_dp::AliasTable;
use privbayes_marginals::{Axis, ContingencyTable, CountEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A mixed-schema dataset with taxonomies (Adult's shape at reduced size).
fn mixed_data(n: usize, seed: u64) -> Dataset {
    privbayes_datasets::adult::adult_sized(seed, n).data
}

/// An all-binary dataset (NLTCS's shape at reduced size).
fn binary_data(n: usize, seed: u64) -> Dataset {
    privbayes_datasets::nltcs::nltcs_sized(seed, n).data
}

#[test]
fn engine_joints_match_contingency_tables_cell_for_cell() {
    let data = mixed_data(700, 1);
    let engine = CountEngine::new(&data);
    let schema = data.schema();
    // A spread of axis sets: singletons, pairs, triples, generalised levels
    // where a taxonomy exists — requested in non-sorted orders on purpose so
    // the canonical-reorder path is exercised too.
    let mut requests: Vec<Vec<Axis>> = vec![
        vec![Axis::raw(0)],
        vec![Axis::raw(3), Axis::raw(1)],
        vec![Axis::raw(5), Axis::raw(0), Axis::raw(2)],
        vec![Axis::raw(2), Axis::raw(5)],
    ];
    for (attr, a) in schema.attributes().iter().enumerate() {
        if let Some(t) = a.taxonomy() {
            if t.height() > 1 {
                requests.push(vec![Axis { attr, level: 1 }, Axis::raw((attr + 1) % data.d())]);
            }
        }
    }
    for axes in &requests {
        let fast = engine.joint(axes);
        let slow = ContingencyTable::from_dataset(&data, axes);
        assert_eq!(fast.len(), slow.values().len(), "{axes:?}");
        for (i, (a, b)) in fast.iter().zip(slow.values()).enumerate() {
            assert!(a.to_bits() == b.to_bits(), "{axes:?} cell {i}: {a:e} != {b:e}");
        }
    }
    // The second sweep must be pure cache traffic.
    let scans = engine.stats().scans;
    for axes in &requests {
        let _ = engine.joint(axes);
    }
    assert_eq!(engine.stats().scans, scans, "repeat requests must not re-scan rows");
}

#[test]
fn fixed_k_networks_match_reference_for_all_scores() {
    let data = binary_data(600, 2);
    for score in [ScoreKind::MutualInformation, ScoreKind::F, ScoreKind::R] {
        let settings = GreedySettings::private(score, 0.8);
        let reference =
            reference_greedy_fixed_k(&data, 2, &settings, &mut StdRng::seed_from_u64(11)).unwrap();
        for threads in [1usize, 4] {
            let settings = settings.with_threads(threads);
            let net =
                greedy_bayes_fixed_k(&data, 2, &settings, &mut StdRng::seed_from_u64(11)).unwrap();
            assert_eq!(net, reference, "{score:?} threads={threads}");
        }
    }
}

#[test]
fn adaptive_networks_match_reference_on_mixed_schema() {
    let data = mixed_data(800, 3);
    for (use_taxonomy, score) in
        [(false, ScoreKind::R), (true, ScoreKind::R), (false, ScoreKind::MutualInformation)]
    {
        let settings = GreedySettings::private(score, 0.5).with_max_degree(3);
        let reference = reference_greedy_adaptive(
            &data,
            4.0,
            0.7,
            use_taxonomy,
            &settings,
            &mut StdRng::seed_from_u64(21),
        )
        .unwrap();
        for threads in [1usize, 4] {
            let settings = settings.with_threads(threads);
            let net = greedy_bayes_adaptive(
                &data,
                4.0,
                0.7,
                use_taxonomy,
                &settings,
                &mut StdRng::seed_from_u64(21),
            )
            .unwrap();
            assert_eq!(net, reference, "taxonomy={use_taxonomy} {score:?} threads={threads}");
        }
    }
}

#[test]
fn pipeline_output_is_invariant_to_worker_count() {
    let data = mixed_data(2500, 4);
    for encoding in [EncodingKind::Vanilla, EncodingKind::Binary] {
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(31);
            PrivBayes::new(PrivBayesOptions::new(0.8).with_encoding(encoding).with_threads(threads))
                .synthesize(&data, &mut rng)
                .unwrap()
        };
        let sequential = run(1);
        for threads in [2usize, 5] {
            let parallel = run(threads);
            assert_eq!(
                parallel.network, sequential.network,
                "{encoding:?} threads={threads}: network"
            );
            assert_eq!(
                parallel.synthetic, sequential.synthetic,
                "{encoding:?} threads={threads}: synthetic data"
            );
        }
    }
}

#[test]
fn synthesis_worker_invariance_holds_beyond_one_chunk() {
    // More rows than one 1024-row sampling chunk, on a taxonomy model.
    let data = mixed_data(1500, 5);
    let settings = GreedySettings::private(ScoreKind::R, 0.3).with_max_degree(2);
    let net =
        greedy_bayes_adaptive(&data, 4.0, 0.7, true, &settings, &mut StdRng::seed_from_u64(41))
            .unwrap();
    let model =
        noisy_conditionals_general(&data, &net, Some(0.7), &mut StdRng::seed_from_u64(42)).unwrap();
    let run = |threads: usize| {
        privbayes::sampler::sample_synthetic_with_threads(
            &model,
            data.schema(),
            5000,
            Some(threads),
            &mut StdRng::seed_from_u64(43),
        )
        .unwrap()
    };
    let sequential = run(1);
    for threads in [2usize, 4, 9] {
        assert_eq!(run(threads), sequential, "threads={threads}");
    }
}

#[test]
fn alias_tables_match_linear_scan_frequencies() {
    // Conditional-slice-shaped weight vectors, including skew and zeros.
    let slices: [&[f64]; 4] = [&[0.5, 0.5], &[0.9, 0.1], &[0.05, 0.0, 0.25, 0.7], &[0.125; 8]];
    for (si, weights) in slices.iter().enumerate() {
        let table = AliasTable::new(weights);
        let trials = 120_000;
        let mut alias_freq = vec![0usize; weights.len()];
        let mut scan_freq = vec![0usize; weights.len()];
        let mut rng_a = StdRng::seed_from_u64(100 + si as u64);
        let mut rng_b = StdRng::seed_from_u64(200 + si as u64);
        for _ in 0..trials {
            alias_freq[table.sample(&mut rng_a)] += 1;
            scan_freq[sample_discrete(weights, &mut rng_b)] += 1;
        }
        for (i, (&a, &b)) in alias_freq.iter().zip(&scan_freq).enumerate() {
            let (fa, fb) = (a as f64 / trials as f64, b as f64 / trials as f64);
            assert!((fa - fb).abs() < 0.01, "slice {si} index {i}: alias {fa:.4} vs scan {fb:.4}");
        }
    }
}
