//! Integration tests: the multi-SVM classification task of §6.6 across all
//! methods.

use privbayes_suite::core::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_suite::datasets::nltcs;
use privbayes_suite::ml::{
    misclassification_rate, FeatureMatrix, LinearSvm, MajorityClassifier, PrivGene,
    PrivGeneOptions, PrivateErm, PrivateErmOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_methods_produce_valid_error_rates() {
    let ds = nltcs::nltcs_sized(1, 1200);
    let mut rng = StdRng::seed_from_u64(1);
    let (train, test) = ds.data.split_train_test(0.8, &mut rng);
    let target = &ds.targets[0];
    let train_m = FeatureMatrix::build(&train, target.attr, &target.positive);
    let test_m = FeatureMatrix::build(&test, target.attr, &target.positive);
    let eps = 0.8;

    let rates = [
        {
            let r = PrivBayes::new(PrivBayesOptions::new(eps))
                .synthesize(&train, &mut rng)
                .expect("synthesis");
            let m = FeatureMatrix::build(&r.synthetic, target.attr, &target.positive);
            let svm = LinearSvm::train_hinge(&m, 1.0, 10, &mut rng);
            misclassification_rate(&svm, &test_m)
        },
        {
            let model = PrivateErm::new(PrivateErmOptions::default()).train(
                &train_m,
                Some(eps / 4.0),
                &mut rng,
            );
            misclassification_rate(&model, &test_m)
        },
        {
            let model =
                PrivGene::new(PrivGeneOptions::default()).train(&train_m, eps / 4.0, &mut rng);
            misclassification_rate(&model, &test_m)
        },
        MajorityClassifier::train(&train_m, eps / 4.0, &mut rng).misclassification_rate(&test_m),
        {
            let svm = LinearSvm::train_hinge(&train_m, 1.0, 10, &mut rng);
            misclassification_rate(&svm, &test_m)
        },
    ];
    for (i, r) in rates.iter().enumerate() {
        assert!((0.0..=1.0).contains(r), "method {i} rate {r}");
    }
}

#[test]
fn no_privacy_svm_beats_majority_on_learnable_target() {
    let ds = nltcs::nltcs_sized(2, 4000);
    let mut rng = StdRng::seed_from_u64(3);
    let (train, test) = ds.data.split_train_test(0.8, &mut rng);
    // Pick the target with the most balanced labels (hardest for Majority).
    let target = ds
        .targets
        .iter()
        .min_by(|a, b| {
            let da = (a.positive_rate(&train) - 0.5).abs();
            let db = (b.positive_rate(&train) - 0.5).abs();
            da.partial_cmp(&db).expect("finite")
        })
        .expect("targets");
    let train_m = FeatureMatrix::build(&train, target.attr, &target.positive);
    let test_m = FeatureMatrix::build(&test, target.attr, &target.positive);

    let svm = LinearSvm::train_hinge(&train_m, 1.0, 15, &mut rng);
    let svm_err = misclassification_rate(&svm, &test_m);
    let maj = MajorityClassifier::train(&train_m, 10.0, &mut rng).misclassification_rate(&test_m);
    assert!(
        svm_err <= maj + 0.02,
        "SVM ({svm_err:.3}) should not lose to Majority ({maj:.3}) on {}",
        target.name
    );
}

#[test]
fn privbayes_synthetic_preserves_learnability_at_high_epsilon() {
    let ds = nltcs::nltcs_sized(4, 3000);
    let mut rng = StdRng::seed_from_u64(5);
    let (train, test) = ds.data.split_train_test(0.8, &mut rng);
    let target = &ds.targets[1];
    let test_m = FeatureMatrix::build(&test, target.attr, &target.positive);

    // Non-private reference.
    let train_m = FeatureMatrix::build(&train, target.attr, &target.positive);
    let reference = {
        let svm = LinearSvm::train_hinge(&train_m, 1.0, 10, &mut rng);
        misclassification_rate(&svm, &test_m)
    };
    // PrivBayes at a generous budget.
    let r =
        PrivBayes::new(PrivBayesOptions::new(8.0)).synthesize(&train, &mut rng).expect("synthesis");
    let m = FeatureMatrix::build(&r.synthetic, target.attr, &target.positive);
    let svm = LinearSvm::train_hinge(&m, 1.0, 10, &mut rng);
    let synthetic_err = misclassification_rate(&svm, &test_m);

    assert!(
        synthetic_err <= reference + 0.12,
        "high-ε synthetic training ({synthetic_err:.3}) should approach the real-data \
         reference ({reference:.3})"
    );
}
