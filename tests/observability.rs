//! The observability tier: the metric surface as a contract.
//!
//! Every test drives a real server over real sockets and checks that the
//! numbers it exposes are *exact*, not merely plausible:
//!
//! 1. **Exposition** — `GET /metrics` serves parseable Prometheus text
//!    (v0.0.4) listing every family, with the correct content type and the
//!    per-tenant ε gauges mirroring the ledger.
//! 2. **Exact deltas** — N requests move the request counter by exactly N;
//!    row and byte counters equal what was actually streamed; the scaling
//!    counters (connection reuse, row-block cache hits/misses/evictions)
//!    move exactly with a known keep-alive workload.
//! 3. **Coherence under load** — scrapes taken *during* a storm parse and
//!    stay monotone; the post-storm totals are exact.
//! 4. **Request ids** — every response shape (200/400/402/404/405/408/500/
//!    503) carries `X-PrivBayes-Request-Id`; valid inbound ids are echoed,
//!    hostile ones replaced.
//! 5. **One surface** — `ServerHandle::stats`, `/healthz`, and `/metrics`
//!    read the same registry and can never disagree.
//! 6. **Non-interference** — instrumented streaming with the access log
//!    enabled stays byte-identical to the direct batch sampler.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Once};
use std::time::Duration;

use privbayes_suite::core::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_suite::data::csv::write_csv;
use privbayes_suite::data::{Attribute, Dataset, Schema};
use privbayes_suite::model::{Json, ModelMetadata, ReleasedModel};
use privbayes_suite::server::{
    BudgetLedger, Client, Fault, FaultPlan, FaultSite, ModelRegistry, RetryPolicy, Server,
    ServerConfig, ServerError, Snapshot,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Injected handler panics are part of the test plan; keep them out of the
/// test output while still reporting any *unexpected* panic in full.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected handler panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("privbayes-obs-{tag}-{}.log", std::process::id()))
}

/// A small fixture model (3 attributes, 400 source rows).
fn fixture_model(seed: u64) -> ReleasedModel {
    let schema = Schema::new(vec![
        Attribute::binary("smoker"),
        Attribute::categorical("region", 3).unwrap(),
        Attribute::binary("disease"),
    ])
    .unwrap();
    let rows: Vec<Vec<u32>> =
        (0..400u32).map(|i| vec![i % 2, (i / 2) % 3, u32::from(i % 2 == 1)]).collect();
    let data = Dataset::from_rows(schema, &rows).unwrap();
    let options = PrivBayesOptions::new(1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = PrivBayes::new(options.clone()).synthesize(&data, &mut rng).unwrap();
    ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon: options.epsilon,
            beta: options.beta,
            theta: options.theta,
            score: options.effective_score().name().to_string(),
            encoding: options.encoding.name().to_string(),
            source_rows: data.n(),
            comment: "observability fixture".to_string(),
        },
        data.schema().clone(),
        result.model,
    )
    .unwrap()
}

/// Starts a server with model `m` loaded; returns the handle, a plain
/// (non-retrying) client, the registry, and the live fault slot.
fn start_server(
    config: ServerConfig,
) -> (
    privbayes_suite::server::ServerHandle,
    Client,
    Arc<ModelRegistry>,
    privbayes_suite::server::server::FaultSlot,
) {
    let registry = Arc::new(ModelRegistry::new());
    registry.load("m", fixture_model(1)).unwrap();
    let ledger = Arc::new(BudgetLedger::in_memory());
    let server = Server::bind("127.0.0.1:0", config, Arc::clone(&registry), ledger).unwrap();
    let slot = server.fault_slot();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());
    (handle, client, registry, slot)
}

/// A fast-but-persistent retry policy for tests.
fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
        jitter_seed: 7,
    }
}

/// A sample's value, defaulting to 0 when the label set has not appeared
/// yet (a counter that was never incremented is semantically zero).
fn counter(snapshot: &Snapshot, name: &str, labels: &[(&str, &str)]) -> f64 {
    snapshot.value(name, labels).unwrap_or(0.0)
}

/// Polls `cond` for up to two seconds. Request counters are bumped *after*
/// the response bytes reach the wire, so a client that just read a
/// response can observe the counter a few microseconds before it moves.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    for _ in 0..400 {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// Sends raw `bytes`, half-closes the write side, and returns the full
/// response text.
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);
    text
}

// ---------------------------------------------------------------------------
// 1. Exposition conformance
// ---------------------------------------------------------------------------

/// `GET /metrics` serves Prometheus text v0.0.4: correct content type,
/// `# TYPE` lines for every family, histogram bucket/sum/count triples,
/// and per-tenant ε gauges rendered fresh from the ledger.
#[test]
fn the_exposition_is_conformant_and_lists_every_family() {
    let (handle, client, _registry, _slot) =
        start_server(ServerConfig { workers: 2, fit_threads: Some(1), ..ServerConfig::default() });
    client.register_tenant("acme", 2.0).unwrap();
    assert_eq!(client.synth("m", 400, 7, "csv").unwrap().lines().count(), 401);
    // The synth increment lands just after its bytes leave the wire.
    assert!(eventually(|| handle.stats().requests >= 2));

    let response = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(response.code, 200);
    assert_eq!(
        response.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8"),
        "the exposition must declare the text format version"
    );
    let text = response.text();
    let snapshot = privbayes_suite::server::parse_text(&text).expect("exposition must parse");

    // Every family is present even when idle — a scrape before the first
    // fit still lists the whole catalogue.
    for family in [
        "privbayes_requests_total",
        "privbayes_request_seconds",
        "privbayes_stage_seconds",
        "privbayes_queue_depth",
        "privbayes_queue_rejected_total",
        "privbayes_worker_panics_total",
        "privbayes_active_streams",
        "privbayes_rows_streamed_total",
        "privbayes_bytes_streamed_total",
        "privbayes_ledger_persist_total",
        "privbayes_ledger_persist_seconds",
        "privbayes_fit_seconds",
        "privbayes_alias_build_seconds",
        "privbayes_engine_cache_hits_total",
        "privbayes_engine_projections_total",
        "privbayes_engine_scans_total",
        "privbayes_engine_bytes_materialized_total",
        "privbayes_connections_reused_total",
        "privbayes_rowblock_cache_hits_total",
        "privbayes_rowblock_cache_misses_total",
        "privbayes_rowblock_cache_evicted_bytes_total",
        "privbayes_ledger_stripe_contention_total",
        "privbayes_tenant_epsilon_spent",
        "privbayes_tenant_epsilon_remaining",
        "privbayes_ingest_rows_total",
        "privbayes_ingest_batch_rows",
        "privbayes_refits_total",
        "privbayes_model_generation",
    ] {
        assert!(snapshot.types.contains_key(family), "no TYPE line for {family} in:\n{text}");
    }
    assert_eq!(snapshot.types["privbayes_requests_total"], "counter");
    assert_eq!(snapshot.types["privbayes_queue_depth"], "gauge");
    assert_eq!(snapshot.types["privbayes_ingest_rows_total"], "counter");
    assert_eq!(snapshot.types["privbayes_ingest_batch_rows"], "histogram");
    assert_eq!(snapshot.types["privbayes_model_generation"], "gauge");
    assert_eq!(snapshot.types["privbayes_request_seconds"], "histogram");
    assert_eq!(snapshot.types["privbayes_connections_reused_total"], "counter");
    assert_eq!(snapshot.types["privbayes_rowblock_cache_hits_total"], "counter");

    // Histograms follow the bucket/sum/count convention with an +Inf bucket.
    assert!(text.contains("privbayes_request_seconds_bucket"), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");
    assert_eq!(
        counter(&snapshot, "privbayes_request_seconds_count", &[("endpoint", "synth")]),
        1.0
    );

    // Tenant gauges mirror the ledger: registered, nothing spent yet.
    assert_eq!(snapshot.value("privbayes_tenant_epsilon_spent", &[("tenant", "acme")]), Some(0.0));
    assert_eq!(
        snapshot.value("privbayes_tenant_epsilon_remaining", &[("tenant", "acme")]),
        Some(2.0)
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// 2. Exact counter deltas
// ---------------------------------------------------------------------------

/// Between two scrapes, a workload of exactly N synth requests moves the
/// synth/200 counter by exactly N, the row counter by exactly the rows
/// requested, and the byte counter by exactly the body bytes the clients
/// received. A scrape never includes its own increment, so the deltas are
/// deterministic — not lower bounds.
#[test]
fn counter_deltas_match_a_known_workload_exactly() {
    let (handle, client, _registry, _slot) =
        start_server(ServerConfig { workers: 4, fit_threads: Some(1), ..ServerConfig::default() });
    let requests = 5usize;
    let rows = 400usize;

    let before = client.metrics().unwrap();
    let synth_before =
        counter(&before, "privbayes_requests_total", &[("endpoint", "synth"), ("status", "200")]);

    let mut body_bytes = 0u64;
    for seed in 0..requests as u64 {
        let body = client.synth("m", rows, seed, "csv").unwrap();
        assert_eq!(body.lines().count(), rows + 1);
        body_bytes += body.len() as u64;
    }

    // The Nth finish runs just after the Nth response hits the wire; wait
    // for it, then assert *equality* — the counters must not overshoot.
    assert!(
        eventually(|| {
            let snap = client.metrics().unwrap();
            counter(&snap, "privbayes_requests_total", &[("endpoint", "synth"), ("status", "200")])
                - synth_before
                >= requests as f64
        }),
        "the synth counter must reach the workload size"
    );
    let after = client.metrics().unwrap();

    let delta = |name: &str, labels: &[(&str, &str)]| {
        counter(&after, name, labels) - counter(&before, name, labels)
    };
    assert_eq!(
        delta("privbayes_requests_total", &[("endpoint", "synth"), ("status", "200")]),
        requests as f64,
        "N requests must move the counter by exactly N"
    );
    assert_eq!(delta("privbayes_request_seconds_count", &[("endpoint", "synth")]), requests as f64);
    assert_eq!(
        delta("privbayes_rows_streamed_total", &[]),
        (requests * rows) as f64,
        "row counter must equal the rows streamed"
    );
    assert_eq!(
        delta("privbayes_bytes_streamed_total", &[]),
        body_bytes as f64,
        "byte counter must equal the body bytes the client received"
    );
    // Each request closed a sample and a write stage.
    assert!(delta("privbayes_stage_seconds_count", &[("stage", "sample")]) >= requests as f64);
    assert!(delta("privbayes_stage_seconds_count", &[("stage", "write")]) >= requests as f64);
    // The in-flight gauge is back to zero between requests.
    assert_eq!(after.value("privbayes_active_streams", &[]), Some(0.0));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The scaling-tier counters are exact, not merely monotone. One pooled
/// client issues five sequential requests on a single kept-alive
/// connection: every request after the first counts exactly one
/// `privbayes_connections_reused_total` (the reuse is counted when the
/// request is *read*, so a scrape includes its own); a cold two-chunk
/// synth records exactly one row-block cache miss per chunk and zero
/// hits; replaying the identical synth turns each miss into exactly one
/// hit while the body stays byte-identical and nothing is evicted.
#[test]
fn connection_reuse_and_rowblock_cache_counters_are_exact() {
    let (handle, client, _registry, _slot) =
        start_server(ServerConfig { workers: 2, fit_threads: Some(1), ..ServerConfig::default() });

    // Request 1 parks the pooled connection; everything below rides it.
    let before = client.metrics().unwrap();
    assert_eq!(counter(&before, "privbayes_connections_reused_total", &[]), 0.0);
    assert_eq!(counter(&before, "privbayes_rowblock_cache_hits_total", &[]), 0.0);
    assert_eq!(counter(&before, "privbayes_rowblock_cache_misses_total", &[]), 0.0);

    // Request 2: a cold synth spanning a full chunk plus a remainder.
    let rows = privbayes_suite::core::CHUNK_ROWS + 123;
    let cold = client.synth("m", rows, 31, "csv").unwrap();
    assert_eq!(cold.lines().count(), rows + 1);

    // Request 3: the scrape sees one miss per block and no hits yet.
    let mid = client.metrics().unwrap();
    assert_eq!(counter(&mid, "privbayes_rowblock_cache_hits_total", &[]), 0.0);
    assert_eq!(
        counter(&mid, "privbayes_rowblock_cache_misses_total", &[]),
        2.0,
        "a cold two-chunk stream must record exactly one miss per block"
    );

    // Request 4: the identical synth replays from cache, byte-identical.
    let warm = client.synth("m", rows, 31, "csv").unwrap();
    assert_eq!(warm, cold, "a cache replay must not change a single byte");

    // Request 5: each block hit exactly once; misses and evictions frozen.
    let after = client.metrics().unwrap();
    assert_eq!(
        counter(&after, "privbayes_rowblock_cache_hits_total", &[]),
        2.0,
        "the replay must hit exactly once per block"
    );
    assert_eq!(counter(&after, "privbayes_rowblock_cache_misses_total", &[]), 2.0);
    assert_eq!(counter(&after, "privbayes_rowblock_cache_evicted_bytes_total", &[]), 0.0);
    assert_eq!(
        counter(&after, "privbayes_connections_reused_total", &[]),
        4.0,
        "every pooled request after the first must count exactly one reuse"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// 3. Coherence under concurrent load
// ---------------------------------------------------------------------------

/// Scrapes taken *while* 8 clients hammer the server all parse, stay
/// monotone, and the post-storm totals are exact — concurrent scraping
/// neither corrupts the exposition nor loses increments.
#[test]
fn a_concurrent_scrape_during_a_storm_stays_coherent() {
    let (handle, client, _registry, _slot) =
        start_server(ServerConfig { workers: 8, fit_threads: Some(1), ..ServerConfig::default() });
    let clients = 8usize;
    let per_client = 4usize;
    let rows = 1200usize;

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || {
                    for seed in 0..per_client as u64 {
                        let body = client.synth("m", rows, seed, "csv").unwrap();
                        assert_eq!(body.lines().count(), rows + 1);
                    }
                })
            })
            .collect();
        // The scraper races the storm: every snapshot must parse and the
        // totals must never step backwards.
        let scraper = {
            let client = client.clone();
            scope.spawn(move || {
                let mut last_requests = 0.0f64;
                let mut last_rows = 0.0f64;
                for _ in 0..25 {
                    let snap = client.metrics().expect("scrape during storm must succeed");
                    let requests = snap.sum("privbayes_requests_total");
                    let rows = counter(&snap, "privbayes_rows_streamed_total", &[]);
                    assert!(requests >= last_requests, "{requests} < {last_requests}");
                    assert!(rows >= last_rows, "{rows} < {last_rows}");
                    last_requests = requests;
                    last_rows = rows;
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };
        for w in workers {
            w.join().unwrap();
        }
        scraper.join().unwrap();
    });

    let total = clients * per_client;
    assert!(eventually(|| {
        let snap = client.metrics().unwrap();
        counter(&snap, "privbayes_requests_total", &[("endpoint", "synth"), ("status", "200")])
            >= total as f64
    }));
    let snap = client.metrics().unwrap();
    assert_eq!(
        counter(&snap, "privbayes_requests_total", &[("endpoint", "synth"), ("status", "200")]),
        total as f64,
        "the storm must be counted exactly once per request"
    );
    assert_eq!(counter(&snap, "privbayes_rows_streamed_total", &[]), (total * rows) as f64);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// 4. Request ids on every response shape
// ---------------------------------------------------------------------------

/// 200, 400, 402, 404, 405, and panic-500 responses all carry
/// `X-PrivBayes-Request-Id` — the error paths included, because an id that
/// only exists on success is useless for debugging.
#[test]
fn every_response_shape_carries_a_request_id() {
    quiet_injected_panics();
    let (handle, client, _registry, slot) =
        start_server(ServerConfig { workers: 2, fit_threads: Some(1), ..ServerConfig::default() });
    client.register_tenant("tiny", 0.05).unwrap();

    let schema_json =
        Json::parse(r#"[{"name": "a", "kind": "binary"}, {"name": "b", "kind": "binary"}]"#)
            .unwrap();
    let csv: String = std::iter::once("a,b".to_string())
        .chain((0..50).map(|i| format!("{},{}", i % 2, i % 2)))
        .collect::<Vec<_>>()
        .join("\n");
    let over_budget = Json::object(vec![
        ("tenant", Json::String("tiny".into())),
        ("model_id", Json::String("f1".into())),
        ("epsilon", Json::Number(0.5)),
        ("seed", Json::from_usize(5)),
        ("schema", schema_json),
        ("csv", Json::String(csv)),
    ]);

    let shapes: Vec<(u16, privbayes_suite::server::http::Response)> = vec![
        (200, client.request("GET", "/healthz", None).unwrap()),
        (400, client.request("GET", "/models/m/synth?rows=abc", None).unwrap()),
        (402, client.fit_raw(&over_budget).unwrap()),
        (404, client.request("GET", "/models/ghost/synth?rows=5&seed=1", None).unwrap()),
        (405, client.request("POST", "/healthz", None).unwrap()),
    ];
    for (expected, response) in &shapes {
        assert_eq!(response.code, *expected, "{}", response.text());
        let id = response
            .header("x-privbayes-request-id")
            .unwrap_or_else(|| panic!("a {expected} response must carry a request id"));
        assert!(!id.is_empty());
    }

    // A handler panic: the catch_unwind 500 still carries an id.
    *slot.write().unwrap() =
        Some(Arc::new(FaultPlan::new().inject(FaultSite::Handler, 0, Fault::Panic)));
    let response = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(response.code, 500, "{}", response.text());
    assert!(response.header("x-privbayes-request-id").is_some(), "500s carry ids too");
    *slot.write().unwrap() = None;

    // The panic and every shape above are all counted, each under its
    // endpoint and status (tenant PUT + five shapes + the 500 = 7).
    assert!(eventually(|| handle.stats().panics == 1));
    assert!(eventually(|| handle.stats().requests == 7));
    let snap = client.metrics().unwrap();
    for (endpoint, status, at_least) in [
        ("healthz", "200", 1.0),
        ("synth", "400", 1.0),
        ("fit", "402", 1.0),
        ("synth", "404", 1.0),
        ("healthz", "405", 1.0),
        // The injected panic fires before dispatch assigns an endpoint, so
        // its 500 is counted under the pre-routing label.
        ("unknown", "500", 1.0),
    ] {
        assert!(
            counter(
                &snap,
                "privbayes_requests_total",
                &[("endpoint", endpoint), ("status", status)]
            ) >= at_least,
            "missing {endpoint}/{status} in scrape"
        );
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A well-formed inbound `X-PrivBayes-Request-Id` is echoed back verbatim
/// (so a caller's trace id spans client and server logs); a hostile one —
/// oversized or with characters that could corrupt a log line — is
/// replaced with a generated id, never reflected.
#[test]
fn inbound_ids_are_echoed_and_hostile_ids_replaced() {
    let (handle, client, _registry, _slot) =
        start_server(ServerConfig { workers: 1, fit_threads: Some(1), ..ServerConfig::default() });
    let addr = handle.addr();

    let text = raw_exchange(
        addr,
        b"GET /healthz HTTP/1.1\r\nHost: x\r\nX-PrivBayes-Request-Id: trace-42.a_b\r\n\r\n",
    );
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(
        text.contains("X-PrivBayes-Request-Id: trace-42.a_b\r\n"),
        "a valid inbound id must be echoed: {text}"
    );

    let hostile = format!(
        "GET /healthz HTTP/1.1\r\nHost: x\r\nX-PrivBayes-Request-Id: {}\r\n\r\n",
        "x".repeat(65)
    );
    let text = raw_exchange(addr, hostile.as_bytes());
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(
        text.contains("X-PrivBayes-Request-Id: req-"),
        "an oversized id must be replaced with a generated one: {text}"
    );

    let text = raw_exchange(
        addr,
        b"GET /healthz HTTP/1.1\r\nHost: x\r\nX-PrivBayes-Request-Id: has space\r\n\r\n",
    );
    assert!(
        text.contains("X-PrivBayes-Request-Id: req-"),
        "an id with invalid characters must be replaced: {text}"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The socket-level failure paths — a reaped slow-loris (408) and an
/// acceptor rejection (503) — also carry request ids, and both land in the
/// same request counter as normal traffic (under `endpoint="read"` and
/// `endpoint="acceptor"`), so `/healthz`, `/metrics`, and
/// `ServerHandle::stats` agree about *every* answered connection.
#[test]
fn timeouts_and_overload_are_counted_with_ids() {
    let config = ServerConfig {
        workers: 1,
        fit_threads: Some(1),
        queue_depth: 1,
        read_deadline: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let (handle, client, _registry, _slot) = start_server(config);
    let addr = handle.addr();

    // Occupy the worker (a) and the queue slot (b) with silent peers.
    let a = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Beyond capacity: the acceptor's 503 carries an id like any response.
    let mut over = TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut text = String::new();
    let _ = over.read_to_string(&mut text);
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("X-PrivBayes-Request-Id: "), "503s carry ids: {text}");

    // The silent peers are reaped with 408s that carry ids.
    let mut text = String::new();
    let mut a = a;
    a.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = a.read_to_string(&mut text);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(text.contains("X-PrivBayes-Request-Id: "), "408s carry ids: {text}");

    // All answered connections land in the one request counter. Scrapes
    // issued while `b` still pins capacity get 503s themselves, so the
    // condition tolerates scrape failures until the queue drains and `b`
    // is reaped in turn.
    let retrying = client.clone().with_retry(fast_retry(8));
    assert!(eventually(|| {
        let Ok(snap) = retrying.metrics() else { return false };
        counter(&snap, "privbayes_requests_total", &[("endpoint", "acceptor"), ("status", "503")])
            >= 1.0
            && counter(
                &snap,
                "privbayes_requests_total",
                &[("endpoint", "read"), ("status", "408")],
            ) >= 2.0
    }));
    drop(b);
    let snap = retrying.metrics().unwrap();
    assert!(counter(&snap, "privbayes_queue_rejected_total", &[]) >= 1.0);
    let stats = handle.stats();
    assert!(stats.queue_rejected >= 1);
    // Quiescent now: the scrape's own increment lands just after its bytes
    // left the wire, then the totals agree exactly.
    assert!(
        eventually(|| handle.stats().requests == snap.sum("privbayes_requests_total") as u64 + 1),
        "stats and the scrape must read the same counter, got {} vs {}",
        handle.stats().requests,
        snap.sum("privbayes_requests_total")
    );

    retrying.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// 5. One surface: stats, /healthz, /metrics
// ---------------------------------------------------------------------------

/// The live `ServerHandle::stats`, the `/healthz` body, and the `/metrics`
/// exposition all read the same atomics — their request totals agree
/// exactly once the wire settles, with no separate bookkeeping to drift.
#[test]
fn stats_healthz_and_metrics_are_one_surface() {
    let (handle, client, _registry, _slot) =
        start_server(ServerConfig { workers: 2, fit_threads: Some(1), ..ServerConfig::default() });
    for seed in 0..3u64 {
        client.synth("m", 200, seed, "csv").unwrap();
    }
    assert!(eventually(|| handle.stats().requests == 3));

    // healthz reports the 3 synths; its own increment lands after its
    // response is written, so the next reader sees 4.
    let health = client.health().unwrap();
    assert_eq!(health.get("requests").and_then(Json::as_f64), Some(3.0));
    assert!(eventually(|| handle.stats().requests == 4));

    // The scrape agrees with the live stats taken at the same instant.
    let snap = client.metrics().unwrap();
    assert_eq!(snap.sum("privbayes_requests_total"), 4.0);
    assert!(eventually(|| handle.stats().requests == 5));

    client.shutdown().unwrap();
    let final_stats = handle.join().unwrap();
    assert_eq!(final_stats.requests, 6, "join returns the same counter, shutdown included");
}

// ---------------------------------------------------------------------------
// 6. Non-interference + access log
// ---------------------------------------------------------------------------

/// Instrumentation must be invisible in the bytes: with the access log
/// enabled, a streamed response is byte-identical to the direct batch
/// sampler — and the log holds one well-formed JSON line per request with
/// the same ids the responses carried.
#[test]
fn instrumented_streaming_is_byte_identical_and_logged() {
    let log_path = temp_path("access");
    let _ = std::fs::remove_file(&log_path);
    let config = ServerConfig {
        workers: 2,
        fit_threads: Some(1),
        access_log: Some(log_path.clone()),
        ..ServerConfig::default()
    };
    let (handle, client, registry, _slot) = start_server(config);

    // 2 chunks + a remainder, so chunk framing is exercised.
    let rows = 2 * privbayes_suite::core::CHUNK_ROWS + 137;
    let seed = 42u64;
    let entry = registry.get("m").unwrap();
    let direct = entry
        .sampler()
        .unwrap()
        .sample_dataset(rows, None, &mut StdRng::seed_from_u64(seed))
        .unwrap();
    let mut expected = Vec::new();
    write_csv(&direct, &mut expected).unwrap();
    let expected = String::from_utf8(expected).unwrap();

    let body = client.synth("m", rows, seed, "csv").unwrap();
    assert_eq!(body, expected, "instrumentation must not change a single byte");
    client.health().unwrap();

    client.shutdown().unwrap();
    handle.join().unwrap();

    // One JSON line per request, each parseable, with id/endpoint/status.
    let log = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = log.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 3, "synth + healthz + shutdown must be logged:\n{log}");
    let mut saw_synth = false;
    for line in &lines {
        let entry = Json::parse(line).unwrap_or_else(|e| panic!("unparseable line {line}: {e}"));
        assert!(entry.get("id").and_then(Json::as_str).is_some_and(|id| !id.is_empty()));
        assert!(entry.get("endpoint").and_then(Json::as_str).is_some());
        assert!(entry.get("status").and_then(Json::as_f64).is_some());
        if entry.get("endpoint").and_then(Json::as_str) == Some("synth") {
            saw_synth = true;
            assert_eq!(entry.get("status").and_then(Json::as_f64), Some(200.0));
            // `bytes` is what hit the wire: body plus head and chunk framing.
            let bytes = entry.get("bytes").and_then(Json::as_f64).unwrap();
            assert!(bytes >= expected.len() as f64, "wire bytes {bytes} < body {}", expected.len());
        }
    }
    assert!(saw_synth, "the synth request must appear in the log:\n{log}");
    let _ = std::fs::remove_file(&log_path);
}

// ---------------------------------------------------------------------------
// 7. Client helpers and the retry policy
// ---------------------------------------------------------------------------

/// With `metrics_enabled: false` the exposition endpoint is a 404 (which
/// the retrying client surfaces immediately — 4xx is never retried), while
/// `/healthz` and the in-process instrumentation keep working; and a
/// transient 500 on an idempotent read *is* retried to success, visible
/// afterwards in the panic counter.
#[test]
fn disabled_metrics_and_retries_interact_cleanly_with_instrumentation() {
    quiet_injected_panics();
    let config = ServerConfig {
        workers: 2,
        fit_threads: Some(1),
        metrics_enabled: false,
        ..ServerConfig::default()
    };
    let (handle, client, _registry, slot) = start_server(config);
    let retrying = client.clone().with_retry(fast_retry(5));

    // The 404 is structured and immediate, not retried into a storm.
    match retrying.metrics() {
        Err(ServerError::Status { code: 404, .. }) => {}
        other => panic!("disabled metrics must 404, got {other:?}"),
    }
    assert!(eventually(|| handle.stats().requests == 1));
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(handle.stats().requests, 1, "a 404 must not be retried");

    // Health stays live (it reads the same registry, not the endpoint).
    retrying.health().unwrap();

    // A single injected panic: the retrying client recovers, and the
    // in-process registry recorded both the 500 and the retry's 200.
    *slot.write().unwrap() =
        Some(Arc::new(FaultPlan::new().inject(FaultSite::Handler, 0, Fault::Panic)));
    retrying.health().expect("an idempotent read must retry past one 500");
    *slot.write().unwrap() = None;
    assert!(eventually(|| handle.stats().panics == 1));
    // All four requests (404 scrape, healthz, 500, retried 200) counted.
    assert!(eventually(|| handle.stats().requests == 4));
    let rendered = handle.metrics().render(&[]);
    let snap = privbayes_suite::server::parse_text(&rendered).unwrap();
    assert!(
        counter(&snap, "privbayes_requests_total", &[("endpoint", "unknown"), ("status", "500")])
            >= 1.0,
        "the injected panic fires before routing, so its 500 counts as `unknown`"
    );
    assert!(
        counter(&snap, "privbayes_requests_total", &[("endpoint", "healthz"), ("status", "200")])
            >= 2.0
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}
