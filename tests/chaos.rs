//! The chaos tier: the serving stack under deterministic fault injection.
//!
//! Every test here drives real sockets against a real server, with a
//! seeded [`FaultPlan`] injecting crashes, resets, stalls, and panics at
//! exact step indices — so each "storm" is reproducible run to run. The
//! contracts under test:
//!
//! 1. **Ledger durability** — killing the persist sequence at every step
//!    leaves the on-disk ledger either wholly pre- or wholly post-mutation,
//!    and a restart always recovers it (v1 files included).
//! 2. **Worker isolation** — a panicking handler costs one request, never a
//!    worker; the pool keeps its full capacity afterwards.
//! 3. **Byte-exact recovery** — a client resuming a truncated stream via
//!    cursors reassembles exactly the bytes of an uninterrupted stream.
//! 4. **Graceful overload** — beyond `queue_depth` the server answers 503 +
//!    `Retry-After` instead of queueing without bound; slow-loris peers are
//!    reaped with 408.
//! 5. **Retry discipline** — idempotent requests retry; `POST /fit` (which
//!    spends privacy budget) never auto-retries.
//! 6. **Keep-alive survival** — registry eviction and ledger persistence
//!    churn never tear a stream on a reused connection, and an injected
//!    reset on a parked connection fails the next request cleanly, with the
//!    pooled client recovering byte-exactly on a fresh connection.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

use privbayes_suite::core::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_suite::data::{Attribute, Dataset, Schema};
use privbayes_suite::model::{Json, ModelMetadata, ReleasedModel};
use privbayes_suite::server::{
    BudgetLedger, Client, Fault, FaultPlan, FaultSite, LedgerStep, ModelRegistry, RetryPolicy,
    Server, ServerConfig, ServerError, SynthSpec, LEDGER_FORMAT_V2,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Injected handler panics are part of the test plan; keep them out of the
/// test output while still reporting any *unexpected* panic in full.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected handler panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("privbayes-chaos-{tag}-{}.json", std::process::id()))
}

/// A small fixture model (3 attributes, 400 source rows).
fn fixture_model(seed: u64) -> ReleasedModel {
    let schema = Schema::new(vec![
        Attribute::binary("smoker"),
        Attribute::categorical("region", 3).unwrap(),
        Attribute::binary("disease"),
    ])
    .unwrap();
    let rows: Vec<Vec<u32>> =
        (0..400u32).map(|i| vec![i % 2, (i / 2) % 3, u32::from(i % 2 == 1)]).collect();
    let data = Dataset::from_rows(schema, &rows).unwrap();
    let options = PrivBayesOptions::new(1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = PrivBayes::new(options.clone()).synthesize(&data, &mut rng).unwrap();
    ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon: options.epsilon,
            beta: options.beta,
            theta: options.theta,
            score: options.effective_score().name().to_string(),
            encoding: options.encoding.name().to_string(),
            source_rows: data.n(),
            comment: "chaos fixture".to_string(),
        },
        data.schema().clone(),
        result.model,
    )
    .unwrap()
}

/// Starts a server with model `m` loaded; returns the handle, a plain
/// (non-retrying) client, and the live fault slot.
fn start_server(
    config: ServerConfig,
) -> (privbayes_suite::server::ServerHandle, Client, privbayes_suite::server::server::FaultSlot) {
    let registry = Arc::new(ModelRegistry::new());
    registry.load("m", fixture_model(1)).unwrap();
    let ledger = Arc::new(BudgetLedger::in_memory());
    let server = Server::bind("127.0.0.1:0", config, registry, ledger).unwrap();
    let slot = server.fault_slot();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());
    (handle, client, slot)
}

/// A fast-but-persistent retry policy for tests (real delays stay in the
/// microsecond range so storms resolve quickly).
fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
        jitter_seed: 7,
    }
}

// ---------------------------------------------------------------------------
// 1. Ledger durability under process death
// ---------------------------------------------------------------------------

/// Kill the persist sequence at every possible instant, then "restart" by
/// re-opening the file: the recovered ledger must hold exactly the pre- or
/// exactly the post-mutation state (CRC intact), never a torn mix — and a
/// crash after the rename must preserve the *new* state.
#[test]
fn killing_persistence_at_every_step_recovers_a_consistent_ledger() {
    let cases: &[(Fault, bool, &str)] = &[
        (Fault::CrashAt(LedgerStep::WriteTmp), false, "before-write"),
        (Fault::ShortWrite, false, "mid-write"),
        (Fault::CrashAt(LedgerStep::SyncTmp), false, "before-tmp-sync"),
        (Fault::CrashAt(LedgerStep::Rename), false, "before-rename"),
        (Fault::CrashAt(LedgerStep::SyncDir), true, "before-dir-sync"),
        (Fault::Fail, false, "clean-io-error"),
    ];
    for &(fault, survives, tag) in cases {
        let path = temp_path(&format!("kill-{tag}"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("tmp"));

        // Process one: a clean history, then a charge whose persist dies.
        {
            let ledger = BudgetLedger::with_persistence(&path).unwrap();
            ledger.register("t", 1.0).unwrap();
            ledger.charge("t", 0.25).unwrap();
            let plan = Arc::new(FaultPlan::new().inject(FaultSite::LedgerPersist, 0, fault));
            ledger.set_fault_plan(Some(plan));
            let charge = ledger.charge("t", 0.25);
            assert_eq!(
                charge.is_ok(),
                survives,
                "{tag}: a charge whose mutation reached disk must report success \
                 and one that rolled back must report failure"
            );
        }

        // Process two: restart from whatever the "crash" left on disk.
        let restored = BudgetLedger::with_persistence(&path)
            .unwrap_or_else(|e| panic!("{tag}: restart must recover, got {e}"));
        let expected: f64 = if survives { 0.5 } else { 0.25 };
        let spent = restored.budget("t").unwrap().spent;
        assert_eq!(
            spent.to_bits(),
            expected.to_bits(),
            "{tag}: disk must hold exactly the pre- or post-mutation state, got {spent}"
        );
        // The recovered file is a valid v2 ledger and keeps working.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(LEDGER_FORMAT_V2), "{tag}: {text}");
        restored.charge("t", 0.125).unwrap();

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("tmp"));
    }
}

/// A ledger written by the v1 (pre-CRC) format still loads, and its first
/// mutation upgrades the file to the checksummed v2 format in place.
#[test]
fn v1_ledger_files_load_and_upgrade_to_v2() {
    let path = temp_path("v1-upgrade");
    std::fs::write(
        &path,
        r#"{"format": "privbayes-ledger/1", "tenants": {"acme": {"total": 1.5, "spent": 0.25}}}"#,
    )
    .unwrap();

    let ledger = BudgetLedger::with_persistence(&path).unwrap();
    let budget = ledger.budget("acme").unwrap();
    assert_eq!(budget.total.to_bits(), 1.5f64.to_bits());
    assert_eq!(budget.spent.to_bits(), 0.25f64.to_bits());

    ledger.charge("acme", 0.25).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains(LEDGER_FORMAT_V2), "first mutation must upgrade the file: {text}");
    assert!(text.contains("\"crc\""), "v2 files carry a checksum: {text}");

    let reopened = BudgetLedger::with_persistence(&path).unwrap();
    assert_eq!(reopened.budget("acme").unwrap().spent.to_bits(), 0.5f64.to_bits());
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// 2. Worker isolation under handler panics
// ---------------------------------------------------------------------------

/// A panicking handler answers a structured 500 and costs nothing else: the
/// full pool then serves `workers` concurrent requests, and shutdown joins
/// every worker (a wedged pool would hang the join).
#[test]
fn a_handler_panic_is_isolated_and_the_pool_keeps_its_capacity() {
    quiet_injected_panics();
    let config = ServerConfig::default();
    let workers = config.workers;
    let (handle, client, slot) = start_server(config);

    // The very next dispatched request panics inside its handler.
    *slot.write().unwrap() =
        Some(Arc::new(FaultPlan::new().inject(FaultSite::Handler, 0, Fault::Panic)));
    let response = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(response.code, 500, "{}", response.text());
    let body = Json::parse(&response.text()).unwrap();
    assert_eq!(body.get("error").and_then(Json::as_str), Some("internal"));

    // Afterwards: every worker still serves, concurrently and correctly.
    *slot.write().unwrap() = None;
    let reference = client.synth("m", 200, 9, "csv").unwrap();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..workers)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || client.synth("m", 200, 9, "csv").unwrap())
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });
    for body in &bodies {
        assert_eq!(body, &reference, "a post-panic stream must be intact");
    }

    // The panic is visible in the stats and on /healthz.
    let health = client.health().unwrap();
    assert_eq!(health.get("panics").and_then(Json::as_usize), Some(1));
    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.panics, 1);
    assert!(stats.requests >= workers as u64 + 3, "all requests counted: {stats:?}");
}

// ---------------------------------------------------------------------------
// 3. Byte-exact stream recovery through cursor resume
// ---------------------------------------------------------------------------

/// A response truncated mid-stream by an injected connection death is
/// reassembled byte-exactly by the resuming client: prefix + cursor-resumed
/// remainder equals the uninterrupted stream.
#[test]
fn a_truncated_stream_resumes_to_the_exact_uninterrupted_bytes() {
    let (handle, client, slot) = start_server(ServerConfig::default());
    let rows = 3 * privbayes_suite::core::CHUNK_ROWS + 137;
    let spec = SynthSpec::new().with_rows(rows).with_seed(42);

    // Reference: the same spec served without any faults.
    let reference = client.synth_with("m", &spec).unwrap().text();
    assert!(reference.len() > 16 * 1024, "stream must span several socket writes");

    // The second 8 KiB socket write dies halfway; everything after is clean,
    // so the retry's connection streams the remainder unharmed.
    let plan = Arc::new(FaultPlan::new().inject(FaultSite::ConnWrite, 1, Fault::ShortWrite));
    *slot.write().unwrap() = Some(Arc::clone(&plan));
    let assembled = client.with_retry(fast_retry(4)).synth_resuming("m", &spec).unwrap();
    assert!(plan.fired() >= 1, "the truncation fault must actually fire");
    assert_eq!(
        assembled, reference,
        "prefix + resumed remainder must equal the uninterrupted stream byte for byte"
    );

    *slot.write().unwrap() = None;
    let client = Client::new(handle.addr().to_string());
    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// 4. The full storm: panics + resets + stalls under concurrency
// ---------------------------------------------------------------------------

/// Eight concurrent clients against a seeded storm of handler panics,
/// connection resets, and read stalls: every request is eventually answered
/// with exactly the right bytes, and the pool ends the run at full
/// capacity with zero wedged workers.
#[test]
fn every_request_survives_a_seeded_storm_of_panics_resets_and_stalls() {
    quiet_injected_panics();
    let config = ServerConfig { workers: 4, fit_threads: Some(1), ..ServerConfig::default() };
    let workers = config.workers;
    let (handle, client, slot) = start_server(config);
    let reference = client.synth("m", 300, 11, "csv").unwrap();

    // A reproducible storm (seed 0xC4A05): sparse faults over the first
    // couple hundred operations per site, plus a few guaranteed hits so the
    // test exercises something even if the sampled schedule is light.
    let plan = Arc::new(
        FaultPlan::seeded(
            0xC4A05,
            200,
            4,
            &[
                (FaultSite::Handler, Fault::Panic),
                (FaultSite::ConnWrite, Fault::Reset),
                (FaultSite::ConnRead, Fault::DelayMs(5)),
            ],
        )
        .inject(FaultSite::Handler, 2, Fault::Panic)
        .inject(FaultSite::ConnWrite, 5, Fault::Reset),
    );
    *slot.write().unwrap() = Some(Arc::clone(&plan));

    // 8 clients × 4 requests, all retrying: every one must end correct.
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let client = client.clone().with_retry(fast_retry(12));
                scope.spawn(move || {
                    (0..4).map(|_| client.synth("m", 300, 11, "csv").unwrap()).collect::<Vec<_>>()
                })
            })
            .collect();
        threads.into_iter().flat_map(|t| t.join().unwrap()).collect()
    });
    assert_eq!(bodies.len(), 32);
    for (i, body) in bodies.iter().enumerate() {
        assert_eq!(body, &reference, "request {i} must deliver exact bytes despite the storm");
    }
    assert!(plan.fired() >= 2, "the storm must have exercised faults, fired {}", plan.fired());

    // Calm after the storm: the full pool still serves concurrently.
    *slot.write().unwrap() = None;
    std::thread::scope(|scope| {
        let threads: Vec<_> = (0..workers)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || client.synth("m", 300, 11, "csv").unwrap())
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), reference);
        }
    });

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.requests >= 37, "all requests counted: {stats:?}");
}

// ---------------------------------------------------------------------------
// 5. Admission control and slow-loris reaping
// ---------------------------------------------------------------------------

fn read_all(stream: &mut TcpStream) -> String {
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);
    text
}

/// With one worker and a one-slot queue, connections beyond capacity get an
/// immediate 503 with `Retry-After` from the acceptor — not an unbounded
/// queue, not a hang — and the server serves normally once load drops.
#[test]
fn overload_answers_503_with_retry_after_instead_of_queueing() {
    let config = ServerConfig {
        workers: 1,
        fit_threads: Some(1),
        queue_depth: 1,
        read_deadline: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let (handle, client, _slot) = start_server(config);
    let addr = handle.addr();

    // Occupy the worker (a), then the queue slot (b): both connect and send
    // nothing, pinning capacity until the read deadline reaps them.
    let a = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // worker picks `a` up
    let b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // `b` lands in the queue

    // Beyond capacity: immediate 503 + Retry-After, no worker time spent.
    for _ in 0..2 {
        let mut over = TcpStream::connect(addr).unwrap();
        over.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let text = read_all(&mut over);
        assert!(text.starts_with("HTTP/1.1 503"), "overflow must be rejected: {text}");
        assert!(text.contains("Retry-After: 1"), "503 must carry a retry hint: {text}");
        assert!(text.contains("overloaded"), "{text}");
    }

    // Release capacity; the reaped/freed worker serves normally again.
    drop(a);
    drop(b);
    std::thread::sleep(Duration::from_millis(100));
    let body = client.with_retry(fast_retry(6)).synth("m", 50, 3, "csv").unwrap();
    assert_eq!(body.lines().count(), 51);

    let client = Client::new(addr.to_string());
    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.queue_rejected >= 2, "rejections must be counted: {stats:?}");
}

/// A peer that sends half a request line and stalls is answered 408 when
/// the read deadline expires, freeing the worker for the next request.
#[test]
fn a_slow_loris_peer_is_reaped_with_408() {
    let config = ServerConfig {
        workers: 1,
        fit_threads: Some(1),
        read_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let (handle, client, _slot) = start_server(config);

    let mut loris = TcpStream::connect(handle.addr()).unwrap();
    loris.write_all(b"GET /healthz HT").unwrap(); // ...and then silence
    loris.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let text = read_all(&mut loris);
    assert!(text.starts_with("HTTP/1.1 408"), "stalled peers get 408: {text}");
    assert!(text.contains("request-timeout"), "{text}");

    // The single worker is free again immediately afterwards.
    let health = client.health().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// 6. Keep-alive connections under churn and injected resets
// ---------------------------------------------------------------------------

/// Registry eviction and ledger persistence churn racing kept-alive
/// connections mid-stream: every streamed request on a reused connection
/// either completes byte-identically to the reference or fails with a clean
/// 404 (an eviction gap) — never a torn stream — and the same connections
/// keep serving once the churn stops. The ledger, persisted (striped)
/// throughout the race, holds every charge.
#[test]
fn eviction_and_ledger_churn_never_tear_a_keepalive_stream() {
    let path = temp_path("keepalive-churn");
    let _ = std::fs::remove_file(&path);
    let registry = Arc::new(ModelRegistry::new());
    registry.load("m", fixture_model(1)).unwrap();
    let ledger = Arc::new(BudgetLedger::with_persistence_striped(&path, 8).unwrap());
    let config = ServerConfig { workers: 2, fit_threads: Some(1), ..ServerConfig::default() };
    let server =
        Server::bind("127.0.0.1:0", config, Arc::clone(&registry), Arc::clone(&ledger)).unwrap();
    let handle = server.spawn();
    let addr = handle.addr();
    let client = Client::new(addr.to_string());

    let rows = 4 * privbayes_suite::core::CHUNK_ROWS; // long enough to race
    let reference = client.synth("m", rows, 9, "csv").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let outcomes: Vec<Result<String, ServerError>> = std::thread::scope(|scope| {
        let churn = {
            let registry = Arc::clone(&registry);
            let ledger = Arc::clone(&ledger);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let reload = fixture_model(1);
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let _ = registry.evict("m");
                    registry.load("m", reload.clone()).unwrap();
                    let tenant = format!("tenant-{i}");
                    ledger.register(&tenant, 1.0).unwrap();
                    ledger.charge(&tenant, 0.5).unwrap();
                    i += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };
        // Two streamers, each with its own kept-alive connection (a fresh
        // `Client` each: clones would share one pool slot).
        let streamers: Vec<_> = (0..2)
            .map(|_| {
                let client = Client::new(addr.to_string());
                scope.spawn(move || {
                    let results: Vec<_> =
                        (0..8).map(|_| client.synth("m", rows, 9, "csv")).collect();
                    // The churn is still running: one more request on the
                    // same kept-alive connection must still be exact.
                    (client, results)
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut clients = Vec::new();
        for t in streamers {
            let (client, results) = t.join().unwrap();
            all.extend(results);
            clients.push(client);
        }
        stop.store(true, Ordering::SeqCst);
        churn.join().unwrap();
        // Calm after the churn: the *same* pooled connections serve again.
        for client in &clients {
            all.push(client.synth("m", rows, 9, "csv"));
        }
        all
    });

    let mut completed = 0;
    for outcome in outcomes {
        match outcome {
            Ok(body) => {
                assert_eq!(body, reference, "a completed keep-alive stream must be exact");
                completed += 1;
            }
            Err(ServerError::Status { code: 404, .. }) => {} // eviction gap: clean error
            Err(other) => panic!("keep-alive request failed uncleanly: {other}"),
        }
    }
    assert!(completed >= 2, "streams must have completed during the churn");

    // The connections really were reused, and the striped ledger persisted
    // every charge through the race.
    let reused =
        client.metrics().unwrap().value("privbayes_connections_reused_total", &[]).unwrap_or(0.0);
    assert!(reused > 0.0, "the streamers must have ridden kept-alive connections");
    assert_eq!(ledger.budget("tenant-0").unwrap().spent.to_bits(), 0.5f64.to_bits());
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains(LEDGER_FORMAT_V2), "{text}");

    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("tmp"));
}

/// An injected reset on a *reused* connection (`ConnRead` step 1: the first
/// read after the first request's head) kills the parked connection. The
/// next request on that raw socket fails cleanly — EOF or a reset, never a
/// partial response — and a pooled client then recovers byte-exactly on a
/// fresh connection.
#[test]
fn a_reset_on_a_reused_connection_fails_cleanly_and_recovery_is_byte_exact() {
    let (handle, client, slot) = start_server(ServerConfig::default());
    let addr = handle.addr();
    let rows = 2 * privbayes_suite::core::CHUNK_ROWS + 57;
    let path = format!("/models/m/synth?rows={rows}&seed=5&format=csv");

    // Install the plan before any connection exists: each connection
    // captures the live plan at accept time.
    let plan = Arc::new(FaultPlan::new().inject(FaultSite::ConnRead, 1, Fault::Reset));
    *slot.write().unwrap() = Some(Arc::clone(&plan));

    // Request 1 on a raw keep-alive connection: head read is ConnRead step
    // 0, clean — the full response arrives.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(format!("GET {path} HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = Vec::new();
    let mut buf = [0u8; 8192];
    while !response.ends_with(b"\r\n0\r\n\r\n") {
        let n = raw.read(&mut buf).expect("the first response must stream cleanly");
        assert!(n > 0, "the first response must complete before the fault fires");
        response.extend_from_slice(&buf[..n]);
    }
    assert!(response.starts_with(b"HTTP/1.1 200"), "first keep-alive response must be 200");

    // The server's next read on this connection — its idle poll — consumes
    // ConnRead step 1 and dies on the injected reset.
    std::thread::sleep(Duration::from_millis(120));
    assert!(plan.fired() >= 1, "the injected reset must have fired");

    // Request 2 on the dead connection fails *cleanly*: the write may be
    // buffered, but no partial second response ever arrives.
    let _ =
        raw.write_all(format!("GET {path} HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").as_bytes());
    // EOF and ECONNRESET are equally clean — both read as "no bytes".
    let after = raw.read(&mut buf).unwrap_or_default();
    assert_eq!(after, 0, "a killed connection must never deliver a partial response");
    drop(raw);

    // A retrying pooled client recovers on a fresh connection (ConnRead
    // steps 2+ are clean) — byte-exactly.
    let recovered = client.with_retry(fast_retry(4)).synth("m", rows, 5, "csv").unwrap();
    *slot.write().unwrap() = None;
    let client = Client::new(addr.to_string());
    let reference = client.synth("m", rows, 5, "csv").unwrap();
    assert_eq!(recovered, reference, "recovery after the reset must be byte-exact");

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.panics, 0, "an injected reset must never panic a worker: {stats:?}");
}

// ---------------------------------------------------------------------------
// 7. Retry discipline: /fit is never auto-retried
// ---------------------------------------------------------------------------

/// Against a server that answers every request 500, a retrying client
/// re-issues idempotent reads (`max_retries + 1` connections) but sends a
/// budget-spending `POST /fit` exactly once: a retried fit could double-
/// charge ε, so the client refuses to guess.
#[test]
fn fit_is_sent_exactly_once_while_idempotent_reads_retry() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let connections = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let connections = Arc::clone(&connections);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { break };
                connections.fetch_add(1, Ordering::SeqCst);
                // Drain the whole request (head + declared body) so the
                // client never sees a broken pipe mid-write, then answer a
                // canned 500 and close.
                let mut request = Vec::new();
                let mut buf = [0u8; 4096];
                while !request.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => request.extend_from_slice(&buf[..n]),
                    }
                }
                let head_end = request
                    .windows(4)
                    .position(|w| w == b"\r\n\r\n")
                    .map_or(request.len(), |i| i + 4);
                let declared = String::from_utf8_lossy(&request[..head_end])
                    .to_ascii_lowercase()
                    .lines()
                    .find_map(|l| l.strip_prefix("content-length:").map(|v| v.trim().to_string()))
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(0);
                let mut body_seen = request.len() - head_end;
                while body_seen < declared {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => body_seen += n,
                    }
                }
                let _ = stream.write_all(
                    b"HTTP/1.1 500 Internal Server Error\r\n\
                      Content-Type: application/json\r\n\
                      Content-Length: 20\r\n\
                      Retry-After: 0\r\n\r\n\
                      {\"error\":\"internal\"}",
                );
            }
        })
    };

    let client = Client::new(addr.to_string()).with_retry(fast_retry(3));

    // A fit that fails server-side is reported once, never re-sent.
    let body = Json::object(vec![("tenant", Json::String("t".into()))]);
    let response = client.fit_raw(&body).unwrap();
    assert_eq!(response.code, 500);
    assert_eq!(connections.load(Ordering::SeqCst), 1, "/fit must be sent exactly once");

    // The same failure on an idempotent read burns every retry.
    let err = client.synth("m", 10, 1, "csv").unwrap_err();
    assert!(matches!(err, ServerError::Status { code: 500, .. }), "{err}");
    assert_eq!(
        connections.load(Ordering::SeqCst),
        1 + 4,
        "an idempotent read retries max_retries times before giving up"
    );

    // Unblock and join the acceptor.
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
    acceptor.join().unwrap();
}
