//! Fast smoke test mirroring `examples/quickstart.rs`.
//!
//! Runs the same pipeline as the quickstart example — census-like schema,
//! ground-truth sampling, PrivBayes synthesis, workload evaluation, CSV
//! preview — at a reduced row count so the whole check stays sub-second.
//! Exercises the `privbayes_suite` umbrella re-exports end to end; the
//! example binary itself is kept compiling by CI's `cargo build --examples`.

use privbayes_suite::core::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_suite::data::encoding::EncodingKind;
use privbayes_suite::data::{Attribute, Dataset, Schema, TaxonomyTree};
use privbayes_suite::datasets::GroundTruthNetwork;
use privbayes_suite::marginals::average_workload_tvd;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quickstart_schema() -> Schema {
    Schema::new(vec![
        Attribute::continuous("age", 17.0, 90.0, 16)
            .expect("valid range")
            .with_taxonomy(TaxonomyTree::balanced_binary(16).expect("tree"))
            .expect("leaves match"),
        Attribute::categorical_labelled("education", ["hs", "college", "msc", "phd"])
            .expect("labels"),
        Attribute::categorical_labelled("workclass", ["private", "gov", "self", "none"])
            .expect("labels"),
        Attribute::categorical_labelled("title", ["junior", "senior", "lead", "manager"])
            .expect("labels"),
        Attribute::binary("income>50k"),
    ])
    .expect("valid schema")
}

#[test]
fn quickstart_pipeline_runs_end_to_end() {
    let mut rng = StdRng::seed_from_u64(2014);
    let truth = GroundTruthNetwork::random(&quickstart_schema(), 2, 0.4, &mut rng);
    let data: Dataset = truth.sample(2_000, &mut rng);
    assert_eq!(data.n(), 2_000);
    assert_eq!(data.d(), 5);

    let options = PrivBayesOptions::new(1.0).with_encoding(EncodingKind::Hierarchical);
    let result = PrivBayes::new(options).synthesize(&data, &mut rng).expect("synthesis");

    // The release must spend the whole budget and nothing more.
    assert!((result.epsilon1_spent + result.epsilon2_spent - 1.0).abs() < 1e-9);
    assert_eq!(result.synthetic.n(), data.n());

    // Same signal check as the example, at the reduced scale.
    let err_2way = average_workload_tvd(&data, &result.synthetic, 2);
    assert!(err_2way < 0.5, "release should carry signal, got tvd {err_2way}");

    // The CSV preview path the example prints must round through UTF-8.
    let mut csv = Vec::new();
    privbayes_suite::data::csv::write_csv(&result.synthetic, &mut csv).expect("csv");
    let text = String::from_utf8(csv).expect("utf8");
    assert!(text.lines().count() > result.synthetic.n(), "header plus one line per row");
}
