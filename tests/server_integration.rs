//! The server tier: the serving layer's three contracts under concurrency.
//!
//! 1. **Determinism** — concurrent clients hammering one model receive
//!    byte-identical streams for fixed seeds, equal to the direct
//!    `sample_synthetic` path.
//! 2. **Ledger** — budget exhaustion returns the structured 402 exactly at
//!    the ε boundary, and a rejected request mutates nothing.
//! 3. **Registry** — eviction under load never drops an in-flight request.
//! 4. **Keep-alive** — back-to-back requests on one connection (the second
//!    a row-block cache replay of the first) are each completely framed and
//!    byte-identical to the batch path; `Connection: close` stays honored.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;

use privbayes_suite::core::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_suite::data::csv::write_csv;
use privbayes_suite::data::{Attribute, Dataset, Schema};
use privbayes_suite::model::{Json, ModelMetadata, ReleasedModel};
use privbayes_suite::server::{
    BudgetLedger, Client, ModelRegistry, Server, ServerConfig, ServerError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small but non-trivial fixture model (3 attributes, 500 source rows).
fn fixture_model(seed: u64) -> ReleasedModel {
    let schema = Schema::new(vec![
        Attribute::binary("smoker"),
        Attribute::categorical("region", 3).unwrap(),
        Attribute::binary("disease"),
    ])
    .unwrap();
    let rows: Vec<Vec<u32>> =
        (0..500u32).map(|i| vec![i % 2, (i / 2) % 3, u32::from(i % 2 == 1)]).collect();
    let data = Dataset::from_rows(schema, &rows).unwrap();
    let options = PrivBayesOptions::new(1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = PrivBayes::new(options.clone()).synthesize(&data, &mut rng).unwrap();
    ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon: options.epsilon,
            beta: options.beta,
            theta: options.theta,
            score: options.effective_score().name().to_string(),
            encoding: options.encoding.name().to_string(),
            source_rows: data.n(),
            comment: "server integration fixture".to_string(),
        },
        data.schema().clone(),
        result.model,
    )
    .unwrap()
}

/// Starts a server with the fixture model loaded as `m` and a fresh
/// registry/ledger; returns (handle, client, registry, ledger).
fn start_server(
    workers: usize,
) -> (privbayes_suite::server::ServerHandle, Client, Arc<ModelRegistry>, Arc<BudgetLedger>) {
    let registry = Arc::new(ModelRegistry::new());
    registry.load("m", fixture_model(1)).unwrap();
    let ledger = Arc::new(BudgetLedger::in_memory());
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers, fit_threads: Some(1), ..ServerConfig::default() },
        Arc::clone(&registry),
        Arc::clone(&ledger),
    )
    .unwrap();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());
    (handle, client, registry, ledger)
}

#[test]
fn concurrent_streams_are_byte_identical_to_the_batch_path() {
    let (handle, client, registry, _ledger) = start_server(6);
    // 2 chunks + a remainder, so chunk framing is exercised.
    let rows = 2 * privbayes_suite::core::CHUNK_ROWS + 137;
    let seed = 42u64;

    // The reference bytes come from the direct batch sampler.
    let entry = registry.get("m").unwrap();
    let direct = entry
        .sampler()
        .unwrap()
        .sample_dataset(rows, None, &mut StdRng::seed_from_u64(seed))
        .unwrap();
    let mut expected = Vec::new();
    write_csv(&direct, &mut expected).unwrap();
    let expected = String::from_utf8(expected).unwrap();

    // 8 concurrent clients, same request: every stream must be identical.
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || client.synth("m", rows, seed, "csv").unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, body) in bodies.iter().enumerate() {
        assert_eq!(body, &expected, "stream {i} diverged from the batch path");
    }

    // Distinct seeds under concurrency: each equals its own batch output.
    let per_seed: Vec<(u64, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6u64)
            .map(|s| {
                let client = client.clone();
                scope.spawn(move || (s, client.synth("m", 300, s, "csv").unwrap()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (s, body) in per_seed {
        let direct = entry
            .sampler()
            .unwrap()
            .sample_dataset(300, None, &mut StdRng::seed_from_u64(s))
            .unwrap();
        let mut expected = Vec::new();
        write_csv(&direct, &mut expected).unwrap();
        assert_eq!(body.as_bytes(), &expected[..], "seed {s}");
    }

    // JSONL carries the same tuples: spot-check the line count.
    let jsonl = client.synth("m", 300, seed, "jsonl").unwrap();
    assert_eq!(jsonl.lines().count(), 300);

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert!(stats.requests >= 16, "every request must be counted, got {}", stats.requests);
}

#[test]
fn budget_exhaustion_is_structured_and_exact() {
    let (handle, client, _registry, ledger) = start_server(4);
    client.register_tenant("acme", 1.0).unwrap();

    let schema_json =
        Json::parse(r#"[{"name": "a", "kind": "binary"}, {"name": "b", "kind": "binary"}]"#)
            .unwrap();
    let csv: String = std::iter::once("a,b".to_string())
        .chain((0..200).map(|i| format!("{},{}", i % 2, i % 2)))
        .collect::<Vec<_>>()
        .join("\n");
    let fit_body = |id: &str, epsilon: f64| {
        Json::object(vec![
            ("tenant", Json::String("acme".into())),
            ("model_id", Json::String(id.into())),
            ("epsilon", Json::Number(epsilon)),
            ("seed", Json::from_usize(5)),
            ("schema", schema_json.clone()),
            ("csv", Json::String(csv.clone())),
        ])
    };

    // Two fits of 0.4 succeed (spent: 0.8).
    for (i, id) in ["f1", "f2"].iter().enumerate() {
        let resp = client.fit_raw(&fit_body(id, 0.4)).unwrap();
        assert_eq!(resp.code, 201, "fit {i}: {}", resp.text());
    }
    // 0.3 exceeds the remaining 0.2: structured 402, nothing mutated.
    let before = ledger.budget("acme").unwrap();
    let resp = client.fit_raw(&fit_body("f3", 0.3)).unwrap();
    assert_eq!(resp.code, 402, "{}", resp.text());
    let body = Json::parse(&resp.text()).unwrap();
    assert_eq!(body.get("error").and_then(Json::as_str), Some("budget-exhausted"));
    assert_eq!(body.get("tenant").and_then(Json::as_str), Some("acme"));
    assert_eq!(body.get("requested").and_then(Json::as_f64), Some(0.3));
    let remaining = body.get("remaining").and_then(Json::as_f64).unwrap();
    assert!((remaining - 0.2).abs() < 1e-9, "remaining = {remaining}");
    assert_eq!(ledger.budget("acme").unwrap(), before, "rejected fit must not spend");
    let rejected_model = client.request("GET", "/models/f3", None).unwrap();
    assert_eq!(rejected_model.code, 404, "rejected fit must not register a model");

    // Exactly the remaining 0.2 still fits — the boundary is inclusive.
    let resp = client.fit_raw(&fit_body("f3", 0.2)).unwrap();
    assert_eq!(resp.code, 201, "{}", resp.text());
    assert!(ledger.budget("acme").unwrap().remaining() < 1e-9);

    // And the very next request, however small, is rejected.
    let resp = client.fit_raw(&fit_body("f4", 0.01)).unwrap();
    assert_eq!(resp.code, 402);

    // Unknown tenants and invalid amounts have their own structured errors.
    let mut unknown = fit_body("f5", 0.1);
    if let Json::Object(fields) = &mut unknown {
        fields[0].1 = Json::String("ghost".into());
    }
    assert_eq!(client.fit_raw(&unknown).unwrap().code, 404);
    assert_eq!(client.fit_raw(&fit_body("f6", -1.0)).unwrap().code, 400);

    // Synthesis from an already fitted model is post-processing: free.
    let body = client.synth("f1", 50, 3, "csv").unwrap();
    assert_eq!(body.lines().count(), 51);
    assert!(ledger.budget("acme").unwrap().remaining() < 1e-9, "synth must not charge");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn eviction_under_load_never_drops_inflight_requests() {
    let (handle, client, registry, _ledger) = start_server(6);
    let rows = 4 * privbayes_suite::core::CHUNK_ROWS; // a stream long enough to race
    let reference = client.synth("m", rows, 9, "csv").unwrap();

    // Readers hammer the model while the main thread evicts and reloads it
    // repeatedly. Every request that starts before an eviction must either
    // complete with the full, correct stream, or — if it arrives in a gap
    // where the model is evicted — fail with a clean 404. No torn streams.
    let results: Vec<Result<String, ServerError>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || {
                    (0..6).map(|_| client.synth("m", rows, 9, "csv")).collect::<Vec<_>>()
                })
            })
            .collect();
        // Pre-built artifact: the evict → load gap is a few microseconds,
        // so most requests find the model present while some race the gap.
        let reload = fixture_model(1);
        for _ in 0..12 {
            let _ = registry.evict("m");
            registry.load("m", reload.clone()).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        workers.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let mut completed = 0;
    for result in results {
        match result {
            Ok(body) => {
                assert_eq!(body, reference, "a completed stream must be intact and identical");
                completed += 1;
            }
            Err(ServerError::Status { code: 404, .. }) => {} // hit an eviction gap: clean error
            Err(other) => panic!("in-flight request failed uncleanly: {other}"),
        }
    }
    assert!(completed > 0, "at least some streams must have completed");

    // The model survives in the registry and still serves identical bytes.
    assert_eq!(client.synth("m", rows, 9, "csv").unwrap(), reference);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Reads one HTTP/1.1 chunked response off `stream` — exactly up to the
/// chunked terminator, leaving the connection positioned at the next
/// response — and returns `(head, dechunked body)`. The scan for the
/// terminator is unambiguous because CSV/NDJSON bodies never contain `\r`.
fn read_chunked_response(stream: &mut TcpStream) -> (String, String) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    while !raw.ends_with(b"\r\n0\r\n\r\n") {
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "connection closed before the chunked terminator");
        raw.extend_from_slice(&buf[..n]);
    }
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    let head = String::from_utf8(raw[..head_end].to_vec()).unwrap();
    let mut body = String::new();
    let mut rest = &raw[head_end..];
    loop {
        let line_end = rest.windows(2).position(|w| w == b"\r\n").unwrap();
        let size =
            usize::from_str_radix(std::str::from_utf8(&rest[..line_end]).unwrap(), 16).unwrap();
        rest = &rest[line_end + 2..];
        if size == 0 {
            break;
        }
        body.push_str(std::str::from_utf8(&rest[..size]).unwrap());
        rest = &rest[size + 2..];
    }
    (head, body)
}

/// Two requests on one kept-alive connection — the first sampled cold, the
/// second replayed from the row-block cache — are each a complete,
/// correctly framed `Connection: keep-alive` response whose dechunked body
/// is byte-identical to the direct batch sampler; a `Connection: close`
/// fetch of the same request still closes and carries the same bytes.
#[test]
fn a_kept_alive_connection_serves_byte_identical_streams_back_to_back() {
    let (handle, client, registry, _ledger) = start_server(2);
    let rows = privbayes_suite::core::CHUNK_ROWS + 201;
    let seed = 13u64;

    let entry = registry.get("m").unwrap();
    let direct = entry
        .sampler()
        .unwrap()
        .sample_dataset(rows, None, &mut StdRng::seed_from_u64(seed))
        .unwrap();
    let mut expected = Vec::new();
    write_csv(&direct, &mut expected).unwrap();
    let expected = String::from_utf8(expected).unwrap();

    let path = format!("/models/m/synth?rows={rows}&seed={seed}&format=csv");
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
    for pass in ["cold", "cached"] {
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n").unwrap();
        let (head, body) = read_chunked_response(&mut stream);
        assert!(head.starts_with("HTTP/1.1 200"), "{pass}: {head}");
        assert!(
            head.to_ascii_lowercase().contains("connection: keep-alive"),
            "a kept-alive response must say so ({pass}): {head}"
        );
        assert_eq!(body, expected, "the {pass} keep-alive stream must equal the batch path");
    }
    drop(stream);

    // `Connection: close` is still honored per request, bytes unchanged.
    let closed = client.request("GET", &path, None).unwrap();
    assert_eq!(closed.code, 200);
    assert_eq!(closed.header("connection"), Some("close"));
    assert_eq!(closed.text(), expected);

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.panics, 0, "{stats:?}");
}

/// Sends raw `bytes`, half-closes the write side, and returns whatever the
/// server answers (empty if it just closed the connection).
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
    stream.write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);
    text
}

#[test]
fn malformed_requests_get_structured_errors_and_never_wedge_workers() {
    let (handle, client, _registry, _ledger) = start_server(2);
    let addr = handle.addr();

    // A request line cut off before the headers arrive: clean 400.
    let text = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\nHost: x");
    assert!(text.starts_with("HTTP/1.1 400"), "truncated head must get 400: {text}");
    assert!(text.contains("bad-request"), "{text}");

    // Nothing at all (connect, immediately hang up): no response expected,
    // and crucially no stuck worker.
    let text = raw_exchange(addr, b"");
    assert!(text.is_empty() || text.starts_with("HTTP/1.1 400"), "{text}");

    // A single header line larger than the head limit is cut off mid-read
    // instead of buffered into memory.
    let mut oversized = b"GET /healthz HTTP/1.1\r\nX-Big: ".to_vec();
    oversized.resize(oversized.len() + privbayes_suite::server::http::MAX_HEAD_BYTES + 16, b'a');
    oversized.extend_from_slice(b"\r\n\r\n");
    let text = raw_exchange(addr, &oversized);
    assert!(text.starts_with("HTTP/1.1 400"), "oversized header must get 400: {text}");
    assert!(text.contains("size limit"), "{text}");

    // A body shorter than its declared Content-Length: 400, not a hang.
    let text = raw_exchange(
        addr,
        b"POST /v1/models/m/synth HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"rows\":",
    );
    assert!(text.starts_with("HTTP/1.1 400"), "short body must get 400: {text}");
    assert!(text.contains("truncated"), "{text}");

    // A client that disconnects mid-way through a long chunked synthesis:
    // the server's next write fails and the worker moves on.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let rows = 8 * privbayes_suite::core::CHUNK_ROWS;
        write!(stream, "GET /models/m/synth?rows={rows}&seed=1&format=csv HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut first = [0u8; 256];
        let n = stream.read(&mut first).unwrap();
        assert!(n > 0, "the stream must have started before the disconnect");
        drop(stream); // vanish mid-stream
    }

    // Both workers still serve: as many concurrent requests as the pool has
    // threads, all correct, then a clean shutdown (which would hang on a
    // wedged worker).
    let reference = client.synth("m", 100, 5, "csv").unwrap();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || client.synth("m", 100, 5, "csv").unwrap())
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });
    for body in &bodies {
        assert_eq!(body, &reference, "post-abuse streams must be intact");
    }

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.panics, 0, "malformed input must never panic a handler: {stats:?}");
}

#[test]
fn registry_and_tenant_endpoints_round_trip() {
    let (handle, client, _registry, _ledger) = start_server(2);

    // Load a second model over HTTP and list both.
    client.load_model("extra", &fixture_model(2)).unwrap();
    let models = client.get_json("/models").unwrap();
    let ids: Vec<&str> = models
        .as_array()
        .unwrap()
        .iter()
        .map(|m| m.get("id").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(ids, vec!["extra", "m"]);

    // Metadata reflects the artifact.
    let meta = client.get_json("/models/extra").unwrap();
    assert_eq!(meta.get("attributes").and_then(Json::as_usize), Some(3));
    assert_eq!(meta.get("source_rows").and_then(Json::as_usize), Some(500));

    // Tenant listing and duplicate registration.
    client.register_tenant("t1", 0.5).unwrap();
    assert!(matches!(
        client.register_tenant("t1", 9.0),
        Err(ServerError::Status { code: 409, .. })
    ));
    let tenants = client.get_json("/tenants").unwrap();
    assert_eq!(tenants.as_array().unwrap().len(), 1);

    // Eviction over HTTP; a second evict is a clean 404.
    client.evict_model("extra").unwrap();
    assert!(matches!(client.evict_model("extra"), Err(ServerError::Status { code: 404, .. })));

    // Unknown routes and bad parameters are structured errors.
    let resp = client.request("GET", "/nope", None).unwrap();
    assert_eq!(resp.code, 404);
    // A known path with the wrong method is 405, not 404.
    let resp = client.request("POST", "/healthz", None).unwrap();
    assert_eq!(resp.code, 405);
    let resp = client.request("DELETE", "/tenants/t1", None).unwrap();
    assert_eq!(resp.code, 405);
    let resp = client.request("GET", "/models/m/synth?rows=abc", None).unwrap();
    assert_eq!(resp.code, 400);
    // An absurd row count is rejected up front instead of pinning a worker.
    let resp = client.request("GET", "/models/m/synth?rows=18446744073709551615", None).unwrap();
    assert_eq!(resp.code, 400);
    assert!(resp.text().contains("too-many-rows"), "{}", resp.text());
    let resp = client.request("GET", "/models/m/synth?seed=1&format=xml", None).unwrap();
    assert_eq!(resp.code, 400);

    client.shutdown().unwrap();
    handle.join().unwrap();
}
