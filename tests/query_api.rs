//! The query-API tier: the v2 request surface end to end.
//!
//! 1. **Conditional sampling** — `CompiledSampler` draws conditioned on
//!    evidence are cross-checked against the exact conditionals of
//!    `privbayes::inference` on small networks (TVD below tolerance at a
//!    fixed seed), in both the ancestrally-closed (clamp-exact) and the
//!    likelihood-weighted mode.
//! 2. **Projection** — projected streams are byte-equivalent to sampling
//!    everything and dropping columns afterwards.
//! 3. **Cursor resume** — an interrupted `/v1` stream resumed from a cursor
//!    concatenates byte-identically to an uninterrupted one.
//! 4. **Marginal queries** — `/v1/models/{id}/query` answers are
//!    bit-identical to the independent θ-projection oracle in
//!    `privbayes_bench::reference`.
//! 5. **Compatibility and error shape** — the legacy `GET` synth route and
//!    an empty `/v1` spec produce the PR 4 bytes unchanged; spec mistakes
//!    come back `400` with the structured `invalid-spec` body; every
//!    response carries `Content-Type` and `X-PrivBayes-Api: v1`.

use std::sync::Arc;

use privbayes_bench::reference::reference_theta_projection;
use privbayes_suite::core::conditionals::{noisy_conditionals_general, Conditional, NoisyModel};
use privbayes_suite::core::inference::{model_conditional, DEFAULT_CELL_CAP};
use privbayes_suite::core::network::{ApPair, BayesianNetwork};
use privbayes_suite::core::{SampleSpec, CHUNK_ROWS};
use privbayes_suite::data::{Attribute, Dataset, Schema};
use privbayes_suite::marginals::{total_variation, Axis, ContingencyTable};
use privbayes_suite::model::{Json, ModelMetadata, ReleasedModel};
use privbayes_suite::server::{
    BudgetLedger, Client, Cursor, MarginalQuery, ModelRegistry, Server, ServerConfig, ServerError,
    SynthSpec,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A 3-attribute chain model (a → b → c with c depending on both) fit
/// noise-free-ish on correlated data, wrapped as a release artifact.
fn chain_artifact(seed: u64) -> ReleasedModel {
    let schema = Schema::new(vec![
        Attribute::binary("smoker"),
        Attribute::binary("cough"),
        Attribute::categorical_labelled("region", ["north", "south", "west"]).unwrap(),
    ])
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<u32>> = (0..4000)
        .map(|_| {
            let a = rng.random_range(0..2u32);
            let b = if rng.random::<f64>() < 0.8 { a } else { 1 - a };
            let c = (a + b + u32::from(rng.random::<f64>() < 0.3)) % 3;
            vec![a, b, c]
        })
        .collect();
    let data = Dataset::from_rows(schema, &rows).unwrap();
    let net = BayesianNetwork::new(
        vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![0, 1])],
        data.schema(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let model = noisy_conditionals_general(&data, &net, Some(2.0), &mut rng).unwrap();
    ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon: 2.0,
            beta: 0.3,
            theta: 4.0,
            score: "R".into(),
            encoding: "vanilla".into(),
            source_rows: data.n(),
            comment: "query api fixture".into(),
        },
        data.schema().clone(),
        model,
    )
    .unwrap()
}

/// A hand-built two-attribute model `a → b` where the leaf value `b = 1`
/// is rare: `Pr[b = 1] = 0.7·0.002 + 0.3·0.022 = 0.008`, below the
/// `1/LW_CANDIDATES = 1/64 ≈ 0.0156` threshold where most candidate
/// batches in the likelihood-weighted sampler carry tiny total weight.
/// The exact posterior is `Pr[a = 1 | b = 1] = 0.0066/0.008 = 0.825`.
fn rare_leaf_artifact() -> ReleasedModel {
    let schema = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
    let net = BayesianNetwork::new(vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0])], &schema)
        .unwrap();
    let model = NoisyModel {
        network: net,
        conditionals: vec![
            Conditional {
                child: 0,
                parents: vec![],
                parent_dims: vec![],
                child_dim: 2,
                probs: vec![0.7, 0.3],
            },
            Conditional {
                child: 1,
                parents: vec![Axis::raw(0)],
                parent_dims: vec![2],
                child_dim: 2,
                probs: vec![0.998, 0.002, 0.978, 0.022],
            },
        ],
    };
    ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon: 1.0,
            beta: 0.3,
            theta: 4.0,
            score: "R".into(),
            encoding: "vanilla".into(),
            source_rows: 100,
            comment: "rare-evidence fixture".into(),
        },
        schema,
        model,
    )
    .unwrap()
}

/// A hand-built model where `Pr[a = 1] = 0` exactly — for the
/// zero-probability-evidence error shape.
fn zero_mass_artifact() -> ReleasedModel {
    let schema = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
    let net = BayesianNetwork::new(vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0])], &schema)
        .unwrap();
    let model = NoisyModel {
        network: net,
        conditionals: vec![
            Conditional {
                child: 0,
                parents: vec![],
                parent_dims: vec![],
                child_dim: 2,
                probs: vec![1.0, 0.0],
            },
            Conditional {
                child: 1,
                parents: vec![Axis::raw(0)],
                parent_dims: vec![2],
                child_dim: 2,
                probs: vec![0.5, 0.5, 0.5, 0.5],
            },
        ],
    };
    ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon: 1.0,
            beta: 0.3,
            theta: 4.0,
            score: "R".into(),
            encoding: "vanilla".into(),
            source_rows: 100,
            comment: "zero-mass fixture".into(),
        },
        schema,
        model,
    )
    .unwrap()
}

fn start_server() -> (privbayes_suite::server::ServerHandle, Client) {
    let registry = Arc::new(ModelRegistry::new());
    registry.load("m", chain_artifact(11)).unwrap();
    registry.load("z", zero_mass_artifact()).unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 4, fit_threads: Some(1), ..ServerConfig::default() },
        registry,
        Arc::new(BudgetLedger::in_memory()),
    )
    .unwrap();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());
    (handle, client)
}

#[test]
fn clamped_conditional_draws_match_exact_inference() {
    // Evidence on the root attribute: the evidence set is ancestrally
    // closed, so clamped ancestral sampling is exact — only Monte-Carlo
    // error remains.
    let artifact = chain_artifact(3);
    let sampler = artifact.compiled().unwrap();
    let sample =
        sampler.sample_conditional(30_000, &[(0, 1)], &mut StdRng::seed_from_u64(5)).unwrap();
    assert!(sample.column(0).iter().all(|&v| v == 1), "evidence must clamp");
    let got = ContingencyTable::from_dataset(&sample, &[Axis::raw(1), Axis::raw(2)]);
    let want =
        model_conditional(&artifact.model, &artifact.schema, &[1, 2], &[(0, 1)], DEFAULT_CELL_CAP)
            .unwrap();
    let tvd = total_variation(got.values(), want.values());
    assert!(tvd < 0.02, "clamp-exact conditional must match inference, tvd = {tvd}");
}

#[test]
fn weighted_conditional_draws_match_exact_inference() {
    // Evidence on the leaf conditions its ancestors — the Bayes-inversion
    // direction needs likelihood-weighted resampling (bias O(1/LW_CANDIDATES)
    // plus Monte-Carlo error).
    let artifact = chain_artifact(7);
    let sampler = artifact.compiled().unwrap();
    let sample =
        sampler.sample_conditional(30_000, &[(2, 2)], &mut StdRng::seed_from_u64(13)).unwrap();
    assert!(sample.column(2).iter().all(|&v| v == 2), "evidence must clamp");
    let got = ContingencyTable::from_dataset(&sample, &[Axis::raw(0), Axis::raw(1)]);
    let want =
        model_conditional(&artifact.model, &artifact.schema, &[0, 1], &[(2, 2)], DEFAULT_CELL_CAP)
            .unwrap();
    let tvd = total_variation(got.values(), want.values());
    assert!(tvd < 0.05, "weighted conditional must track inference, tvd = {tvd}");
}

#[test]
fn weighted_conditional_stays_calibrated_under_rare_evidence() {
    // Regression guard for the likelihood-weighted sampler when the
    // conditioning event itself is rarer than one expected hit per
    // candidate batch: Pr[evidence] < 1/LW_CANDIDATES. In that regime the
    // per-row resampling step often sees 64 candidates whose weights are
    // all small, and any bug that falls back to an unweighted candidate
    // (or renormalises incorrectly) would silently return the *prior*
    // over the ancestors instead of the posterior. Here those two
    // distributions are far apart — prior Pr[a = 1] = 0.3 vs posterior
    // Pr[a = 1 | b = 1] = 0.825, a TVD of 0.525 — so drifting toward the
    // prior trips the tolerance immediately.
    //
    // The self-normalised importance-sampling bias is O(1/LW_CANDIDATES)
    // ≈ 0.016 and Monte-Carlo error at 40 000 rows is ~0.004, so 0.05 is
    // a comfortable-but-discriminating tolerance. (ROADMAP's posterior
    // compilation item will eventually make this draw exact; this test
    // then simply gets easier.)
    let artifact = rare_leaf_artifact();
    // Confirm the fixture really is in the rare regime.
    let marginal =
        model_conditional(&artifact.model, &artifact.schema, &[1], &[], DEFAULT_CELL_CAP).unwrap();
    let p_evidence = marginal.values()[1];
    assert!(
        p_evidence < 1.0 / privbayes_suite::core::LW_CANDIDATES as f64,
        "fixture must be rarer than one hit per candidate batch, Pr = {p_evidence}"
    );

    let sampler = artifact.compiled().unwrap();
    let sample =
        sampler.sample_conditional(40_000, &[(1, 1)], &mut StdRng::seed_from_u64(29)).unwrap();
    assert!(sample.column(1).iter().all(|&v| v == 1), "evidence must clamp");
    let got = ContingencyTable::from_dataset(&sample, &[Axis::raw(0)]);
    let want =
        model_conditional(&artifact.model, &artifact.schema, &[0], &[(1, 1)], DEFAULT_CELL_CAP)
            .unwrap();
    let tvd = total_variation(got.values(), want.values());
    assert!(tvd < 0.05, "rare-evidence conditional must track the posterior, tvd = {tvd}");
    // And specifically: the draw must be much closer to the posterior than
    // to the unconditioned prior it would collapse to under a weighting bug.
    let prior =
        model_conditional(&artifact.model, &artifact.schema, &[0], &[], DEFAULT_CELL_CAP).unwrap();
    let tvd_prior = total_variation(got.values(), prior.values());
    assert!(
        tvd_prior > 10.0 * tvd.max(0.01),
        "draws must not drift toward the prior: tvd(posterior) = {tvd}, tvd(prior) = {tvd_prior}"
    );
}

#[test]
fn conditional_sampling_is_deterministic_and_stream_equals_batch() {
    let artifact = chain_artifact(19);
    let sampler = artifact.compiled().unwrap();
    let rows = CHUNK_ROWS + 321;
    let a = sampler.sample_conditional(rows, &[(2, 1)], &mut StdRng::seed_from_u64(4)).unwrap();
    let b = sampler.sample_conditional(rows, &[(2, 1)], &mut StdRng::seed_from_u64(4)).unwrap();
    assert_eq!(a, b, "fixed (model, seed, evidence) must reproduce rows exactly");
    let spec = SampleSpec::rows(rows).with_evidence(vec![(2, 1)]);
    let stream = sampler.stream_spec(&spec, &mut StdRng::seed_from_u64(4)).unwrap();
    let streamed: Vec<Vec<u32>> = stream.flatten().collect();
    assert_eq!(streamed.len(), rows);
    for (row, tuple) in streamed.iter().enumerate() {
        assert_eq!(*tuple, a.row(row), "row {row}");
    }
}

#[test]
fn projection_is_byte_equivalent_to_post_hoc_column_dropping() {
    let artifact = chain_artifact(23);
    let sampler = artifact.compiled().unwrap();
    let rows = CHUNK_ROWS + 77;
    let full: Vec<Vec<u32>> = sampler
        .stream_spec(&SampleSpec::rows(rows), &mut StdRng::seed_from_u64(9))
        .unwrap()
        .flatten()
        .collect();
    let spec = SampleSpec::rows(rows).with_projection(vec![2, 0]);
    let projected: Vec<Vec<u32>> =
        sampler.stream_spec(&spec, &mut StdRng::seed_from_u64(9)).unwrap().flatten().collect();
    let dropped: Vec<Vec<u32>> = full.iter().map(|t| vec![t[2], t[0]]).collect();
    assert_eq!(projected, dropped, "projection must equal dropping columns after the fact");
}

#[test]
fn v1_default_spec_reproduces_the_legacy_stream_bytes() {
    let (handle, client) = start_server();
    for format in ["csv", "jsonl"] {
        let legacy = client.synth("m", 1500, 42, format).unwrap();
        let spec = SynthSpec::new()
            .with_rows(1500)
            .with_seed(42)
            .with_format(privbayes_suite::synth::RowFormat::parse(Some(format)).unwrap());
        let v1 = client.synth_with("m", &spec).unwrap();
        assert_eq!(v1.text(), legacy, "format {format}: /v1 must alias the legacy bytes");
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn cursor_resume_is_byte_identical_to_an_uninterrupted_stream() {
    let (handle, client) = start_server();
    let rows = 2 * CHUNK_ROWS + 137;
    let spec = SynthSpec::new().with_rows(rows).with_seed(9);
    let full = client.synth_with("m", &spec).unwrap();
    assert_eq!(full.header("x-privbayes-seed"), Some("9"));
    assert_eq!(full.header("x-privbayes-api"), Some("v1"));
    assert_eq!(full.header("content-type"), Some("text/csv"));
    let full_text = full.text();

    // Interrupt mid-chunk: keep the header plus the first 1100 rows, then
    // resume from row 1100 (the cursor needs no other spec change).
    let resume_at = 1100usize;
    let resumed = client
        .synth_with(
            "m",
            &SynthSpec::new().with_rows(rows).with_cursor(Cursor {
                seed: 9,
                row: resume_at as u64,
                generation: None,
            }),
        )
        .unwrap();
    let prefix: String = full_text.lines().take(1 + resume_at).map(|l| format!("{l}\n")).collect();
    assert_eq!(
        format!("{prefix}{}", resumed.text()),
        full_text,
        "prefix + resumed must equal the uninterrupted stream byte for byte"
    );

    // Conditional + projected streams resume identically too.
    let spec = SynthSpec::new()
        .with_rows(rows)
        .with_seed(77)
        .where_eq("region", "south")
        .select("smoker")
        .select("region");
    let full = client.synth_with("m", &spec).unwrap().text();
    let again = client.synth_with("m", &spec).unwrap().text();
    assert_eq!(full, again, "conditional streams must be deterministic");
    let resumed = client
        .synth_with(
            "m",
            &spec.clone().with_cursor(Cursor { seed: 77, row: 2000, generation: None }),
        )
        .unwrap();
    let prefix: String = full.lines().take(1 + 2000).map(|l| format!("{l}\n")).collect();
    assert_eq!(format!("{prefix}{}", resumed.text()), full);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn v1_marginal_answers_are_bit_identical_to_the_oracle() {
    let (handle, client) = start_server();
    let artifact = chain_artifact(11); // same seed as the served model
    for attrs in [vec![0usize], vec![2], vec![2, 0], vec![0, 1, 2]] {
        let mut query = MarginalQuery::new();
        for &a in &attrs {
            query = query.over(artifact.schema.attribute(a).name());
        }
        let answer = client.query("m", &query).unwrap();
        let served: Vec<f64> = answer
            .get("values")
            .and_then(Json::as_array)
            .expect("values array")
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        let oracle = reference_theta_projection(&artifact.model, &artifact.schema, &attrs);
        assert_eq!(served.len(), oracle.values().len(), "attrs {attrs:?}");
        for (i, (a, b)) in served.iter().zip(oracle.values()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "attrs {attrs:?}, cell {i}: served {a} vs oracle {b}"
            );
        }
        let dims: Vec<usize> = answer
            .get("dims")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_usize().unwrap())
            .collect();
        assert_eq!(&dims[..], oracle.dims(), "attrs {attrs:?}");
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn spec_failures_are_structured_invalid_spec_responses() {
    let (handle, client) = start_server();

    // Unknown attribute in a synth spec.
    let err = client.synth_with("m", &SynthSpec::new().select("bogus")).unwrap_err();
    let ServerError::Status { code, body } = err else { panic!("want status, got {err}") };
    assert_eq!(code, 400);
    assert!(body.contains("\"invalid-spec\""), "{body}");
    assert!(body.contains("bogus"), "{body}");

    // Unknown attribute in a marginal query.
    let err = client.query("m", &MarginalQuery::new().over("bogus")).unwrap_err();
    let ServerError::Status { code, body } = err else { panic!("want status, got {err}") };
    assert_eq!(code, 400);
    assert!(body.contains("\"invalid-spec\""), "{body}");

    // Out-of-domain evidence value.
    let err = client.synth_with("m", &SynthSpec::new().where_eq("region", "east")).unwrap_err();
    let ServerError::Status { code, body } = err else { panic!("want status, got {err}") };
    assert_eq!(code, 400);
    assert!(body.contains("\"invalid-spec\""), "{body}");

    // Malformed cursor token (raw body — the typed client can't build one).
    let response = client
        .request(
            "POST",
            "/v1/models/m/synth",
            Some(("application/json", br#"{"cursor": "garbage"}"# as &[u8])),
        )
        .unwrap();
    assert_eq!(response.code, 400);
    assert!(response.text().contains("\"invalid-spec\""), "{}", response.text());

    // Evidence with probability zero under the model.
    let err = client.synth_with("z", &SynthSpec::new().where_eq("a", 1u32)).unwrap_err();
    let ServerError::Status { code, body } = err else { panic!("want status, got {err}") };
    assert_eq!(code, 400);
    assert!(body.contains("probability zero"), "{body}");

    // Error responses carry the content-type and API headers too.
    let response = client.request("GET", "/models/nope/synth", None).unwrap();
    assert_eq!(response.code, 404);
    assert_eq!(response.header("content-type"), Some("application/json"));
    assert_eq!(response.header("x-privbayes-api"), Some("v1"));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn content_types_cover_every_format() {
    let (handle, client) = start_server();
    let csv = client.synth_with("m", &SynthSpec::new().with_rows(10).with_seed(1)).unwrap();
    assert_eq!(csv.header("content-type"), Some("text/csv"));
    let ndjson = client
        .synth_with(
            "m",
            &SynthSpec::new()
                .with_rows(10)
                .with_seed(1)
                .with_format(privbayes_suite::synth::RowFormat::Jsonl),
        )
        .unwrap();
    assert_eq!(ndjson.header("content-type"), Some("application/x-ndjson"));
    assert_eq!(ndjson.text().lines().count(), 10, "one JSON object per row");
    let health = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.header("content-type"), Some("application/json"));
    assert_eq!(health.header("x-privbayes-api"), Some("v1"));
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn projected_conditional_stream_matches_post_hoc_processing_of_the_full_stream() {
    let (handle, client) = start_server();
    // Full conditioned stream, all columns.
    let base = SynthSpec::new().with_rows(800).with_seed(31).where_eq("smoker", "v1");
    let full = client.synth_with("m", &base).unwrap().text();
    // Same request with a projection: must equal dropping columns from the
    // full response line by line.
    let projected =
        client.synth_with("m", &base.clone().select("region").select("cough")).unwrap().text();
    let expect: String = full
        .lines()
        .map(|line| {
            let cells: Vec<&str> = line.split(',').collect();
            format!("{},{}\n", cells[2], cells[1])
        })
        .collect();
    assert_eq!(projected, expect, "projection must be post-hoc column dropping, byte for byte");
    client.shutdown().unwrap();
    handle.join().unwrap();
}
