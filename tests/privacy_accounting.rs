//! Integration tests: privacy-budget accounting across the pipeline
//! (Theorem 3.2: PrivBayes is (ε₁+ε₂)-DP).

use privbayes_suite::core::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_suite::datasets::nltcs;
use privbayes_suite::dp::{BudgetSplit, PrivacyBudget};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pipeline_spending_matches_theorem_3_2() {
    let data = nltcs::nltcs_sized(1, 500).data;
    for eps in [0.05, 0.4, 1.6] {
        for beta in [0.1, 0.3, 0.7] {
            let mut rng = StdRng::seed_from_u64(5);
            let opts = PrivBayesOptions::new(eps).with_beta(beta);
            let r = PrivBayes::new(opts).synthesize(&data, &mut rng).expect("synthesis");
            let total = r.epsilon1_spent + r.epsilon2_spent;
            assert!((total - eps).abs() < 1e-12, "ε₁+ε₂ = {total} ≠ ε = {eps}");
            assert!((r.epsilon1_spent - beta * eps).abs() < 1e-12);

            // The reported spending fits in a budget tracker.
            let mut budget = PrivacyBudget::new(eps).expect("budget");
            budget.consume(r.epsilon1_spent).expect("phase 1");
            budget.consume(r.epsilon2_spent).expect("phase 2");
            assert!(budget.remaining() < 1e-9);
        }
    }
}

#[test]
fn ablations_do_not_charge_skipped_phases() {
    let data = nltcs::nltcs_sized(2, 400).data;
    let mut rng = StdRng::seed_from_u64(6);

    let r = PrivBayes::new(PrivBayesOptions::new(1.0).best_network())
        .synthesize(&data, &mut rng)
        .expect("synthesis");
    assert_eq!(r.epsilon1_spent, 0.0, "BestNetwork pays nothing for structure");
    assert!(r.epsilon2_spent > 0.0);

    let r = PrivBayes::new(PrivBayesOptions::new(1.0).best_marginal())
        .synthesize(&data, &mut rng)
        .expect("synthesis");
    assert!(r.epsilon1_spent > 0.0);
    assert_eq!(r.epsilon2_spent, 0.0, "BestMarginal pays nothing for marginals");
}

#[test]
fn budget_split_is_exhaustive_and_exclusive() {
    for beta in [0.01, 0.3, 0.99] {
        let split = BudgetSplit::new(beta).expect("valid beta");
        let (e1, e2) = split.split(2.0);
        assert!(e1 > 0.0 && e2 > 0.0);
        assert!((e1 + e2 - 2.0).abs() < 1e-12);
    }
}

#[test]
fn sequential_composition_over_multiple_releases() {
    // Releasing k synthetic datasets at ε/k each composes to ε total.
    let data = nltcs::nltcs_sized(3, 300).data;
    let total = 1.2;
    let k = 4;
    let mut budget = PrivacyBudget::new(total).expect("budget");
    for i in 0..k {
        let mut rng = StdRng::seed_from_u64(100 + i);
        let r = PrivBayes::new(PrivBayesOptions::new(total / k as f64))
            .synthesize(&data, &mut rng)
            .expect("synthesis");
        budget.consume(r.epsilon1_spent + r.epsilon2_spent).expect("within budget");
    }
    assert!(budget.remaining() < 1e-9);
    // A fifth release must be refused.
    assert!(budget.consume(total / k as f64).is_err());
}
