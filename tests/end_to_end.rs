//! Integration tests: the full PrivBayes pipeline across dataset shapes,
//! encodings, and privacy regimes.

use privbayes_suite::core::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_suite::data::encoding::EncodingKind;
use privbayes_suite::datasets::{acs, adult, br2000, nltcs};
use privbayes_suite::marginals::average_workload_tvd;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pipeline_runs_on_all_dataset_shapes() {
    let datasets = [
        nltcs::nltcs_sized(1, 600).data,
        acs::acs_sized(2, 600).data,
        adult::adult_sized(3, 600).data,
        br2000::br2000_sized(4, 600).data,
    ];
    for data in &datasets {
        let mut rng = StdRng::seed_from_u64(42);
        let result = PrivBayes::new(PrivBayesOptions::new(1.0))
            .synthesize(data, &mut rng)
            .expect("synthesis");
        assert_eq!(result.synthetic.n(), data.n());
        assert_eq!(result.synthetic.schema().domain_sizes(), data.schema().domain_sizes());
        // Sanity: every synthetic value is within its domain (from_columns
        // validates, but assert the invariant explicitly).
        for attr in 0..data.d() {
            let dom = data.schema().attribute(attr).domain();
            assert!(result.synthetic.column(attr).iter().all(|&v| dom.contains(v)));
        }
    }
}

#[test]
fn every_encoding_works_on_mixed_data() {
    let data = br2000::br2000_sized(5, 500).data;
    for encoding in [
        EncodingKind::Binary,
        EncodingKind::Gray,
        EncodingKind::Vanilla,
        EncodingKind::Hierarchical,
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let mut opts = PrivBayesOptions::new(0.8).with_encoding(encoding);
        opts.max_degree = 2;
        let result = PrivBayes::new(opts).synthesize(&data, &mut rng).expect("synthesis");
        assert_eq!(result.synthetic.n(), data.n(), "{encoding:?}");
    }
}

#[test]
fn error_decreases_with_epsilon_on_nltcs() {
    let data = nltcs::nltcs_sized(6, 3000).data;
    let avg = |eps: f64| -> f64 {
        (0..4u64)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(100 + s);
                let r = PrivBayes::new(PrivBayesOptions::new(eps))
                    .synthesize(&data, &mut rng)
                    .expect("synthesis");
                average_workload_tvd(&data, &r.synthetic, 2)
            })
            .sum::<f64>()
            / 4.0
    };
    let low = avg(0.05);
    let high = avg(4.0);
    assert!(high < low, "ε=4 error {high} should beat ε=0.05 error {low}");
}

#[test]
fn degree_grows_with_epsilon() {
    let data = nltcs::nltcs_sized(7, 4000).data;
    let degree = |eps: f64| {
        let mut rng = StdRng::seed_from_u64(3);
        PrivBayes::new(PrivBayesOptions::new(eps).with_encoding(EncodingKind::Binary))
            .synthesize(&data, &mut rng)
            .expect("synthesis")
            .degree
    };
    assert!(degree(0.05) <= degree(1.6), "θ-usefulness: degree is monotone in ε");
}

#[test]
fn synthetic_output_is_deterministic_per_seed() {
    let data = adult::adult_sized(8, 400).data;
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        PrivBayes::new(PrivBayesOptions::new(0.5))
            .synthesize(&data, &mut rng)
            .expect("synthesis")
            .synthetic
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12), "different seeds explore different networks/noise");
}

#[test]
fn noise_free_ablation_tracks_data_closely() {
    let data = nltcs::nltcs_sized(9, 3000).data;
    let mut rng = StdRng::seed_from_u64(21);
    let opts = PrivBayesOptions::new(1.0).best_network().best_marginal();
    let r = PrivBayes::new(opts).synthesize(&data, &mut rng).expect("synthesis");
    let err = average_workload_tvd(&data, &r.synthetic, 2);
    assert!(err < 0.1, "noise-free synthesis error {err} should be small");
}
