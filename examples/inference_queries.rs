//! Answer queries straight from the model (§7's concluding-remarks
//! direction) instead of through a synthetic sample.
//!
//! ```sh
//! cargo run --release --example inference_queries
//! ```
//!
//! A synthetic dataset of n rows carries O(1/√n) sampling error on every
//! marginal *on top of* the privacy noise. Variable elimination over the
//! released model removes that term entirely, at identical privacy cost.
//! This example fits one model, then answers all 2-way marginals both ways
//! and compares the error against the sensitive source.

use privbayes::inference::{model_conditional, model_marginal, DEFAULT_CELL_CAP};
use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_data::encoding::EncodingKind;
use privbayes_datasets::br2000::br2000_sized;
use privbayes_marginals::metrics::average_workload_tvd_tables;
use privbayes_marginals::{average_workload_tvd, AlphaWayWorkload, ContingencyTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = br2000_sized(3, 12_000).data;
    println!("input: {} tuples × {} attributes", data.n(), data.d());

    let epsilon = 0.4;
    let options = PrivBayesOptions::new(epsilon).with_encoding(EncodingKind::Vanilla);
    let mut rng = StdRng::seed_from_u64(2014);
    let result = PrivBayes::new(options).synthesize(&data, &mut rng).expect("synthesis");
    println!("\nfitted ε = {epsilon} model, degree {}", result.network.degree());

    // Route A: the paper's default — measure marginals on the synthetic rows.
    let t0 = std::time::Instant::now();
    let sampled_err = average_workload_tvd(&data, &result.synthetic, 2);
    let sampled_time = t0.elapsed();

    // Route B: exact inference on the model, one variable elimination per
    // workload subset.
    let workload = AlphaWayWorkload::new(data.d(), 2);
    let t0 = std::time::Instant::now();
    let tables: Vec<ContingencyTable> = workload
        .subsets()
        .iter()
        .map(|subset| {
            model_marginal(&result.model, data.schema(), subset, DEFAULT_CELL_CAP)
                .expect("within cell cap")
        })
        .collect();
    let exact_err = average_workload_tvd_tables(&data, &tables, &workload);
    let exact_time = t0.elapsed();

    println!("\nall {} 2-way marginals, answered two ways:", workload.len());
    println!("  from the synthetic sample: avg TVD {sampled_err:.4}  ({sampled_time:.2?})");
    println!("  exactly from the model:    avg TVD {exact_err:.4}  ({exact_time:.2?})");

    // Inference also answers queries the sample would answer noisily even at
    // huge sizes — e.g. a single attribute's distribution, bit-exact.
    let age =
        model_marginal(&result.model, data.schema(), &[0], DEFAULT_CELL_CAP).expect("1-way query");
    println!(
        "\nmodel's exact Pr*[{}]: {:?}",
        data.schema().attribute(0).name(),
        age.values().iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>()
    );

    // Conditional queries work too — including the Bayes-inversion direction
    // ancestral sampling cannot answer directly: condition a *parent* on its
    // child, along the first correlation the network actually learned.
    let (parent, child) = result.network.edges()[0];
    let cond =
        model_conditional(&result.model, data.schema(), &[parent], &[(child, 1)], DEFAULT_CELL_CAP)
            .expect("conditional query");
    let marginal = model_marginal(&result.model, data.schema(), &[parent], DEFAULT_CELL_CAP)
        .expect("marginal query");
    let head = |t: &ContingencyTable| {
        t.values().iter().take(4).map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>()
    };
    println!(
        "exact Pr*[{p}] (head):           {:?}\nexact Pr*[{p} | {c} = 1] (head): {:?}",
        head(&marginal),
        head(&cond),
        p = data.schema().attribute(parent).name(),
        c = data.schema().attribute(child).name(),
    );
    println!("(all routes are post-processing of the same ε-DP release)");

    assert!(
        exact_err <= sampled_err + 0.02,
        "inference should not trail sampling materially: {exact_err} vs {sampled_err}"
    );
}
