//! A tour of the four attribute encodings (§5.1, Figures 2–3): how binary,
//! Gray, vanilla, and hierarchical encodings trade flexibility against
//! semantic fidelity on a mixed-domain table.
//!
//! ```sh
//! cargo run --release --example encoding_tour
//! ```

use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes::score::ScoreKind;
use privbayes_data::encoding::{binarize, EncodingKind};
use privbayes_datasets::br2000;
use privbayes_marginals::average_workload_tvd;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = br2000::br2000_sized(5, 6000);
    let data = &ds.data;
    println!(
        "dataset: {} ({} × {}, domain ≈ 2^{:.0})\n",
        ds.name,
        data.n(),
        data.d(),
        data.schema().total_domain_log2()
    );

    // What binarisation does to the schema (Figure 2/3's bit decomposition).
    let (bits, _) = binarize(data, EncodingKind::Binary).expect("binarise");
    println!(
        "binary encoding turns {} attributes into {} bit attributes, e.g. `{}`, `{}`, ...\n",
        data.d(),
        bits.d(),
        bits.schema().attribute(0).name(),
        bits.schema().attribute(1).name(),
    );

    // Taxonomy levels available to the hierarchical encoding.
    let age = data.schema().attribute(0);
    let tax = age.taxonomy().expect("age has a taxonomy");
    let levels: Vec<usize> = (0..tax.height()).map(|l| tax.level_size(l)).collect();
    println!("hierarchical encoding can generalise `{}` through levels {levels:?}\n", age.name());

    let eps = 0.4;
    let encodings = [
        ("Binary-F", EncodingKind::Binary, ScoreKind::F),
        ("Gray-F", EncodingKind::Gray, ScoreKind::F),
        ("Vanilla-R", EncodingKind::Vanilla, ScoreKind::R),
        ("Hierarchical-R", EncodingKind::Hierarchical, ScoreKind::R),
    ];
    println!("{:<16} {:>18} {:>10}", "encoding", "avg 2-way TVD", "degree");
    for (name, enc, score) in encodings {
        let mut rng = StdRng::seed_from_u64(17);
        let mut opts = PrivBayesOptions::new(eps).with_encoding(enc).with_score(score);
        if enc.is_bitwise() {
            opts.max_degree = 2; // wide binarised schema: keep Ω tractable
        }
        let result = PrivBayes::new(opts).synthesize(data, &mut rng).expect("synthesis");
        let err = average_workload_tvd(data, &result.synthetic, 2);
        println!("{name:<16} {err:>18.4} {:>10}", result.degree);
    }
    println!(
        "\nExpected shape (paper Fig. 6): the non-binary encodings win at small ε\n\
         because bit decomposition wastes budget on semantically meaningless\n\
         bit attributes."
    );
}
