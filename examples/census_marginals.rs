//! Count-query workload release (the paper's first task, §6.5): answer all
//! 3-way marginals of an NLTCS-like survey under ε-DP, comparing PrivBayes
//! against the Laplace and Uniform baselines.
//!
//! ```sh
//! cargo run --release --example census_marginals
//! ```

use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_baselines::{laplace_marginals, uniform_marginals};
use privbayes_data::encoding::EncodingKind;
use privbayes_datasets::nltcs;
use privbayes_marginals::metrics::average_workload_tvd_tables;
use privbayes_marginals::{average_workload_tvd, AlphaWayWorkload, CountEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = nltcs::nltcs_sized(7, 8000);
    let data = &ds.data;
    let alpha = 3;
    let workload = AlphaWayWorkload::new(data.d(), alpha);
    println!(
        "dataset: {} ({} × {}), workload: all {} {alpha}-way marginals\n",
        ds.name,
        data.n(),
        data.d(),
        workload.len()
    );

    println!("{:>8} {:>12} {:>12} {:>12}", "epsilon", "PrivBayes", "Laplace", "Uniform");
    for eps in [0.1, 0.4, 1.6] {
        let mut rng = StdRng::seed_from_u64(1_000 + (eps * 100.0) as u64);

        let pb = {
            let opts = PrivBayesOptions::new(eps).with_encoding(EncodingKind::Binary);
            let result = PrivBayes::new(opts).synthesize(data, &mut rng).expect("synthesis");
            average_workload_tvd(data, &result.synthetic, alpha)
        };
        let lap = {
            let tables = laplace_marginals(&CountEngine::new(data), &workload, eps, &mut rng);
            average_workload_tvd_tables(data, &tables, &workload)
        };
        let uni = {
            let tables = uniform_marginals(data.schema(), &workload);
            average_workload_tvd_tables(data, &tables, &workload)
        };
        println!("{eps:>8} {pb:>12.4} {lap:>12.4} {uni:>12.4}");
    }
    println!(
        "\nExpected shape (paper Fig. 12): PrivBayes dominates Laplace at small ε,\n\
         and both converge as ε grows; Uniform is the flat fallback."
    );
}
