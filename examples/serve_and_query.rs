//! Serve and query: the synthesis service end to end, in one process.
//!
//! Spins up `privbayes-server` on an ephemeral port, loads a released model
//! into the registry, registers two tenants with separate privacy budgets,
//! fits one private model per tenant through the budget ledger, and streams
//! synthetic rows back — demonstrating that (a) a fixed `(model, seed, n)`
//! request returns identical bytes on every call, (b) one tenant
//! exhausting its ε does not affect the other, and (c) the `/v1` query API:
//! conditional cohort synthesis with projection, cursor resume, and direct
//! marginal queries answered exactly from the released θ.
//!
//! Run with: `cargo run --example serve_and_query`

use std::sync::Arc;

use privbayes_suite::core::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_suite::data::{Attribute, Dataset, Schema};
use privbayes_suite::model::{Json, ModelMetadata, ReleasedModel};
use privbayes_suite::server::{
    BudgetLedger, Client, Cursor, MarginalQuery, ModelRegistry, Server, ServerConfig, SynthSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A released model to pre-load: fit offline, as `privbayes-cli fit`
    // would.
    let schema = Schema::new(vec![
        Attribute::binary("smoker"),
        Attribute::categorical("region", 3).unwrap(),
        Attribute::binary("disease"),
    ])
    .unwrap();
    let rows: Vec<Vec<u32>> =
        (0..600u32).map(|i| vec![i % 2, (i / 3) % 3, u32::from(i % 2 == 1)]).collect();
    let data = Dataset::from_rows(schema, &rows).unwrap();
    let options = PrivBayesOptions::new(1.0);
    let mut rng = StdRng::seed_from_u64(1);
    let fit = PrivBayes::new(options.clone()).synthesize(&data, &mut rng).unwrap();
    let artifact = ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon: options.epsilon,
            beta: options.beta,
            theta: options.theta,
            score: options.effective_score().name().to_string(),
            encoding: options.encoding.name().to_string(),
            source_rows: data.n(),
            comment: "serve_and_query example".to_string(),
        },
        data.schema().clone(),
        fit.model,
    )
    .unwrap();

    // Start the service: registry + ledger + worker pool.
    let registry = Arc::new(ModelRegistry::new());
    registry.load("health-survey", artifact).unwrap();
    let ledger = Arc::new(BudgetLedger::in_memory());
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 4, fit_threads: Some(1), ..ServerConfig::default() },
        Arc::clone(&registry),
        Arc::clone(&ledger),
    )
    .unwrap();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());
    println!("server listening on {}", handle.addr());

    // Two tenants, separate budgets.
    client.register_tenant("acme", 1.0).unwrap();
    client.register_tenant("globex", 0.3).unwrap();

    // Streaming synthesis from the pre-loaded model is post-processing: it
    // costs no budget, and a fixed (model, seed, n) request is
    // deterministic.
    let first = client.synth("health-survey", 1500, 7, "csv").unwrap();
    let second = client.synth("health-survey", 1500, 7, "csv").unwrap();
    assert_eq!(first, second, "fixed seeds stream identical bytes");
    println!(
        "streamed {} rows twice with seed 7 — byte-identical: {}",
        first.lines().count() - 1,
        first == second
    );

    // Each tenant fits its own private model through the ledger.
    let csv: String = std::iter::once("smoker,disease".to_string())
        .chain((0..300).map(|i| format!("{},{}", i % 2, i % 2)))
        .collect::<Vec<_>>()
        .join("\n");
    let schema_json = Json::parse(
        r#"[{"name": "smoker", "kind": "binary"}, {"name": "disease", "kind": "binary"}]"#,
    )
    .unwrap();
    for (tenant, epsilon) in [("acme", 0.8), ("globex", 0.3)] {
        let body = Json::object(vec![
            ("tenant", Json::String(tenant.into())),
            ("model_id", Json::String(format!("{tenant}-model"))),
            ("epsilon", Json::Number(epsilon)),
            ("seed", Json::from_usize(11)),
            ("schema", schema_json.clone()),
            ("csv", Json::String(csv.clone())),
        ]);
        let resp = client.fit_raw(&body).unwrap();
        assert_eq!(resp.code, 201, "{}", resp.text());
        let rows = client.synth(&format!("{tenant}-model"), 200, 3, "jsonl").unwrap();
        let remaining =
            client.tenant(tenant).unwrap().get("remaining").and_then(Json::as_f64).unwrap();
        println!(
            "tenant {tenant}: fit ε = {epsilon}, streamed {} JSONL rows, ε remaining = {remaining:.3}",
            rows.lines().count()
        );
    }

    // globex is now exhausted; acme still has budget. The rejection is
    // structured and mutates nothing.
    let over = Json::object(vec![
        ("tenant", Json::String("globex".into())),
        ("model_id", Json::String("globex-2".into())),
        ("epsilon", Json::Number(0.1)),
        ("schema", schema_json.clone()),
        ("csv", Json::String(csv.clone())),
    ]);
    let resp = client.fit_raw(&over).unwrap();
    assert_eq!(resp.code, 402);
    let error = Json::parse(&resp.text()).unwrap();
    println!(
        "tenant globex over budget: {} (requested {}, remaining {})",
        error.get("error").and_then(Json::as_str).unwrap(),
        error.get("requested").and_then(Json::as_f64).unwrap(),
        error.get("remaining").and_then(Json::as_f64).unwrap(),
    );

    // The /v1 query API: a label-conditioned cohort, projected to two
    // columns — an analytics export without materialising full rows.
    let cohort = SynthSpec::new()
        .with_rows(1000)
        .with_seed(21)
        .where_eq("smoker", "v1")
        .select("region")
        .select("disease");
    let response = client.synth_with("health-survey", &cohort).unwrap();
    println!(
        "conditional cohort (smoker = v1, region/disease only): {} rows, content-type {}",
        response.text().lines().count() - 1,
        response.header("content-type").unwrap_or("?"),
    );

    // Interrupt-and-resume: take the first 400 rows, then continue from a
    // cursor. The concatenation is byte-identical to one uninterrupted run.
    let full = client
        .synth_with("health-survey", &SynthSpec::new().with_rows(1000).with_seed(33))
        .unwrap()
        .text();
    let tail = client
        .synth_with(
            "health-survey",
            &SynthSpec::new().with_rows(1000).with_cursor(Cursor {
                seed: 33,
                row: 400,
                generation: None,
            }),
        )
        .unwrap()
        .text();
    let prefix: String = full.lines().take(401).map(|l| format!("{l}\n")).collect();
    assert_eq!(format!("{prefix}{tail}"), full);
    println!("cursor resume at row 400 — prefix + tail byte-identical: true");

    // A marginal query answered exactly from the released θ: no sampling,
    // no privacy cost, bit-reproducible.
    let answer = client
        .query("health-survey", &MarginalQuery::new().over("smoker").over("disease"))
        .unwrap();
    let values: Vec<f64> = answer
        .get("values")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    println!(
        "exact marginal Pr*[smoker, disease] = {values:?} (sums to {:.6})",
        values.iter().sum::<f64>()
    );

    client.shutdown().unwrap();
    let stats = handle.join().unwrap();
    println!("server shut down cleanly after {} requests", stats.requests);
}
