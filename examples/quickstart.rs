//! Quickstart: synthesise a private release of a census-like table.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Mirrors the paper's running example (Figure 1 / Table 1): five attributes
//! — age, education, workclass, title, income — with a hidden correlation
//! structure; PrivBayes learns a Bayesian network under ε-DP, prints its
//! AP pairs, and releases a synthetic table of the same size.

use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_data::encoding::EncodingKind;
use privbayes_data::{Attribute, Dataset, Schema, TaxonomyTree};
use privbayes_datasets::GroundTruthNetwork;
use privbayes_marginals::average_workload_tvd;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::continuous("age", 17.0, 90.0, 16)
            .expect("valid range")
            .with_taxonomy(TaxonomyTree::balanced_binary(16).expect("tree"))
            .expect("leaves match"),
        Attribute::categorical_labelled("education", ["hs", "college", "msc", "phd"])
            .expect("labels"),
        Attribute::categorical_labelled("workclass", ["private", "gov", "self", "none"])
            .expect("labels"),
        Attribute::categorical_labelled("title", ["junior", "senior", "lead", "manager"])
            .expect("labels"),
        Attribute::binary("income>50k"),
    ])
    .expect("valid schema")
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2014); // SIGMOD vintage
    let truth = GroundTruthNetwork::random(&schema(), 2, 0.4, &mut rng);
    let data: Dataset = truth.sample(10_000, &mut rng);
    println!("input: {} tuples × {} attributes", data.n(), data.d());

    let epsilon = 1.0;
    let options = PrivBayesOptions::new(epsilon).with_encoding(EncodingKind::Hierarchical);
    let result = PrivBayes::new(options).synthesize(&data, &mut rng).expect("synthesis");

    println!("\nlearned ε-DP Bayesian network (ε₁ = {:.2}):", result.epsilon1_spent);
    print!("{}", result.network.describe(data.schema()));
    println!("degree k = {}", result.network.degree());

    let err_2way = average_workload_tvd(&data, &result.synthetic, 2);
    println!(
        "\nsynthetic table: {} tuples (ε₂ = {:.2})",
        result.synthetic.n(),
        result.epsilon2_spent
    );
    println!("average 2-way marginal total-variation distance: {err_2way:.4}");

    // Show a few synthetic rows with labels.
    println!("\nfirst synthetic rows:");
    let mut csv = Vec::new();
    privbayes_data::csv::write_csv(&result.synthetic, &mut csv).expect("csv");
    for line in String::from_utf8(csv).expect("utf8").lines().take(6) {
        println!("  {line}");
    }

    assert!(err_2way < 0.5, "release should carry signal");
    println!("\ntotal privacy cost: ε = {:.2}", result.epsilon1_spent + result.epsilon2_spent);
}
