//! Release the *model*, not just one sample.
//!
//! ```sh
//! cargo run --release --example model_release
//! ```
//!
//! PrivBayes' privacy guarantee (Theorem 3.2) covers the fitted model — the
//! network plus its noisy conditionals — so the model itself can be
//! published. This example fits a model on the Adult-like benchmark, writes
//! the versioned JSON artifact, reloads it as a downstream consumer would,
//! and draws two differently-sized synthetic datasets from it at no extra
//! privacy cost.

use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_data::encoding::EncodingKind;
use privbayes_datasets::adult::adult_sized;
use privbayes_marginals::average_workload_tvd;
use privbayes_model::{ModelMetadata, ReleasedModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = adult_sized(7, 10_000).data;
    println!("sensitive input: {} tuples × {} attributes", data.n(), data.d());

    // --- Data-owner side: fit and publish. ---
    let epsilon = 1.0;
    let options = PrivBayesOptions::new(epsilon).with_encoding(EncodingKind::Hierarchical);
    let mut rng = StdRng::seed_from_u64(1);
    let result = PrivBayes::new(options.clone()).synthesize(&data, &mut rng).expect("synthesis");

    let artifact = ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon,
            beta: options.beta,
            theta: options.theta,
            score: options.effective_score().name().to_string(),
            encoding: options.encoding.name().to_string(),
            source_rows: data.n(),
            comment: "Adult benchmark release (example)".to_string(),
        },
        data.schema().clone(),
        result.model,
    )
    .expect("artifact consistency");

    let path = std::env::temp_dir().join("privbayes-adult-model.json");
    artifact.save(&path).expect("write artifact");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!("\npublished {} ({bytes} bytes — the whole release)", path.display());
    println!("network:\n{}", artifact.model.network.describe(&artifact.schema));

    // --- Consumer side: reload and sample freely. ---
    let consumer = ReleasedModel::load(&path).expect("read artifact");
    assert_eq!(consumer, artifact, "the artifact is lossless");
    println!(
        "consumer sees: ε = {}, score {}, encoding {}, fit on {} rows",
        consumer.metadata.epsilon,
        consumer.metadata.score,
        consumer.metadata.encoding,
        consumer.metadata.source_rows,
    );

    let mut rng = StdRng::seed_from_u64(2);
    for rows in [1_000usize, 20_000] {
        let synthetic = consumer.sample(rows, &mut rng).expect("sample");
        let err = average_workload_tvd(&data, &synthetic, 2);
        println!("sampled {rows:>6} rows → avg 2-way marginal TVD vs source: {err:.4}");
    }

    println!("\nsampling is post-processing: total privacy cost stays ε = {epsilon}");
    std::fs::remove_file(&path).ok();
}
