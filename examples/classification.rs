//! Multi-classifier training from one private release (§6.6): PrivBayes
//! generates a single synthetic dataset, then non-private SVMs trained on it
//! are compared against per-classifier private learners.
//!
//! ```sh
//! cargo run --release --example classification
//! ```

use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_data::encoding::EncodingKind;
use privbayes_datasets::adult;
use privbayes_ml::{misclassification_rate, FeatureMatrix, LinearSvm, MajorityClassifier};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = adult::adult_sized(11, 8000);
    let mut rng = StdRng::seed_from_u64(99);
    let (train, test) = ds.data.split_train_test(0.8, &mut rng);
    let epsilon = 0.8;
    println!("dataset: {} ({} train / {} test), ε = {epsilon}\n", ds.name, train.n(), test.n());

    // One PrivBayes release at ε serves all four classifiers.
    let opts = PrivBayesOptions::new(epsilon).with_encoding(EncodingKind::Hierarchical);
    let release = PrivBayes::new(opts).synthesize(&train, &mut rng).expect("synthesis");

    println!("{:<16} {:>12} {:>12} {:>12}", "target", "PrivBayes", "Majority", "NoPrivacy");
    for target in &ds.targets {
        let test_m = FeatureMatrix::build(&test, target.attr, &target.positive);

        let pb = {
            let m = FeatureMatrix::build(&release.synthetic, target.attr, &target.positive);
            let svm = LinearSvm::train_hinge(&m, 1.0, 10, &mut rng);
            misclassification_rate(&svm, &test_m)
        };
        let majority = {
            let m = FeatureMatrix::build(&train, target.attr, &target.positive);
            // Per-classifier methods split ε across the four tasks (§6.6).
            MajorityClassifier::train(&m, epsilon / 4.0, &mut rng).misclassification_rate(&test_m)
        };
        let clear = {
            let m = FeatureMatrix::build(&train, target.attr, &target.positive);
            let svm = LinearSvm::train_hinge(&m, 1.0, 10, &mut rng);
            misclassification_rate(&svm, &test_m)
        };
        println!("{:<16} {pb:>12.4} {majority:>12.4} {clear:>12.4}", target.name);
    }
    println!(
        "\nPrivBayes pays ε once for the release; the other private methods must\n\
         split ε across classifiers — the paper's core argument for generic\n\
         synthetic data."
    );
}
