//! Multi-table release — the paper's concluding-remarks extension.
//!
//! ```sh
//! cargo run --release --example multitable
//! ```
//!
//! A clinic database: one row per *patient* (smoker flag, region) plus up to
//! `m` visit facts per patient (diagnosis, inpatient flag). The privacy unit
//! is the patient: the fact phase runs under group privacy with its noise
//! scaled by the fan-out cap `m`. The example synthesises the full
//! two-table database and checks which cross-table statistics survive.

use privbayes_marginals::{total_variation, Axis, CountEngine};
use privbayes_relational::{clinic_benchmark, RelationalOptions, RelationalPrivBayes};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let max_fanout = 4;
    let data = clinic_benchmark(8_000, max_fanout, 42);
    println!(
        "input: {} patients, {} visit facts (fan-out cap m = {max_fanout})",
        data.n_entities(),
        data.n_facts()
    );

    let epsilon = 2.0;
    let mut rng = StdRng::seed_from_u64(7);
    let result = RelationalPrivBayes::new(RelationalOptions::new(epsilon))
        .synthesize(&data, &mut rng)
        .expect("relational synthesis");
    let synth = &result.synthetic;
    println!(
        "\nsynthesised {} patients, {} facts  (ε = {:.2} entity + {:.2} fact = {epsilon})",
        synth.n_entities(),
        synth.n_facts(),
        result.epsilon_entity,
        result.epsilon_fact,
    );
    println!("fact-phase network (entity attributes are evidence roots):");
    print!("{}", result.fact_model.network().describe(data.schema().fact_view()));

    // How well did the release preserve…
    // (a) the fan-out distribution (how often patients visit)?
    let hist = |d: &privbayes_relational::RelationalDataset| {
        let mut h = vec![0f64; max_fanout + 1];
        for f in d.fanouts() {
            h[f] += 1.0;
        }
        let n = d.n_entities() as f64;
        h.iter_mut().for_each(|x| *x /= n);
        h
    };
    let fanout_tvd = total_variation(&hist(&data), &hist(synth));
    println!("\nfan-out histogram TVD:            {fanout_tvd:.4}");

    // (b) the cross-table smoker × diagnosis correlation?
    let joint = |d: &privbayes_relational::RelationalDataset| {
        let view = d.fact_view();
        CountEngine::new(&view).joint_table(&[Axis::raw(0), Axis::raw(2)])
    };
    let joint_tvd = total_variation(joint(&data).values(), joint(synth).values());
    println!("smoker × diagnosis joint TVD:     {joint_tvd:.4}");

    // (c) the per-table marginals?
    let smoker_rate = |d: &privbayes_relational::RelationalDataset| {
        d.entities().column(0).iter().filter(|&&v| v == 1).count() as f64 / d.n_entities() as f64
    };
    println!(
        "smoker rate:                      {:.3} (source) vs {:.3} (synthetic)",
        smoker_rate(&data),
        smoker_rate(synth)
    );

    assert!(synth.fanouts().iter().all(|&f| f <= max_fanout), "fan-out cap respected");
    assert!(fanout_tvd < 0.2 && joint_tvd < 0.2, "release should carry signal");
    println!("\nper-patient privacy: ε = {epsilon} by sequential composition across phases");

    // Both phase models are themselves the ε-DP release: publish them as one
    // artifact and regenerate fresh databases downstream at no extra cost.
    let artifact = privbayes_model::ReleasedRelationalModel::from_synthesis(
        data.schema().clone(),
        &result,
        "clinic example release",
        data.n_entities(),
        data.n_facts(),
    )
    .expect("artifact consistency");
    let path = std::env::temp_dir().join("privbayes-clinic-model.json");
    artifact.save(&path).expect("write artifact");
    let consumer = privbayes_model::ReleasedRelationalModel::load(&path).expect("read artifact");
    let fresh = consumer.synthesize(2_000, &mut rng).expect("resynthesize");
    println!(
        "released model to {} ({} bytes); consumer regenerated {} patients / {} facts",
        path.display(),
        std::fs::metadata(&path).expect("stat").len(),
        fresh.n_entities(),
        fresh.n_facts(),
    );
    std::fs::remove_file(&path).ok();
}
