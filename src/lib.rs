//! Umbrella crate for the PrivBayes reproduction suite.
//!
//! Re-exports the individual crates under short module names so the
//! root-level examples and integration tests can use a single dependency:
//!
//! | module | crate |
//! |---|---|
//! | [`core`] | `privbayes` (network learning, conditionals, sampling) |
//! | [`baselines`] | `privbayes-baselines` |
//! | [`data`] | `privbayes-data` |
//! | [`datasets`] | `privbayes-datasets` |
//! | [`dp`] | `privbayes-dp` |
//! | [`marginals`] | `privbayes-marginals` |
//! | [`ml`] | `privbayes-ml` |
//! | [`model`] | `privbayes-model` |
//! | [`obs`] | `privbayes-obs` (metrics, span timing, exposition format) |
//! | [`relational`] | `privbayes-relational` |
//! | [`server`] | `privbayes-server` (serving layer: registry, ledger, streaming) |
//! | [`synth`] | `privbayes-synth` (the unified `Synthesizer` layer) |
//!
//! Library users should depend on the individual crates directly; this crate
//! exists for the workspace's own `tests/` and `examples/` targets (see
//! `tests/README.md` for the test-tier layout).

pub use privbayes as core;
pub use privbayes_baselines as baselines;
pub use privbayes_data as data;
pub use privbayes_datasets as datasets;
pub use privbayes_dp as dp;
pub use privbayes_marginals as marginals;
pub use privbayes_ml as ml;
pub use privbayes_model as model;
pub use privbayes_obs as obs;
pub use privbayes_relational as relational;
pub use privbayes_server as server;
pub use privbayes_synth as synth;
