//! Umbrella crate for the PrivBayes reproduction suite.
//!
//! Re-exports the individual crates so the root-level examples and integration
//! tests can use a single dependency. Library users should depend on the
//! individual crates (`privbayes`, `privbayes-data`, ...) directly.

pub use privbayes as core;
pub use privbayes_baselines as baselines;
pub use privbayes_data as data;
pub use privbayes_datasets as datasets;
pub use privbayes_dp as dp;
pub use privbayes_marginals as marginals;
pub use privbayes_ml as ml;
pub use privbayes_model as model;
pub use privbayes_relational as relational;
